#!/usr/bin/env python3
"""Higher-order patterns: a campaign composed from unit patterns.

The paper (§III.B, §V) proposes building "complex" patterns by combining
unit patterns.  This example composes a realistic campaign on a single
allocation:

1. a *sequence*: a setup bag prepares shared inputs, then
2. a *concurrent* pair runs an Ensemble-Exchange sampler **while** an
   independent analysis pipeline processes unrelated data — both share the
   same pilot, interleaved by the agent.

Everything executes for real on this machine.

Run with:  python examples/concurrent_campaign.py
"""

from repro import (
    BagOfTasks,
    ConcurrentPatterns,
    EnsembleExchange,
    EnsembleOfPipelines,
    Kernel,
    PatternSequence,
    ResourceHandle,
)


class Setup(BagOfTasks):
    """Prepare one shared input file per future pipeline."""

    def task(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.mkfile")
        kernel.arguments = [f"--size={500 * instance}",
                            "--filename=dataset.txt"]
        kernel.copy_output_data = [f"dataset.txt > $SHARED/dataset_{instance}.txt"]
        return kernel


class Sampler(EnsembleExchange):
    """A small pairwise REMD sampler."""

    def __init__(self) -> None:
        super().__init__(ensemble_size=4, iterations=2,
                         exchange_mode="pairwise")

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="md.amber")
        kernel.arguments = [
            "--nsteps=200",
            f"--temperature={0.5 + 0.5 * instance}",
            "--outfile=replica.npz",
            f"--seed={10 * iteration + instance}",
        ]
        if iteration > 1:
            kernel.arguments.append("--startfile=previous.npz")
            kernel.link_input_data = ["$PREV_SIMULATION/replica.npz > previous.npz"]
        return kernel

    def exchange_stage(self, iteration: int, instances) -> Kernel:
        a, b = instances
        kernel = Kernel(name="exchange.temperature")
        kernel.arguments = [
            "--mode=pair", "--file-a=a.npz", "--file-b=b.npz",
            f"--seed={iteration}", "--outfile=exchange.npz",
        ]
        kernel.link_input_data = [
            f"$REPLICA_{a}/replica.npz > a.npz",
            f"$REPLICA_{b}/replica.npz > b.npz",
        ]
        return kernel


class DataPipelines(EnsembleOfPipelines):
    """Independent char-count pipelines over the setup bag's datasets."""

    def __init__(self) -> None:
        super().__init__(ensemble_size=3, pipeline_size=2)

    def stage_1(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.ccount")
        kernel.arguments = ["--inputfile=dataset.txt",
                            "--outputfile=count.txt"]
        kernel.link_input_data = [
            f"$SHARED/dataset_{instance}.txt > dataset.txt"
        ]
        return kernel

    def stage_2(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.echo")
        kernel.arguments = ["--message=archived", "--outputfile=receipt.txt"]
        kernel.link_input_data = ["$STAGE_1/count.txt"]
        return kernel


def main() -> None:
    handle = ResourceHandle(resource="local.localhost", cores=4, walltime=30)
    handle.allocate()

    setup = Setup(size=3)
    sampler = Sampler()
    pipelines = DataPipelines()
    campaign = PatternSequence([
        setup,
        ConcurrentPatterns([sampler, pipelines]),
    ])
    handle.run(campaign)

    print(f"campaign ran {len(campaign.units)} tasks on one allocation:")
    print(f"  setup bag      : {len(setup.units)} tasks")
    print(f"  REMD sampler   : {len(sampler.units)} tasks "
          f"(pairwise exchanges included)")
    print(f"  data pipelines : {len(pipelines.units)} tasks")
    counts = sorted(
        u.result for u in pipelines.units
        if u.description.name == "misc.ccount"
    )
    print(f"  pipeline char counts: {counts}")
    handle.deallocate()


if __name__ == "__main__":
    main()
