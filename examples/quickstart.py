#!/usr/bin/env python3
"""Quickstart: the paper's five steps in ~40 lines.

Runs the characterization application of the paper's §IV.A — an ensemble
of two-stage pipelines where stage 1 creates a file and stage 2 counts its
characters — for real, on this machine.

Run with:  python examples/quickstart.py
"""

from repro import Kernel, ResourceHandle, EnsembleOfPipelines, breakdown_from_profile


# Step 1: pick the execution pattern and define its stages (step 2: the
# kernels) by subclassing.
class CharCount(EnsembleOfPipelines):
    """N independent pipelines: mkfile -> ccount."""

    def stage_1(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.mkfile")
        kernel.arguments = [f"--size={1000 * instance}", "--filename=output.txt"]
        return kernel

    def stage_2(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.ccount")
        kernel.arguments = ["--inputfile=input.txt", "--outputfile=count.txt"]
        # Stage 2 reads the file stage 1 of the *same pipeline* produced.
        kernel.link_input_data = ["$STAGE_1/output.txt > input.txt"]
        return kernel


def main() -> None:
    # Step 3: create the resource handle and request resources.
    handle = ResourceHandle(resource="local.localhost", cores=4, walltime=10)
    handle.allocate()

    # Step 4: run the pattern (the execution plugin binds kernels to units
    # and drives them on the pilot runtime).
    pattern = CharCount(ensemble_size=4, pipeline_size=2)
    handle.run(pattern)

    # Step 5: control is back — inspect results and release resources.
    handle.deallocate()

    counts = sorted(
        unit.result
        for unit in pattern.units
        if unit.description.name == "misc.ccount"
    )
    print(f"character counts per pipeline: {counts}")
    assert counts == [1000, 2000, 3000, 4000]

    breakdown = breakdown_from_profile(handle.profile, pattern)
    print("TTC decomposition (seconds):")
    for key, value in breakdown.as_dict().items():
        print(f"  {key:>18}: {value:.4f}")


if __name__ == "__main__":
    main()
