#!/usr/bin/env python3
"""Replica-exchange MD with the Ensemble Exchange pattern — for real.

The paper's Fig. 5/6 workload at laptop scale: 8 replicas of the
alanine-dipeptide stand-in simulate at a geometric temperature ladder,
then a global temperature-exchange task applies the Metropolis criterion,
and the cycle repeats.  Every task genuinely executes: MD is integrated,
trajectories hit disk, exchanges are decided from real energies.

Watch the cold replica escape its starting basin — the scientific point
of running REMD at all.

Run with:  python examples/replica_exchange.py
"""

import numpy as np

from repro import EnsembleExchange, Kernel, ResourceHandle
from repro.md.remd import geometric_ladder
from repro.md.trajectory import Trajectory

N_REPLICAS = 8
ITERATIONS = 6
T_MIN, T_MAX = 0.5, 5.0
STEPS_PER_BURST = 400


class REMD(EnsembleExchange):
    """Amber + temperature exchange (global RepEx-style discipline)."""

    def __init__(self) -> None:
        super().__init__(
            ensemble_size=N_REPLICAS, iterations=ITERATIONS,
            exchange_mode="global",
        )
        ladder = geometric_ladder(T_MIN, T_MAX, N_REPLICAS)
        #: replica -> current temperature; updated after each exchange.
        self.temperatures = {i + 1: float(t) for i, t in enumerate(ladder)}

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="md.amber")
        kernel.arguments = [
            f"--nsteps={STEPS_PER_BURST}",
            f"--temperature={self.temperatures[instance]}",
            "--system=ala2-2d",
            "--outfile=replica.npz",
            f"--seed={1000 * iteration + instance}",
        ]
        if iteration > 1:
            # Continue from this member's previous configuration.
            kernel.arguments.append("--startfile=previous.npz")
            kernel.link_input_data = ["$PREV_SIMULATION/replica.npz > previous.npz"]
        return kernel

    def exchange_stage(self, iteration: int, instances) -> Kernel:
        kernel = Kernel(name="exchange.temperature")
        kernel.arguments = [
            "--mode=global",
            "--pattern=replica_*.npz",
            f"--tmin={T_MIN}",
            f"--tmax={T_MAX}",
            f"--phase={iteration % 2}",
            f"--seed={iteration}",
            "--outfile=exchange.npz",
        ]
        kernel.link_input_data = [
            f"$REPLICA_{i}/replica.npz > replica_{i:03d}.npz" for i in instances
        ]
        return kernel


def main() -> None:
    handle = ResourceHandle(resource="local.localhost", cores=4, walltime=30)
    handle.allocate()
    pattern = REMD()
    handle.run(pattern)

    exchanges = [
        unit for unit in pattern.units
        if unit.description.name == "exchange.temperature"
    ]
    print(f"ran {len(pattern.units)} tasks "
          f"({len(pattern.units) - len(exchanges)} MD bursts, "
          f"{len(exchanges)} exchange steps)")
    total_attempted = sum(u.result["attempted"] for u in exchanges)
    total_accepted = sum(u.result["accepted"] for u in exchanges)
    print(f"exchange acceptance: {total_accepted}/{total_attempted} "
          f"({total_accepted / total_attempted:.0%})")

    # Pool all sampled configurations and check basin coverage.
    sims = [u for u in pattern.units if u.description.name == "md.amber"]
    positions = np.vstack(
        [Trajectory.load(f"{u.sandbox}/replica.npz").positions for u in sims]
    )
    left = (positions[:, 0] < -0.5).mean()
    right = (positions[:, 0] > 0.5).mean()
    print(f"basin occupancy: left {left:.0%}, right {right:.0%} "
          f"(started 100% left)")
    if right > 0:
        print("=> replica exchange crossed the barrier.")
    handle.deallocate()


if __name__ == "__main__":
    main()
