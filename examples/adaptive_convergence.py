#!/usr/bin/env python3
"""Run-time adaptivity: grow the ensemble until sampling converges.

Demonstrates the paper's §V roadmap features this reproduction implements:

* the **execution strategy** layer picks the resource and pilot size for
  the workload before anything runs;
* an **AdaptiveSimulationAnalysisLoop** inspects each CoCo analysis and
  *doubles* the simulation ensemble while coverage keeps improving, then
  stops early once the occupancy of the sampled map exceeds a target —
  "vary the number of tasks between stages" made concrete.

Runs on a simulated Comet so ensemble growth is free to reach hundreds of
tasks.  Every decision is recorded in the profile.

Run with:  python examples/adaptive_convergence.py
"""

from repro import (
    AdaptDecision,
    AdaptiveSimulationAnalysisLoop,
    Kernel,
    ResourceHandle,
)
from repro.core.strategy import WorkloadEstimate, select_resource

TARGET_OCCUPANCY = 0.5
MAX_ITERATIONS = 6
START_INSTANCES = 8


class ConvergingSampler(AdaptiveSimulationAnalysisLoop):
    """Amber + CoCo; doubles the ensemble until occupancy converges."""

    def __init__(self) -> None:
        super().__init__(
            iterations=MAX_ITERATIONS,
            simulation_instances=START_INSTANCES,
            analysis_instances=1,
        )
        self.occupancies: list[float] = []

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="md.amber")
        kernel.arguments = [
            "--nsteps=300",
            "--temperature=1.0",
            "--outfile=trajectory.npz",
            f"--seed={1000 * iteration + instance}",
        ]
        if iteration > 1:
            kernel.arguments += ["--startfile=coco.npz",
                                 f"--startindex={instance - 1}"]
            kernel.link_input_data = ["$PREV_ANALYSIS/coco.npz"]
        return kernel

    def analysis_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="analysis.coco")
        kernel.arguments = [
            "--pattern=traj_*.npz",
            f"--npoints={2 * self.simulation_instances}",
            "--grid-bins=12",
            "--outfile=coco.npz",
            f"--nframes={self.simulation_instances * 30}",
        ]
        kernel.link_input_data = [
            f"$SIMULATION_{iteration}_{i}/trajectory.npz > traj_{i:04d}.npz"
            for i in range(1, self.simulation_instances + 1)
        ]
        return kernel

    def adapt(self, iteration: int, analysis_units) -> AdaptDecision:
        # In simulated mode payloads are not evaluated, so this example
        # uses the CoCo *cost model's* proxy: occupancy grows with the
        # amount of sampling already pooled.  (Run the adaptive_sampling
        # example for the real, locally-executed analysis.)
        occupancy = min(0.12 * iteration * (self.simulation_instances / 8), 1.0)
        self.occupancies.append(occupancy)
        if occupancy >= TARGET_OCCUPANCY:
            print(f"  iteration {iteration}: occupancy {occupancy:.2f} "
                  f">= {TARGET_OCCUPANCY} -> converged, stopping")
            return AdaptDecision(proceed=False)
        new_size = self.simulation_instances * 2
        print(f"  iteration {iteration}: occupancy {occupancy:.2f} "
              f"-> growing ensemble {self.simulation_instances} -> {new_size}")
        return AdaptDecision(simulation_instances=new_size)


def main() -> None:
    # Let the strategy layer choose where to run (Fig. 1 step 3, §V style).
    workload = WorkloadEstimate(
        ntasks=START_INSTANCES * 2**MAX_ITERATIONS,  # worst-case growth
        task_seconds=45.0,
        stages=MAX_ITERATIONS,
    )
    plan = select_resource(
        workload, ["xsede.comet", "xsede.stampede", "xsede.supermic"]
    )
    print(f"strategy chose {plan.resource} with {plan.cores} cores "
          f"(TTC estimate {plan.estimated_ttc:.0f}s)")

    handle = ResourceHandle(resource=plan.resource, cores=plan.cores,
                            walltime=120, mode="sim")
    handle.allocate()
    pattern = ConvergingSampler()
    handle.run(pattern)
    handle.deallocate()

    iterations = len(pattern.decisions)
    sims = [u for u in pattern.units if u.description.tags.get("phase") == "sim"]
    print(f"converged after {iterations} iterations, "
          f"{len(sims)} simulations total, "
          f"virtual TTC {handle.profile.span('entk_pattern_start', 'entk_pattern_stop', pattern.uid):.0f}s")
    for i, decision in enumerate(pattern.decisions, start=1):
        print(f"  decision {i}: proceed={decision.proceed} "
              f"next_size={decision.simulation_instances}")


if __name__ == "__main__":
    main()
