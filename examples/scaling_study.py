#!/usr/bin/env python3
"""A scaling study on a simulated supercomputer.

The paper's headline experiments (Fig. 5-8) ran on thousands of XSEDE
cores.  This example reruns a reduced Fig. 5 + Fig. 6 sweep on the
*simulated* SuperMIC: same code paths, virtual clock, seconds of wall
time.  Use the benchmark suite for the full paper-scale sweeps.

Run with:  python examples/scaling_study.py
"""

from repro.analytics.tables import format_table
from repro.experiments import fig5, fig6


def main() -> None:
    print("Strong scaling (Fig. 5 shape): 256 replicas, cores 32..256")
    strong = fig5.run(replicas=256, core_counts=(32, 64, 128, 256))
    print(format_table(strong.rows))
    for statement, holds in strong.claims.items():
        print(f"  [{'OK' if holds else 'FAIL'}] {statement}")

    print()
    print("Weak scaling (Fig. 6 shape): replicas = cores, 32..256")
    weak = fig6.run(replica_counts=(32, 64, 128, 256))
    print(format_table(weak.rows))
    for statement, holds in weak.claims.items():
        print(f"  [{'OK' if holds else 'FAIL'}] {statement}")

    print()
    print("Same workload, same toolkit code — only the resource handle's")
    print("target differs between this script and examples/quickstart.py.")


if __name__ == "__main__":
    main()
