#!/usr/bin/env python3
"""Adaptive sampling with the Simulation-Analysis Loop — for real.

The paper's Fig. 7/8 workload at laptop scale: an ensemble of short MD
simulations followed by a serial CoCo analysis that proposes new start
points in unsampled regions; the next iteration launches from them.  Over
a few iterations, the ensemble's coverage of configuration space grows —
which is what the ExTASY project uses EnTK for.

Run with:  python examples/adaptive_sampling.py
"""

import numpy as np

from repro import Kernel, ResourceHandle, SimulationAnalysisLoop
from repro.md.trajectory import Trajectory

INSTANCES = 4
ITERATIONS = 3
NSTEPS = 400


class AmberCoCo(SimulationAnalysisLoop):
    """Short cold simulations + CoCo frontier analysis."""

    def __init__(self) -> None:
        super().__init__(
            iterations=ITERATIONS,
            simulation_instances=INSTANCES,
            analysis_instances=1,
        )

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="md.amber")
        kernel.arguments = [
            f"--nsteps={NSTEPS}",
            "--temperature=0.5",
            "--system=ala2-2d",
            "--outfile=trajectory.npz",
            f"--seed={1000 * iteration + instance}",
        ]
        if iteration > 1:
            # Start from the CoCo-proposed frontier point for this instance.
            kernel.arguments += [
                "--startfile=coco.npz",
                f"--startindex={instance - 1}",
            ]
            kernel.link_input_data = ["$PREV_ANALYSIS/coco.npz"]
        return kernel

    def analysis_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="analysis.coco")
        kernel.arguments = [
            "--pattern=traj_*.npz",
            f"--npoints={INSTANCES}",
            "--grid-bins=12",
            "--outfile=coco.npz",
        ]
        kernel.link_input_data = [
            f"$SIMULATION_{iteration}_{i}/trajectory.npz > traj_{i}.npz"
            for i in range(1, INSTANCES + 1)
        ]
        return kernel


def coverage(positions: np.ndarray, bins: int = 12) -> float:
    """Fraction of a fixed grid over [-2,2]^2 visited by *positions*."""
    hist, _, _ = np.histogram2d(
        positions[:, 0], positions[:, 1],
        bins=bins, range=[[-2, 2], [-2, 2]],
    )
    return float((hist > 0).mean())


def main() -> None:
    handle = ResourceHandle(resource="local.localhost", cores=4, walltime=30)
    handle.allocate()
    pattern = AmberCoCo()
    handle.run(pattern)

    print(f"ran {len(pattern.units)} tasks over {ITERATIONS} iterations")
    pooled = None
    for iteration in range(1, ITERATIONS + 1):
        sims = [
            u for u in pattern.units
            if u.description.tags.get("phase") == "sim"
            and u.description.tags.get("iteration") == iteration
        ]
        frames = np.vstack(
            [Trajectory.load(f"{u.sandbox}/trajectory.npz").positions
             for u in sims]
        )
        pooled = frames if pooled is None else np.vstack([pooled, frames])
        print(f"iteration {iteration}: cumulative grid coverage "
              f"{coverage(pooled):.1%}")
    print("=> CoCo keeps pushing the ensemble into unsampled territory.")
    handle.deallocate()


if __name__ == "__main__":
    main()
