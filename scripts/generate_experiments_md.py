#!/usr/bin/env python3
"""Regenerate EXPERIMENTS.md by running every figure at paper scale.

Usage:  python scripts/generate_experiments_md.py [output]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analytics.tables import format_table
from repro.experiments import ablations, fig3, fig4, fig5, fig6, fig7, fig8, fig9

PAPER_CLAIMS = {
    "fig3": (
        "Fig. 3 (characterization, Comet, tasks=cores 24-192): execution "
        "times similar across the three patterns and near-constant; EnTK "
        "core overhead constant; pattern overhead grows with task count."
    ),
    "fig4": (
        "Fig. 4 (Gromacs-LSDMap SAL, Comet, 24-192): overheads match the "
        "Fig. 3 utility-kernel runs — kernel plugins do not leak workload "
        "cost into toolkit cost."
    ),
    "fig5": (
        "Fig. 5 (EE strong scaling, SuperMIC, 2560 replicas, 20-2560 "
        "cores): simulation time halves per core doubling; exchange time "
        "constant."
    ),
    "fig6": (
        "Fig. 6 (EE weak scaling, SuperMIC, replicas=cores 20-2560): "
        "simulation time constant; exchange time grows with replicas."
    ),
    "fig7": (
        "Fig. 7 (SAL strong scaling, Stampede, 1024 sims, 64-1024 cores): "
        "simulation time decreases linearly; serial CoCo analysis constant."
    ),
    "fig8": (
        "Fig. 8 (SAL weak scaling, Stampede, sims=cores 64-4096): "
        "simulation time constant; analysis grows with simulation count."
    ),
    "fig9": (
        "Fig. 9 (MPI capability, Stampede, 64 sims x 6 ps, 1/16/32/64 "
        "cores per sim): simulation time drops linearly with cores per "
        "simulation."
    ),
}


def main() -> None:
    output = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("EXPERIMENTS.md")
    runs = [
        ("fig3", fig3.run, {}),
        ("fig4", fig4.run, {}),
        ("fig5", fig5.run, {}),
        ("fig6", fig6.run, {}),
        ("fig7", fig7.run, {}),
        ("fig8", fig8.run, {}),
        ("fig9", fig9.run, {}),
    ]
    sections = [
        "# EXPERIMENTS — paper vs. measured\n",
        "All figures of the paper's evaluation (§IV) rerun at the paper's",
        "parameters on the simulated platforms (DESIGN.md §2 explains the",
        "substitution; absolute seconds are not comparable to the paper's",
        "XSEDE hardware — the *shapes* and *claims* are what reproduce).",
        "",
        "Regenerate with `python scripts/generate_experiments_md.py`;",
        "the same configurations run under "
        "`pytest benchmarks/ --benchmark-only`.",
        "",
    ]
    all_hold = True
    for figure, run, kwargs in runs:
        print(f"running {figure} ...", flush=True)
        result = run(**kwargs)
        all_hold &= result.all_claims_hold
        sections.append(f"## {figure}: {result.description}\n")
        sections.append(f"**Paper:** {PAPER_CLAIMS[figure]}\n")
        sections.append("**Measured:**\n")
        sections.append("```")
        sections.append(format_table(result.rows))
        sections.append("```\n")
        sections.append("**Claims:**\n")
        for statement, holds in result.claims.items():
            sections.append(f"- [{'x' if holds else ' '}] {statement}")
        sections.append("")

    sections.append("## Ablations (beyond the paper)\n")
    for name, run in (
        ("pilot vs per-task batch", ablations.pilot_vs_batch),
        ("agent queue policy", ablations.scheduler_policy),
        ("overhead ∝ tasks", ablations.overhead_scaling),
        ("fault resilience", ablations.fault_resilience),
        ("heterogeneity vs utilization", ablations.heterogeneity_utilization),
        ("patterns vs generic DAG", ablations.patterns_vs_dag),
    ):
        print(f"running ablation: {name} ...", flush=True)
        result = run()
        all_hold &= result.all_claims_hold
        sections.append(f"### {result.figure}: {result.description}\n")
        sections.append("```")
        sections.append(format_table(result.rows))
        sections.append("```\n")
        for statement, holds in result.claims.items():
            sections.append(f"- [{'x' if holds else ' '}] {statement}")
        for note in result.notes:
            sections.append(f"- note: {note}")
        sections.append("")

    sections.append(
        f"**Summary: {'ALL' if all_hold else 'NOT ALL'} paper claims "
        "reproduced.**"
    )
    output.write_text("\n".join(sections) + "\n")
    print(f"wrote {output} (all claims hold: {all_hold})")


if __name__ == "__main__":
    main()
