"""Client <-> resource network model.

The pilot runtime's client side (pilot manager, unit manager) talks to the
agent over the wide area; every control message pays a round-trip time with
a small lognormal jitter.  This is the dominant term in the per-task
submission overhead the paper's Fig. 3 decomposes.
"""

from __future__ import annotations

from repro.eventsim import RandomStreams
from repro.exceptions import ConfigurationError

__all__ = ["NetworkModel"]


class NetworkModel:
    """Latency model for control-plane messages."""

    def __init__(
        self,
        rtt: float,
        jitter: float = 0.1,
        streams: RandomStreams | None = None,
    ) -> None:
        if rtt < 0:
            raise ConfigurationError("rtt must be non-negative")
        if not 0 <= jitter < 1:
            raise ConfigurationError("jitter must be in [0, 1)")
        self.rtt = float(rtt)
        self.jitter = float(jitter)
        self._rng = (streams or RandomStreams(0)).get("network")

    def message_delay(self) -> float:
        """One-way latency of a single control message, seconds."""
        base = self.rtt / 2.0
        if base == 0:
            return 0.0
        if self.jitter == 0:
            return base
        # Lognormal multiplicative noise centred on 1.
        noise = float(self._rng.lognormal(mean=0.0, sigma=self.jitter))
        return base * noise

    def round_trip(self) -> float:
        """Latency of a request/response pair, seconds."""
        return self.message_delay() + self.message_delay()

    def bulk_delay(self, nmessages: int) -> float:
        """Pipelined delay of *nmessages* one-way messages.

        Messages are pipelined on one connection: the first pays the full
        one-way latency, the rest a small serialization cost each.  Matches
        how RADICAL-Pilot bulk-submits units.
        """
        if nmessages <= 0:
            return 0.0
        per_message = 0.1 * self.rtt / 2.0 if self.rtt else 0.0
        return self.message_delay() + per_message * (nmessages - 1)
