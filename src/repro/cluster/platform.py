"""Static descriptions of compute platforms."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = ["NodeSpec", "PlatformSpec"]


@dataclass(frozen=True)
class NodeSpec:
    """Hardware of one (homogeneous) compute node."""

    cores: int
    memory_gb: float
    #: Relative per-core speed; 1.0 is the reference (Comet's Haswell).
    #: Modelled task durations are divided by this factor.
    core_speed: float = 1.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ConfigurationError("node must have at least one core")
        if self.memory_gb <= 0:
            raise ConfigurationError("node memory must be positive")
        if self.core_speed <= 0:
            raise ConfigurationError("core_speed must be positive")


@dataclass(frozen=True)
class PlatformSpec:
    """Everything the simulator needs to know about a machine.

    The latency fields are the per-platform knobs of the overhead models;
    they were chosen to land in the same ballpark as the RADICAL-Pilot
    characterization the paper cites [27], not fitted to the paper's plots.
    """

    name: str
    nodes: int
    node: NodeSpec
    #: Mean batch-queue wait for a pilot job, seconds.  The scaling
    #: experiments in the paper report in-allocation times only, so the
    #: default profiles use small values; the pilot-vs-batch ablation
    #: raises it.
    mean_queue_wait: float = 30.0
    #: Batch system submit latency (qsub round trip), seconds.
    submit_latency: float = 1.0
    #: Time for the pilot agent to bootstrap inside the allocation, seconds.
    agent_bootstrap: float = 15.0
    #: Per-unit launch overhead inside the agent (process spawn, env setup).
    unit_launch_overhead: float = 0.05
    #: Shared filesystem bandwidth, bytes/second.
    fs_bandwidth: float = 1e9
    #: Round-trip latency client <-> resource (task submission path), s.
    network_rtt: float = 0.05
    #: Scheduler queue policy limits.
    max_walltime: float = 48 * 3600.0
    description: str = ""
    #: Free-form extra knobs (kept for forward compatibility).
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nodes <= 0:
            raise ConfigurationError("platform must have at least one node")
        for attr in (
            "mean_queue_wait",
            "submit_latency",
            "agent_bootstrap",
            "unit_launch_overhead",
            "network_rtt",
        ):
            if getattr(self, attr) < 0:
                raise ConfigurationError(f"{attr} must be non-negative")
        if self.fs_bandwidth <= 0:
            raise ConfigurationError("fs_bandwidth must be positive")

    # -- derived quantities --------------------------------------------------

    @property
    def total_cores(self) -> int:
        return self.nodes * self.node.cores

    @property
    def cores_per_node(self) -> int:
        return self.node.cores

    def nodes_for_cores(self, cores: int) -> int:
        """Smallest whole-node allocation holding *cores* cores."""
        if cores <= 0:
            raise ConfigurationError("core request must be positive")
        return math.ceil(cores / self.node.cores)

    def replace(self, **overrides) -> "PlatformSpec":
        """Return a copy with *overrides* applied (dataclass ``replace``)."""
        import dataclasses

        return dataclasses.replace(self, **overrides)
