"""Batch-queue scheduling for simulated clusters.

Implements the two policies that matter for this reproduction:

* ``fifo``  — strict first-come-first-served over whole nodes.
* ``easy``  — FIFO head + EASY backfilling: a later job may jump ahead only
  if it fits in the currently free nodes *and* cannot delay the head job's
  guaranteed start (the "shadow time" computed from running jobs' walltime
  expiries).

Queue *wait* beyond what contention produces is modelled by an optional
exponential hold per job (mean taken from the platform profile), because the
paper's machines were shared with other users we do not simulate.
"""

from __future__ import annotations

from typing import Callable

from repro.cluster.job import BatchJob, BatchJobState
from repro.cluster.platform import PlatformSpec
from repro.eventsim import Event, RandomStreams, Simulator
from repro.exceptions import QueuePolicyError
from repro.utils.logger import get_logger

__all__ = ["BatchScheduler"]

log = get_logger("cluster.batch")


class BatchScheduler:
    """The batch system of one simulated cluster."""

    def __init__(
        self,
        sim: Simulator,
        platform: PlatformSpec,
        streams: RandomStreams | None = None,
        *,
        policy: str = "easy",
        model_queue_wait: bool = False,
    ) -> None:
        if policy not in ("fifo", "easy"):
            raise QueuePolicyError(f"unknown queue policy {policy!r}")
        self.sim = sim
        self.platform = platform
        self.policy = policy
        self.model_queue_wait = model_queue_wait
        self.streams = streams or RandomStreams(0)
        self.free_nodes = platform.nodes
        self._queue: list[BatchJob] = []
        self._running: dict[str, BatchJob] = {}
        self._kill_events: dict[str, Event] = {}
        self._eligible_at: dict[str, float] = {}
        self._history: list[BatchJob] = []

    # -- public API ----------------------------------------------------------

    def submit(self, job: BatchJob) -> BatchJob:
        """Submit *job*; it becomes visible after the platform submit latency."""
        if job.nodes > self.platform.nodes:
            raise QueuePolicyError(
                f"job {job.uid} wants {job.nodes} nodes; "
                f"{self.platform.name} has {self.platform.nodes}"
            )
        if job.walltime <= 0:
            raise QueuePolicyError("walltime must be positive")
        if job.walltime > self.platform.max_walltime:
            raise QueuePolicyError(
                f"walltime {job.walltime}s exceeds queue limit "
                f"{self.platform.max_walltime}s"
            )
        job.submit_time = self.sim.now
        hold = 0.0
        if self.model_queue_wait and self.platform.mean_queue_wait > 0:
            hold = float(
                self.streams.get("queue_wait").exponential(
                    self.platform.mean_queue_wait
                )
            )
        self._eligible_at[job.uid] = self.sim.now + self.platform.submit_latency + hold
        self.sim.schedule(
            self.platform.submit_latency,
            lambda: self._enqueue(job),
            label=f"enqueue:{job.uid}",
        )
        return job

    def cancel(self, job: BatchJob) -> None:
        """Cancel a pending or running job."""
        if job.state is BatchJobState.PENDING:
            if job in self._queue:
                self._queue.remove(job)
            job.advance(BatchJobState.CANCELLED)
            job.end_time = self.sim.now
            self._finish(job, BatchJobState.CANCELLED, release_nodes=False)
        elif job.state is BatchJobState.RUNNING:
            self.release(job, BatchJobState.CANCELLED)

    def fail(self, job: BatchJob) -> None:
        """Kill a running job from outside (its nodes died); frees its nodes.

        Pending jobs cannot *fail* this way — there is nothing running to
        die — so failing a non-running job is a no-op.
        """
        if job.state is BatchJobState.RUNNING:
            self.release(job, BatchJobState.FAILED)

    def release(self, job: BatchJob, state: BatchJobState = BatchJobState.COMPLETED) -> None:
        """Return a running job's nodes to the pool and finalize it."""
        if job.state is not BatchJobState.RUNNING:
            raise QueuePolicyError(
                f"cannot release job {job.uid} in state {job.state.value}"
            )
        kill = self._kill_events.pop(job.uid, None)
        if kill is not None:
            self.sim.cancel(kill)
        self._running.pop(job.uid, None)
        self.free_nodes += job.nodes
        job.advance(state)
        job.end_time = self.sim.now
        self._finish(job, state, release_nodes=False)
        self._try_schedule()

    @property
    def queued_jobs(self) -> list[BatchJob]:
        return list(self._queue)

    @property
    def running_jobs(self) -> list[BatchJob]:
        return list(self._running.values())

    @property
    def history(self) -> list[BatchJob]:
        """All jobs that reached a final state, in completion order."""
        return list(self._history)

    # -- internals -------------------------------------------------------------

    def _finish(self, job: BatchJob, state: BatchJobState, *, release_nodes: bool) -> None:
        if release_nodes:
            self.free_nodes += job.nodes
        self._history.append(job)
        if job.on_end is not None:
            job.on_end(job, state)

    def _enqueue(self, job: BatchJob) -> None:
        if job.state is not BatchJobState.PENDING:
            return  # cancelled while in the submit pipe
        self._queue.append(job)
        self._try_schedule()

    def _is_eligible(self, job: BatchJob) -> bool:
        return self.sim.now >= self._eligible_at.get(job.uid, 0.0) - 1e-9

    def _retry_at_eligibility(self, job: BatchJob) -> None:
        when = self._eligible_at.get(job.uid, self.sim.now)
        if when > self.sim.now:
            self.sim.schedule_at(
                when, self._try_schedule, label=f"eligible:{job.uid}"
            )

    def _try_schedule(self) -> None:
        """Place as many queued jobs as the policy allows."""
        # FIFO phase: start eligible jobs from the head while they fit.
        while self._queue:
            head = self._queue[0]
            if not self._is_eligible(head):
                self._retry_at_eligibility(head)
                break
            if head.nodes <= self.free_nodes:
                self._queue.pop(0)
                self._start(head)
            else:
                break

        if self.policy != "easy" or not self._queue:
            return

        head = self._queue[0]
        if not self._is_eligible(head):
            return
        shadow, spare = self._shadow_time(head)
        for job in list(self._queue[1:]):
            if job.nodes > self.free_nodes or not self._is_eligible(job):
                if not self._is_eligible(job):
                    self._retry_at_eligibility(job)
                continue
            ends_before_shadow = self.sim.now + job.walltime <= shadow + 1e-9
            fits_in_spare = job.nodes <= spare
            if ends_before_shadow or fits_in_spare:
                self._queue.remove(job)
                self._start(job)
                if job.nodes <= spare:
                    spare -= job.nodes
                # Free nodes changed; the head still cannot start (we only
                # backfilled jobs that fit in what the head could not use).

    def _shadow_time(self, head: BatchJob) -> tuple[float, int]:
        """Earliest guaranteed start for *head* and spare nodes at that time.

        Walks running jobs in order of guaranteed end (start + walltime),
        accumulating released nodes until the head fits.  Returns
        ``(shadow_time, spare_nodes)`` where *spare_nodes* is how many of the
        then-free nodes the head would leave unused (backfill jobs that fit
        in the spare can never delay the head).
        """
        free = self.free_nodes
        if head.nodes <= free:
            return self.sim.now, free - head.nodes
        expiries = sorted(
            (j.start_time + j.walltime, j.nodes)  # type: ignore[operator]
            for j in self._running.values()
        )
        for when, nodes in expiries:
            free += nodes
            if free >= head.nodes:
                return max(when, self.sim.now), free - head.nodes
        # Unreachable if the submit-side size check passed, but stay safe.
        return float("inf"), 0

    def _start(self, job: BatchJob) -> None:
        self.free_nodes -= job.nodes
        if self.free_nodes < 0:
            raise QueuePolicyError("scheduler over-allocated nodes (internal bug)")
        job.advance(BatchJobState.RUNNING)
        job.start_time = self.sim.now
        self._running[job.uid] = job
        self._kill_events[job.uid] = self.sim.schedule(
            job.walltime,
            lambda: self._walltime_kill(job),
            label=f"walltime:{job.uid}",
        )
        if job.duration is not None:
            self.sim.schedule(
                min(job.duration, job.walltime),
                lambda: self._natural_end(job),
                label=f"duration:{job.uid}",
            )
        if job.on_start is not None:
            job.on_start(job)

    def _natural_end(self, job: BatchJob) -> None:
        if job.state is BatchJobState.RUNNING:
            self.release(job, BatchJobState.COMPLETED)

    def _walltime_kill(self, job: BatchJob) -> None:
        if job.state is BatchJobState.RUNNING:
            self.release(job, BatchJobState.TIMEOUT)
