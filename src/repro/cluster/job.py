"""Batch jobs as seen by a cluster's batch system."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import StateTransitionError
from repro.utils.ids import generate_id

__all__ = ["BatchJobState", "BatchJob"]


class BatchJobState(str, enum.Enum):
    """Life cycle of a batch job.

    ``PENDING -> RUNNING -> {COMPLETED, TIMEOUT, FAILED, CANCELLED}`` and
    ``PENDING -> CANCELLED``.  ``FAILED`` is an external kill — the nodes
    under the job died (as opposed to the scheduler's own walltime
    ``TIMEOUT`` or a user ``CANCELLED``).
    """

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    TIMEOUT = "TIMEOUT"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def is_final(self) -> bool:
        return self in (
            BatchJobState.COMPLETED,
            BatchJobState.TIMEOUT,
            BatchJobState.FAILED,
            BatchJobState.CANCELLED,
        )


_LEGAL_EDGES: dict[BatchJobState, frozenset[BatchJobState]] = {
    BatchJobState.PENDING: frozenset(
        {BatchJobState.RUNNING, BatchJobState.CANCELLED}
    ),
    BatchJobState.RUNNING: frozenset(
        {
            BatchJobState.COMPLETED,
            BatchJobState.TIMEOUT,
            BatchJobState.FAILED,
            BatchJobState.CANCELLED,
        }
    ),
    BatchJobState.COMPLETED: frozenset(),
    BatchJobState.TIMEOUT: frozenset(),
    BatchJobState.FAILED: frozenset(),
    BatchJobState.CANCELLED: frozenset(),
}


@dataclass
class BatchJob:
    """A request for *nodes* whole nodes for up to *walltime* seconds.

    ``on_start(job)`` fires when the scheduler places the job; the payload
    (e.g. a pilot agent) runs from then on.  ``on_end(job, state)`` fires at
    release, whatever the reason.  ``duration`` is how long the payload will
    hold the allocation if not killed; ``None`` means "until walltime"
    (typical for pilots, which are cancelled by their pilot manager).
    """

    nodes: int
    walltime: float
    duration: float | None = None
    name: str = ""
    on_start: Callable[["BatchJob"], Any] | None = None
    on_end: Callable[["BatchJob", BatchJobState], Any] | None = None

    uid: str = field(default_factory=lambda: generate_id("batchjob"))
    state: BatchJobState = BatchJobState.PENDING
    submit_time: float | None = None
    start_time: float | None = None
    end_time: float | None = None

    def advance(self, target: BatchJobState) -> None:
        """Move to *target*, enforcing the legal-edge table."""
        if target not in _LEGAL_EDGES[self.state]:
            raise StateTransitionError(
                f"BatchJob {self.uid}", self.state.value, target.value
            )
        self.state = target

    @property
    def queue_wait(self) -> float | None:
        """Seconds spent pending, once started (``None`` before that)."""
        if self.submit_time is None or self.start_time is None:
            return None
        return self.start_time - self.submit_time
