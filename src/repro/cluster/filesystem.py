"""Shared-filesystem transfer model.

Data staging in the pilot runtime charges time against this model: a
transfer of ``nbytes`` costs ``latency + nbytes / bandwidth`` seconds, with
optional contention (concurrent transfers share the bandwidth equally, which
is the right first-order model for a striped parallel filesystem).
"""

from __future__ import annotations

from repro.exceptions import ConfigurationError

__all__ = ["SharedFilesystem"]


class SharedFilesystem:
    """First-order Lustre/GPFS-like transfer cost model."""

    def __init__(
        self,
        bandwidth: float,
        latency: float = 1e-3,
        *,
        contention: bool = True,
    ) -> None:
        if bandwidth <= 0:
            raise ConfigurationError("bandwidth must be positive")
        if latency < 0:
            raise ConfigurationError("latency must be non-negative")
        self.bandwidth = float(bandwidth)
        self.latency = float(latency)
        self.contention = contention
        self._active_transfers = 0

    def transfer_begin(self) -> None:
        """Note one more concurrent transfer (affects contention)."""
        self._active_transfers += 1

    def transfer_end(self) -> None:
        if self._active_transfers <= 0:
            raise ConfigurationError("transfer_end without transfer_begin")
        self._active_transfers -= 1

    @property
    def active_transfers(self) -> int:
        return self._active_transfers

    def transfer_time(self, nbytes: float) -> float:
        """Seconds to move *nbytes* under the current contention level."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        concurrency = max(1, self._active_transfers) if self.contention else 1
        return self.latency + nbytes * concurrency / self.bandwidth
