"""Simulated HPC platforms.

This package models the machines the paper ran on — XSEDE Comet, Stampede
and SuperMIC — at the level of detail the experiments require: node/core
counts, a batch queue with FIFO + EASY-backfill scheduling, configurable
queue-wait behaviour, a shared-filesystem transfer model and per-platform
performance/overhead profiles.

The real clusters are gone (and were never reachable from a laptop); the
paper's results depend on task counts, core counts and per-component
latencies, all of which these models reproduce.  See DESIGN.md §2 for the
substitution argument.
"""

from repro.cluster.platform import NodeSpec, PlatformSpec
from repro.cluster.platforms import get_platform, list_platforms, register_platform
from repro.cluster.job import BatchJob, BatchJobState
from repro.cluster.batch import BatchScheduler
from repro.cluster.faults import NodeFaultModel, NodeFaultProcess
from repro.cluster.filesystem import SharedFilesystem
from repro.cluster.network import NetworkModel

__all__ = [
    "NodeSpec",
    "PlatformSpec",
    "get_platform",
    "list_platforms",
    "register_platform",
    "BatchJob",
    "BatchJobState",
    "BatchScheduler",
    "NodeFaultModel",
    "NodeFaultProcess",
    "SharedFilesystem",
    "NetworkModel",
]
