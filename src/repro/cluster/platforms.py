"""Registry of named platform profiles.

The three XSEDE machines from the paper's §IV, plus a local profile used by
examples and tests.  Node counts and cores/node are the paper's; the latency
knobs follow the RADICAL-Pilot characterization the paper cites.
"""

from __future__ import annotations

from repro.cluster.platform import NodeSpec, PlatformSpec
from repro.exceptions import PlatformError

__all__ = ["get_platform", "list_platforms", "register_platform"]

_REGISTRY: dict[str, PlatformSpec] = {}


def register_platform(spec: PlatformSpec, *, replace: bool = False) -> None:
    """Add *spec* to the registry under ``spec.name``."""
    if spec.name in _REGISTRY and not replace:
        raise PlatformError(f"platform {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform profile by name (e.g. ``"xsede.comet"``)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise PlatformError(f"unknown platform {name!r} (known: {known})") from None


def list_platforms() -> list[str]:
    """Names of all registered platforms, sorted."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# Built-in profiles
# ---------------------------------------------------------------------------

register_platform(
    PlatformSpec(
        name="local.localhost",
        nodes=1,
        node=NodeSpec(cores=8, memory_gb=16.0, core_speed=1.0),
        mean_queue_wait=0.0,
        submit_latency=0.0,
        agent_bootstrap=0.0,
        unit_launch_overhead=0.0,
        network_rtt=0.0,
        description="The local machine; used by examples and functional tests.",
    )
)

register_platform(
    PlatformSpec(
        name="xsede.comet",
        nodes=1984,
        node=NodeSpec(cores=24, memory_gb=120.0, core_speed=1.0),
        mean_queue_wait=60.0,
        submit_latency=1.0,
        agent_bootstrap=20.0,
        unit_launch_overhead=0.05,
        fs_bandwidth=2e9,
        network_rtt=0.05,
        description="XSEDE Comet: Intel Xeon, 1984 nodes x 24 cores, 120 GB/node.",
    )
)

register_platform(
    PlatformSpec(
        name="xsede.stampede",
        nodes=6400,
        node=NodeSpec(cores=16, memory_gb=32.0, core_speed=0.9),
        mean_queue_wait=120.0,
        submit_latency=1.0,
        agent_bootstrap=25.0,
        unit_launch_overhead=0.06,
        fs_bandwidth=1.5e9,
        network_rtt=0.06,
        description="XSEDE Stampede: Intel Xeon, 6400 nodes x 16 cores, 32 GB/node.",
    )
)

register_platform(
    PlatformSpec(
        name="xsede.supermic",
        nodes=360,
        node=NodeSpec(cores=20, memory_gb=60.0, core_speed=0.95),
        mean_queue_wait=90.0,
        submit_latency=1.0,
        agent_bootstrap=22.0,
        unit_launch_overhead=0.05,
        fs_bandwidth=1.2e9,
        network_rtt=0.07,
        description="LSU SuperMIC: Intel Xeon (+Phi), 360 nodes x 20 cores, 60 GB/node.",
    )
)

register_platform(
    PlatformSpec(
        name="ncsa.bluewaters",
        nodes=22640,
        node=NodeSpec(cores=32, memory_gb=64.0, core_speed=0.85),
        mean_queue_wait=300.0,
        submit_latency=2.0,
        agent_bootstrap=40.0,
        unit_launch_overhead=0.08,
        fs_bandwidth=3e9,
        network_rtt=0.09,
        description="NSF Blue Waters (Cray XE/XK); paper §V mentions O(10k)-task runs.",
    )
)
