"""Node-level failure domains for simulated clusters.

Task-level faults (:mod:`repro.pilot.faults`) model a single process
dying; production ensembles also lose whole *nodes* — a crash takes down
every unit resident on the node and the node stays out of service for a
repair interval.  This module models that failure domain:

* each node of an allocation fails independently with an exponential
  mean-time-between-failures (``mtbf``),
* a failed node is unschedulable for ``repair_time`` seconds, then
  returns to service and its failure clock re-arms,
* failure draws come from their own named random stream
  (``"node_faults"``), so enabling node faults does not perturb queue
  wait, network or task-fault draws of an otherwise identical run.

The pilot agent owns one :class:`NodeFaultProcess` per allocation and
reacts to its callbacks (killing resident units, masking slots); the
process itself knows nothing about pilots or units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.eventsim import Event, Simulator

__all__ = ["NodeFaultModel", "NodeFaultProcess"]

#: Name of the random stream all node-failure draws come from.
NODE_FAULT_STREAM = "node_faults"


@dataclass(frozen=True)
class NodeFaultModel:
    """Per-node exponential failure/repair parameters.

    ``mtbf`` is the mean seconds between failures of *one* node (0 disables
    node faults entirely); ``repair_time`` is how long a failed node stays
    unschedulable before rejoining the pool.
    """

    mtbf: float = 0.0
    repair_time: float = 300.0

    def __post_init__(self) -> None:
        if self.mtbf < 0:
            raise ConfigurationError("node mtbf must be non-negative")
        if self.repair_time <= 0:
            raise ConfigurationError("node repair_time must be positive")

    @property
    def enabled(self) -> bool:
        return self.mtbf > 0.0


class NodeFaultProcess:
    """Drives failure/repair cycles for the nodes of one allocation.

    Parameters
    ----------
    sim:
        The discrete-event simulator to schedule on.
    rng:
        Generator for the exponential draws (callers pass the session's
        ``"node_faults"`` stream).
    nnodes:
        Number of nodes in the allocation (node ids ``0..nnodes-1``).
    model:
        The MTBF/repair parametrization.
    on_fail / on_repair:
        ``callback(node_id)`` invoked at each transition, *before* the
        next cycle is armed.
    label:
        Prefix for event labels (usually the owning pilot's uid).
    """

    def __init__(
        self,
        sim: "Simulator",
        rng: "np.random.Generator",
        nnodes: int,
        model: NodeFaultModel,
        on_fail: Callable[[int], None],
        on_repair: Callable[[int], None],
        label: str = "",
    ) -> None:
        if nnodes < 1:
            raise ConfigurationError("allocation must span at least one node")
        if not model.enabled:
            raise ConfigurationError("NodeFaultProcess needs an enabled model")
        self.sim = sim
        self.rng = rng
        self.nnodes = nnodes
        self.model = model
        self.on_fail = on_fail
        self.on_repair = on_repair
        self.label = label
        self._events: dict[int, "Event"] = {}
        self._down: set[int] = set()
        self._started = False

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Arm the failure clock of every node."""
        if self._started:
            return
        self._started = True
        for node in range(self.nnodes):
            self._arm(node)

    def stop(self) -> None:
        """Cancel every pending failure/repair event."""
        if not self._started:
            return
        self._started = False
        for event in self._events.values():
            self.sim.cancel(event)
        self._events.clear()

    @property
    def down_nodes(self) -> set[int]:
        """Node ids currently failed and under repair."""
        return set(self._down)

    # -- internals --------------------------------------------------------------

    def _arm(self, node: int) -> None:
        delay = float(self.rng.exponential(self.model.mtbf))
        self._events[node] = self.sim.schedule(
            delay,
            lambda n=node: self._fail(n),
            label=f"node_fail:{self.label}:{node}",
        )

    def _fail(self, node: int) -> None:
        if not self._started:
            return
        self._events.pop(node, None)
        self._down.add(node)
        self.on_fail(node)
        self._events[node] = self.sim.schedule(
            self.model.repair_time,
            lambda n=node: self._repair(n),
            label=f"node_repair:{self.label}:{node}",
        )

    def _repair(self, node: int) -> None:
        if not self._started:
            return
        self._events.pop(node, None)
        self._down.discard(node)
        self.on_repair(node)
        self._arm(node)
