"""SAGA-like job description, job handle and job service."""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable
from urllib.parse import urlparse

from repro.exceptions import BadParameter, IncorrectState, NoSuccess
from repro.saga.states import JobState, validate_transition
from repro.utils.ids import generate_id
from repro.utils.logger import get_logger

__all__ = ["JobDescription", "Job", "JobService"]

log = get_logger("saga.job")


@dataclass
class JobDescription:
    """JSDL-style description of one job.

    ``payload`` is the Python-native equivalent of ``executable``: adaptors
    that really execute (fork) call it; adaptors that simulate use
    ``modelled_duration`` instead.  Exactly mirroring JSDL's split between
    what to run and what resources it needs.
    """

    executable: str = ""
    arguments: list[str] = field(default_factory=list)
    environment: dict[str, str] = field(default_factory=dict)
    working_directory: str = ""
    name: str = ""
    queue: str = ""
    project: str = ""
    total_cpu_count: int = 1
    wall_time_limit: float = 3600.0  # seconds
    output: str = ""
    error: str = ""
    payload: Callable[["Job"], Any] | None = None
    modelled_duration: float | None = None

    def validate(self) -> None:
        if self.total_cpu_count < 1:
            raise BadParameter("total_cpu_count must be >= 1")
        if self.wall_time_limit <= 0:
            raise BadParameter("wall_time_limit must be positive")
        if not self.executable and self.payload is None:
            raise BadParameter("job needs an executable or a payload")


class Job:
    """Handle on a submitted (or to-be-submitted) job."""

    def __init__(self, description: JobDescription, service: "JobService") -> None:
        description.validate()
        self.uid = generate_id("saga.job")
        self.description = description
        self.service = service
        self._state = JobState.NEW
        self._state_lock = threading.Lock()
        self._final = threading.Event()
        self._callbacks: list[Callable[["Job", JobState], Any]] = []
        self.exit_code: int | None = None
        self.result: Any = None
        self.exception: BaseException | None = None
        self.timestamps: dict[str, float] = {}

    # -- state ---------------------------------------------------------------

    @property
    def state(self) -> JobState:
        return self._state

    def _advance(self, target: JobState) -> None:
        with self._state_lock:
            if self._state == target:
                return
            validate_transition(f"Job {self.uid}", self._state, target)
            self._state = target
            self.timestamps[target.value] = self.service.now()
            callbacks = list(self._callbacks)
        for cb in callbacks:
            cb(self, target)
        if target.is_final:
            self._final.set()

    def add_callback(self, callback: Callable[["Job", JobState], Any]) -> None:
        """Register ``callback(job, new_state)`` for every transition."""
        self._callbacks.append(callback)

    # -- operations ------------------------------------------------------------

    def run(self) -> "Job":
        """Submit the job through the service's adaptor."""
        if self._state is not JobState.NEW:
            raise IncorrectState(f"job {self.uid} already submitted")
        self.service._adaptor.submit(self)
        return self

    def wait(self, timeout: float | None = None) -> JobState:
        """Block until the job reaches a final state (fork adaptor) or
        return the current state (sim adaptor: virtual time cannot block)."""
        if self.service.is_simulated:
            return self._state
        if not self._final.wait(timeout):
            raise NoSuccess(f"timeout waiting for job {self.uid}")
        return self._state

    def cancel(self) -> None:
        if self._state.is_final:
            return
        self.service._adaptor.cancel(self)

    def fail(self) -> None:
        """Kill the job from outside (simulated node/allocation death)."""
        if self._state.is_final:
            return
        self.service._adaptor.fail(self)


class JobService:
    """Factory of :class:`Job` objects bound to one endpoint.

    ``fork://localhost`` executes payloads in daemon threads on this host;
    ``sim://<platform>`` needs a ``context`` carrying the simulator and the
    platform's batch scheduler (see :mod:`repro.saga.adaptors.sim`).
    """

    def __init__(self, url: str, context: Any = None) -> None:
        parsed = urlparse(url)
        self.url = url
        self.scheme = parsed.scheme
        self.host = parsed.netloc or parsed.path
        self.context = context
        self._adaptor = self._resolve_adaptor()
        self.jobs: list[Job] = []

    def _resolve_adaptor(self):
        # Imported here to avoid a cycle (adaptors import Job for typing).
        from repro.saga.adaptors.local import ForkAdaptor
        from repro.saga.adaptors.sim import SimAdaptor

        if self.scheme == "fork":
            return ForkAdaptor(self)
        if self.scheme == "sim":
            if self.context is None:
                raise BadParameter("sim:// job service needs a SimContext")
            return SimAdaptor(self)
        raise BadParameter(f"unsupported job service scheme {self.scheme!r}")

    @property
    def is_simulated(self) -> bool:
        return self.scheme == "sim"

    def now(self) -> float:
        """Timestamp source matching the adaptor (wall or virtual)."""
        return self._adaptor.now()

    def create_job(self, description: JobDescription) -> Job:
        job = Job(description, self)
        self.jobs.append(job)
        return job

    def close(self) -> None:
        """Cancel all non-final jobs created by this service."""
        for job in self.jobs:
            if not job.state.is_final:
                job.cancel()
