"""The SAGA job state model (GFD.90)."""

from __future__ import annotations

import enum

from repro.exceptions import StateTransitionError

__all__ = ["JobState", "validate_transition"]


class JobState(str, enum.Enum):
    """SAGA job states: NEW -> PENDING -> RUNNING -> {DONE, FAILED, CANCELED}."""

    NEW = "NEW"
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"

    @property
    def is_final(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELED)


_LEGAL: dict[JobState, frozenset[JobState]] = {
    JobState.NEW: frozenset({JobState.PENDING, JobState.CANCELED, JobState.FAILED}),
    JobState.PENDING: frozenset(
        {JobState.RUNNING, JobState.CANCELED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {JobState.DONE, JobState.FAILED, JobState.CANCELED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELED: frozenset(),
}


def validate_transition(entity: str, current: JobState, target: JobState) -> None:
    """Raise :class:`StateTransitionError` unless ``current -> target`` is legal."""
    if target not in _LEGAL[current]:
        raise StateTransitionError(entity, current.value, target.value)
