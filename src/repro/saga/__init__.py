"""A SAGA-like job submission API (cf. paper §III.C.1).

The paper keeps Ensemble Toolkit portable by speaking a standard job
submission language (SAGA / JSDL) to every machine.  This package provides
the same shape of API:

* :class:`JobDescription` — JSDL-style description of a job,
* :class:`Job` — a handle with ``run`` / ``wait`` / ``cancel`` and a SAGA
  state model,
* :class:`JobService` — an endpoint (``fork://localhost`` or
  ``sim://<platform>``) that creates jobs.

Two adaptors back the API: ``fork`` really runs the payload in a thread on
this machine; ``sim`` submits a batch job into a simulated cluster's queue.
"""

from repro.saga.states import JobState
from repro.saga.job import Job, JobDescription, JobService

__all__ = ["JobState", "Job", "JobDescription", "JobService"]
