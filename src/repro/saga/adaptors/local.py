"""The ``fork://`` adaptor: really run job payloads on this machine.

Each job's ``payload(job)`` callable executes in a daemon thread.  This is
the execution path for examples and functional tests — files genuinely get
created, MD genuinely integrates.  The adaptor reads time from a process-wide
wall clock so job timestamps are comparable across services.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

from repro.saga.states import JobState
from repro.utils.logger import get_logger
from repro.utils.timing import WallClock

if TYPE_CHECKING:  # pragma: no cover
    from repro.saga.job import Job, JobService

__all__ = ["ForkAdaptor"]

log = get_logger("saga.adaptor.fork")

_WALL = WallClock()


class ForkAdaptor:
    """Thread-per-job local execution."""

    def __init__(self, service: "JobService") -> None:
        self.service = service
        self._threads: dict[str, threading.Thread] = {}
        self._cancel_requested: set[str] = set()

    def now(self) -> float:
        return _WALL.now()

    def submit(self, job: "Job") -> None:
        job._advance(JobState.PENDING)
        thread = threading.Thread(
            target=self._run, args=(job,), name=f"saga-{job.uid}", daemon=True
        )
        self._threads[job.uid] = thread
        thread.start()

    def _run(self, job: "Job") -> None:
        if job.uid in self._cancel_requested:
            job._advance(JobState.CANCELED)
            return
        job._advance(JobState.RUNNING)
        try:
            if job.description.payload is not None:
                job.result = job.description.payload(job)
            job.exit_code = 0
        except BaseException as exc:  # noqa: BLE001 - job failure is data
            job.exception = exc
            job.exit_code = 1
            log.debug("job %s failed: %r", job.uid, exc)
            job._advance(JobState.FAILED)
            return
        if job.uid in self._cancel_requested:
            job._advance(JobState.CANCELED)
        else:
            job._advance(JobState.DONE)

    def fail(self, job: "Job") -> None:
        """Real threads cannot be killed from outside; degrade to cancel."""
        self.cancel(job)

    def cancel(self, job: "Job") -> None:
        """Best-effort cancellation.

        A payload already running is cooperative: it may poll
        ``job.state`` or simply finish, in which case the final state
        becomes CANCELED when the flag was set in time.
        """
        self._cancel_requested.add(job.uid)
        if job.state is JobState.NEW:
            job._advance(JobState.CANCELED)
