"""The ``sim://`` adaptor: submit jobs into a simulated cluster's batch queue.

A :class:`SimContext` bundles the discrete-event simulator, the platform
profile and its batch scheduler; one context is shared by the job service,
the pilot runtime's overhead models and the executor, so the whole stack
advances on one virtual clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.cluster.batch import BatchScheduler
from repro.cluster.filesystem import SharedFilesystem
from repro.cluster.job import BatchJob, BatchJobState
from repro.cluster.network import NetworkModel
from repro.cluster.platform import PlatformSpec
from repro.eventsim import RandomStreams, Simulator
from repro.saga.states import JobState
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.saga.job import Job, JobService

__all__ = ["SimContext", "SimAdaptor"]

log = get_logger("saga.adaptor.sim")


@dataclass
class SimContext:
    """Everything one simulated platform run shares."""

    platform: PlatformSpec
    sim: Simulator = field(default_factory=Simulator)
    streams: RandomStreams = field(default_factory=lambda: RandomStreams(0))
    model_queue_wait: bool = False
    batch: BatchScheduler = field(init=False)
    network: NetworkModel = field(init=False)
    filesystem: SharedFilesystem = field(init=False)

    def __post_init__(self) -> None:
        self.batch = BatchScheduler(
            self.sim,
            self.platform,
            self.streams,
            model_queue_wait=self.model_queue_wait,
        )
        self.network = NetworkModel(
            self.platform.network_rtt, streams=self.streams
        )
        self.filesystem = SharedFilesystem(self.platform.fs_bandwidth)


class SimAdaptor:
    """Map SAGA jobs onto simulated batch jobs."""

    def __init__(self, service: "JobService") -> None:
        self.service = service
        self.context: SimContext = service.context
        self._batch_jobs: dict[str, BatchJob] = {}

    def now(self) -> float:
        return self.context.sim.now

    def submit(self, job: "Job") -> None:
        desc = job.description
        platform = self.context.platform
        nodes = platform.nodes_for_cores(desc.total_cpu_count)

        def on_start(batch_job: BatchJob) -> None:
            job._advance(JobState.RUNNING)
            if desc.payload is not None:
                # The payload runs *in virtual time*: it receives the job and
                # may schedule further events on the shared simulator.
                desc.payload(job)

        def on_end(batch_job: BatchJob, state: BatchJobState) -> None:
            if job.state.is_final:
                return
            if state is BatchJobState.COMPLETED:
                job.exit_code = 0
                job._advance(JobState.DONE)
            elif state in (BatchJobState.TIMEOUT, BatchJobState.FAILED):
                job.exit_code = 1
                job._advance(JobState.FAILED)
            else:
                job._advance(JobState.CANCELED)

        batch_job = BatchJob(
            nodes=nodes,
            walltime=desc.wall_time_limit,
            duration=desc.modelled_duration,
            name=desc.name or job.uid,
            on_start=on_start,
            on_end=on_end,
        )
        self._batch_jobs[job.uid] = batch_job
        job._advance(JobState.PENDING)
        self.context.batch.submit(batch_job)

    def cancel(self, job: "Job") -> None:
        batch_job = self._batch_jobs.get(job.uid)
        if batch_job is None:
            if not job.state.is_final:
                job._advance(JobState.CANCELED)
            return
        if not batch_job.state.is_final:
            self.context.batch.cancel(batch_job)
        elif not job.state.is_final:
            job._advance(JobState.CANCELED)

    def fail(self, job: "Job") -> None:
        """Kill the job's allocation out from under it (external failure)."""
        batch_job = self._batch_jobs.get(job.uid)
        if batch_job is not None and batch_job.state is BatchJobState.RUNNING:
            self.context.batch.fail(batch_job)
        elif not job.state.is_final:
            job._advance(JobState.FAILED)
