"""SAGA adaptors: backends that actually run (or simulate) jobs."""

from repro.saga.adaptors.local import ForkAdaptor
from repro.saga.adaptors.sim import SimAdaptor, SimContext

__all__ = ["ForkAdaptor", "SimAdaptor", "SimContext"]
