"""A small, validating configuration container.

:class:`Config` is a dictionary with dotted-path access, defaulting and type
checking.  It is used for platform profiles (``repro.cluster.platforms``),
pilot overhead models and experiment parameter sets, so one mechanism covers
all "bag of named numbers" needs in the package.
"""

from __future__ import annotations

import copy
from collections.abc import Iterator, Mapping
from typing import Any

from repro.exceptions import ConfigurationError

__all__ = ["Config"]


class Config(Mapping[str, Any]):
    """Immutable-ish nested configuration with dotted-path lookups.

    >>> cfg = Config({"agent": {"cores": 16, "scheduler": "backfill"}})
    >>> cfg["agent.cores"]
    16
    >>> cfg.get("agent.missing", 3)
    3
    """

    def __init__(self, data: Mapping[str, Any] | None = None) -> None:
        self._data: dict[str, Any] = copy.deepcopy(dict(data or {}))

    # -- Mapping interface -------------------------------------------------

    def __getitem__(self, key: str) -> Any:
        node: Any = self._data
        for part in key.split("."):
            if not isinstance(node, Mapping) or part not in node:
                raise KeyError(key)
            node = node[part]
        if isinstance(node, Mapping):
            return Config(node)
        return node

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Config({self._data!r})"

    # -- conveniences ------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def require(self, key: str, kind: type | tuple[type, ...] | None = None) -> Any:
        """Return ``self[key]`` or raise :class:`ConfigurationError`.

        When *kind* is given the value must be an instance of it (``bool`` is
        rejected where an ``int``/``float`` is required, because a stray
        ``True`` in a numeric field is nearly always a bug).
        """
        try:
            value = self[key]
        except KeyError:
            raise ConfigurationError(f"missing configuration key {key!r}") from None
        if kind is not None:
            if isinstance(value, bool) and kind in (int, float, (int, float)):
                raise ConfigurationError(
                    f"configuration key {key!r} must be {kind}, got bool"
                )
            if not isinstance(value, kind):
                raise ConfigurationError(
                    f"configuration key {key!r} must be {kind}, got {type(value)}"
                )
        return value

    def merged(self, overrides: Mapping[str, Any] | None) -> "Config":
        """Return a new config with *overrides* recursively merged in."""
        if not overrides:
            return Config(self._data)

        def merge(base: dict[str, Any], over: Mapping[str, Any]) -> dict[str, Any]:
            out = dict(base)
            for key, value in over.items():
                if (
                    key in out
                    and isinstance(out[key], Mapping)
                    and isinstance(value, Mapping)
                ):
                    out[key] = merge(dict(out[key]), value)
                else:
                    out[key] = copy.deepcopy(value)
            return out

        if isinstance(overrides, Config):
            overrides = overrides.as_dict()
        return Config(merge(self._data, overrides))

    def as_dict(self) -> dict[str, Any]:
        """Return a deep copy of the underlying plain dictionary."""
        return copy.deepcopy(self._data)
