"""Clock abstractions.

Everything in the pilot runtime and the EnTK profiler reads time through a
:class:`Clock` so the same code paths run against the wall clock (local
execution) and against the discrete-event simulator's virtual clock (scaling
experiments).  The virtual clock is advanced exclusively by the simulator;
components only ever *read* it.
"""

from __future__ import annotations

import abc
import time

__all__ = ["Clock", "WallClock", "VirtualClock"]


class Clock(abc.ABC):
    """Monotonic source of seconds-since-epoch-like timestamps."""

    @abc.abstractmethod
    def now(self) -> float:
        """Current time in seconds."""

    def sleep(self, seconds: float) -> None:  # pragma: no cover - overridden
        """Block for *seconds* (no-op on virtual clocks)."""
        raise NotImplementedError


class WallClock(Clock):
    """Real time, via :func:`time.monotonic` offset to a fixed epoch.

    ``time.monotonic`` is used instead of ``time.time`` so NTP adjustments
    can never make measured durations negative.
    """

    # WallClock IS the sanctioned wall-time source every other component
    # must inject; the raw reads live here and only here.
    def __init__(self) -> None:
        self._epoch = time.monotonic()  # repro: noqa[DET001]

    def now(self) -> float:
        return time.monotonic() - self._epoch  # repro: noqa[DET001]

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class VirtualClock(Clock):
    """Simulation time; advanced by :class:`repro.eventsim.Simulator` only."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance_to(self, timestamp: float) -> None:
        """Move the clock forward to *timestamp* (never backward)."""
        if timestamp < self._now:
            raise ValueError(
                f"virtual clock cannot move backward: {self._now} -> {timestamp}"
            )
        self._now = float(timestamp)

    def sleep(self, seconds: float) -> None:
        # Virtual time never blocks a real thread; sleeping is modelled by
        # scheduling events, so a plain sleep would be a logic error.
        raise RuntimeError("VirtualClock cannot sleep; schedule an event instead")
