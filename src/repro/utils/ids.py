"""Unique, human-readable identifier generation.

Identifiers look like ``pilot.0003`` or ``unit.000124``: a dotted namespace
followed by a zero-padded per-namespace counter.  Counters are process-local
and monotonic; :func:`reset_id_counters` exists so tests and deterministic
simulations can start from a known state.
"""

from __future__ import annotations

import itertools
import threading

__all__ = ["generate_id", "reserve_id_block", "reset_id_counters"]

_lock = threading.Lock()
_counters: dict[str, itertools.count] = {}


def generate_id(namespace: str, width: int = 4) -> str:
    """Return the next identifier in *namespace*.

    Parameters
    ----------
    namespace:
        Dotted prefix, e.g. ``"unit"`` or ``"pipeline.stage"``.
    width:
        Minimum digits in the zero-padded counter suffix.
    """
    if not namespace:
        raise ValueError("namespace must be non-empty")
    with _lock:
        counter = _counters.setdefault(namespace, itertools.count())
        n = next(counter)
    return f"{namespace}.{n:0{width}d}"


def reserve_id_block(namespace: str, n: int) -> int:
    """Atomically reserve *n* consecutive counter values; return the first.

    The caller formats identifiers itself (``f"{namespace}.{serial:0{w}d}"``),
    which lets columnar stores keep one integer per entity instead of one
    formatted string — the serial sequence is exactly what interleaved
    :func:`generate_id` calls would have produced, so lazily formatted uids
    are indistinguishable from eagerly generated ones.
    """
    if not namespace:
        raise ValueError("namespace must be non-empty")
    if n < 1:
        raise ValueError("block size must be positive")
    with _lock:
        counter = _counters.setdefault(namespace, itertools.count())
        first = next(counter)
        for _ in range(n - 1):
            next(counter)
    return first


def reset_id_counters(namespace: str | None = None) -> None:
    """Reset the counter of *namespace*, or all counters when ``None``.

    Only intended for tests and for deterministic re-runs of simulations;
    production code never needs to call this.
    """
    with _lock:
        if namespace is None:
            _counters.clear()
        else:
            _counters.pop(namespace, None)
