"""Shared utilities: id generation, logging, configuration and clocks."""

from repro.utils.ids import generate_id, reset_id_counters
from repro.utils.logger import get_logger
from repro.utils.config import Config
from repro.utils.timing import Clock, WallClock, VirtualClock

__all__ = [
    "generate_id",
    "reset_id_counters",
    "get_logger",
    "Config",
    "Clock",
    "WallClock",
    "VirtualClock",
]
