"""Per-component loggers.

All loggers live under the ``repro`` root so applications can configure the
whole toolkit with one handler.  The default configuration is silent (a
:class:`logging.NullHandler` on the root) — examples and the benchmark
harness install their own stream handlers.
"""

from __future__ import annotations

import logging
import os

__all__ = ["get_logger", "enable_console_logging"]

_ROOT = "repro"

logging.getLogger(_ROOT).addHandler(logging.NullHandler())


def get_logger(component: str) -> logging.Logger:
    """Return the logger for *component* (e.g. ``"pilot.agent"``).

    The environment variable ``REPRO_LOG_LEVEL`` (e.g. ``DEBUG``) raises the
    root level at first use, which is convenient when debugging examples.
    """
    name = component if component.startswith(_ROOT) else f"{_ROOT}.{component}"
    logger = logging.getLogger(name)
    level = os.environ.get("REPRO_LOG_LEVEL")
    if level:
        logging.getLogger(_ROOT).setLevel(level.upper())
    return logger


def enable_console_logging(level: int | str = logging.INFO) -> None:
    """Attach a stderr handler to the ``repro`` root logger (idempotent)."""
    root = logging.getLogger(_ROOT)
    if not any(isinstance(h, logging.StreamHandler) for h in root.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s")
        )
        root.addHandler(handler)
    root.setLevel(level)
