"""Utility kernels: mkfile, ccount, sleep, echo.

``misc.mkfile`` and ``misc.ccount`` are the two kernels of the paper's
characterization application (§IV.A): stage 1 creates a file in each task,
stage 2 counts the characters of the file produced by stage 1.
"""

from __future__ import annotations

import time

from repro.core.kernel_plugin import KernelPlugin, MachineConfig
from repro.core.kernel_registry import kernel
from repro.exceptions import KernelError

__all__ = ["MkFile", "CCount", "Sleep", "Echo"]

#: Modelled throughput of character generation / counting, chars per second.
#: Gives the few-second task durations of the paper's validation runs.
_CHAR_RATE = 2e6
#: Modelled fixed process cost of the tiny utility kernels, seconds.
_BASE_COST = 1.0


@kernel
class MkFile(KernelPlugin):
    """Create ``--filename`` containing ``--size`` characters."""

    name = "misc.mkfile"
    description = "create a file of N characters"
    required_args = ("size", "filename")
    machine_configs = {"*": MachineConfig(executable="/bin/dd")}

    def execute(self, ctx) -> int:
        size = int(ctx.arg("size"))
        if size < 0:
            raise KernelError("--size must be non-negative")
        target = ctx.path("filename")
        # Write in one go; sizes in the experiments are small (<= MBs).
        target.write_text("#" * size)
        return size

    def duration(self, cores, platform, args) -> float:
        return _BASE_COST + int(args["size"]) / _CHAR_RATE


@kernel
class CCount(KernelPlugin):
    """Count characters of ``--inputfile`` into ``--outputfile``."""

    name = "misc.ccount"
    description = "count characters in a file"
    required_args = ("inputfile", "outputfile")
    machine_configs = {"*": MachineConfig(executable="/usr/bin/wc")}

    def execute(self, ctx) -> int:
        source = ctx.path("inputfile")
        if not source.exists():
            raise KernelError(f"input file missing: {source}")
        count = len(source.read_text())
        ctx.path("outputfile").write_text(f"{count}\n")
        return count

    def duration(self, cores, platform, args) -> float:
        # Counting cost is modelled on the same rate as generation; the
        # file size is not in the args, so charge the base cost (matches
        # the paper's near-constant per-task times).
        return _BASE_COST

@kernel
class Sleep(KernelPlugin):
    """Sleep for ``--duration`` seconds (really, or on the virtual clock)."""

    name = "misc.sleep"
    description = "sleep for a fixed duration"
    required_args = ("duration",)
    machine_configs = {"*": MachineConfig(executable="/bin/sleep")}

    def execute(self, ctx) -> float:
        duration = float(ctx.arg("duration"))
        if duration < 0:
            raise KernelError("--duration must be non-negative")
        time.sleep(duration)
        return duration

    def duration(self, cores, platform, args) -> float:
        return float(args["duration"])


@kernel
class Echo(KernelPlugin):
    """Write ``--message`` into ``--outputfile``."""

    name = "misc.echo"
    description = "write a message to a file"
    required_args = ("message", "outputfile")
    machine_configs = {"*": MachineConfig(executable="/bin/echo")}

    def execute(self, ctx) -> str:
        message = ctx.arg("message")
        ctx.path("outputfile").write_text(message + "\n")
        return message

    def duration(self, cores, platform, args) -> float:
        return 0.1
