"""Analysis kernels: ``analysis.coco`` and ``analysis.lsdmap``.

Both are *serial* global analyses over the trajectories of all simulation
instances — staged into the analysis task's sandbox — exactly like the
paper's CoCo and LSDMap stages.  Their modelled cost therefore grows with
the ensemble's total frame count and is independent of the core count,
which is what produces the flat analysis line in Fig. 7 and the growing
one in Fig. 8.

Common arguments
----------------
``--pattern``     glob of trajectory files in the sandbox (default
                  ``traj_*.npz``)
``--outfile``     result file name
``--nframes``     *modelled* total frame count for the simulated mode
                  (local execution counts the real frames instead)
"""

from __future__ import annotations

import numpy as np

from repro.core.kernel_plugin import KernelPlugin, MachineConfig
from repro.core.kernel_registry import kernel
from repro.exceptions import KernelError
from repro.md.analysis.coco import coco
from repro.md.analysis.lsdmap import lsdmap
from repro.md.trajectory import Trajectory

__all__ = ["CoCoKernel", "LSDMapKernel"]


def _load_samples(ctx) -> np.ndarray:
    pattern = ctx.args.get("pattern", "traj_*.npz")
    files = sorted(ctx.sandbox.glob(pattern))
    if not files:
        raise KernelError(
            f"no trajectory files match {pattern!r} in {ctx.sandbox}"
        )
    positions = [Trajectory.load(f).positions for f in files]
    return np.vstack(positions)


@kernel
class CoCoKernel(KernelPlugin):
    """CoCo frontier sampling over all staged trajectories.

    Extra arguments: ``--npoints`` (new start points to emit, default 1),
    ``--grid-bins`` (default 10), ``--ncomponents`` (default 2).
    Writes an ``.npz`` with ``new_points`` (and the PCA details).
    """

    name = "analysis.coco"
    description = "CoCo: PCA + occupancy-grid frontier sampling"
    machine_configs = {"*": MachineConfig(executable="pyCoCo")}

    #: Modelled seconds per trajectory frame (serial pass + PCA).
    PER_FRAME = 2.0e-4
    #: Modelled fixed cost (imports, I/O setup).
    BASE = 2.0

    def execute(self, ctx):
        samples = _load_samples(ctx)
        result = coco(
            samples,
            n_points=int(ctx.args.get("npoints", "1")),
            grid_bins=int(ctx.args.get("grid-bins", "10")),
            n_components=int(ctx.args.get("ncomponents", "2")),
        )
        outfile = ctx.args.get("outfile", "coco_points.npz")
        np.savez_compressed(
            ctx.sandbox / outfile,
            new_points=result.new_points,
            mean=result.mean,
            components=result.components,
            explained_variance=result.explained_variance,
            occupancy=np.float64(result.occupancy),
        )
        return {"n_new_points": len(result.new_points),
                "occupancy": result.occupancy}

    def duration(self, cores, platform, args) -> float:
        nframes = int(args.get("nframes", "1000"))
        # Serial analysis: cores do not help (the paper executes CoCo on
        # one core and its runtime tracks the simulation count).
        return self.BASE + self.PER_FRAME * nframes


@kernel
class LSDMapKernel(KernelPlugin):
    """Diffusion-map analysis over all staged trajectories.

    Extra arguments: ``--nev`` (eigenpairs, default 4), ``--local-scaling``
    (``true``/``false``, default false), ``--max-samples`` (subsample cap
    for the dense eigenproblem, default 1500).  Writes eigenvalues and
    diffusion coordinates.
    """

    name = "analysis.lsdmap"
    description = "LSDMap: locally-scaled diffusion map"
    machine_configs = {"*": MachineConfig(executable="lsdmap")}

    PER_FRAME = 2.5e-4
    BASE = 2.5

    def execute(self, ctx):
        samples = _load_samples(ctx)
        max_samples = int(ctx.args.get("max-samples", "1500"))
        if len(samples) > max_samples:
            # Uniform subsampling keeps the dense eigenproblem tractable,
            # as the real tool does for large trajectory sets.
            idx = np.linspace(0, len(samples) - 1, max_samples).astype(int)
            samples = samples[idx]
        result = lsdmap(
            samples,
            n_evecs=int(ctx.args.get("nev", "4")),
            local_scaling=ctx.args.get("local-scaling", "false").lower() == "true",
        )
        outfile = ctx.args.get("outfile", "lsdmap.npz")
        np.savez_compressed(
            ctx.sandbox / outfile,
            eigenvalues=result.eigenvalues,
            eigenvectors=result.eigenvectors,
            epsilon=result.epsilon,
        )
        return {
            "eigenvalues": result.eigenvalues.tolist(),
            "n_samples": len(samples),
        }

    def duration(self, cores, platform, args) -> float:
        nframes = int(args.get("nframes", "1000"))
        return self.BASE + self.PER_FRAME * nframes
