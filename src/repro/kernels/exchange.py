"""The REMD exchange kernel: ``exchange.temperature``.

Implements the exchange stage of the paper's Fig. 5/6 workload.  Two modes
match the two disciplines of the EE pattern:

* ``--mode=global`` — read the final energies of *all* staged replica
  trajectories, attempt neighbour swaps along the temperature ladder and
  write the resulting temperature permutation.  Serial cost grows with the
  replica count.
* ``--mode=pair`` — a single Metropolis trial between two staged replicas
  (pairwise EE mode).

Arguments
---------
``--mode``          ``global`` (default) or ``pair``
``--pattern``       glob of replica trajectory files (global mode)
``--outfile``       result ``.npz``
``--tmin, --tmax``  temperature-ladder bounds (global mode)
``--phase``         0/1 neighbour-pairing phase (global mode, default 0)
``--temp-a/--temp-b`` and ``--file-a/--file-b`` (pair mode)
``--seed``          RNG seed for the Metropolis trials
``--nreplicas``     *modelled* replica count for the simulated mode
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.kernel_plugin import KernelPlugin, MachineConfig
from repro.core.kernel_registry import kernel
from repro.exceptions import KernelError
from repro.md.remd import attempt_neighbor_swaps, attempt_swap, geometric_ladder
from repro.md.trajectory import Trajectory

__all__ = ["TemperatureExchange"]


@kernel
class TemperatureExchange(KernelPlugin):
    """Metropolis temperature exchange over staged replica trajectories."""

    name = "exchange.temperature"
    description = "REMD temperature exchange (Metropolis criterion)"
    machine_configs = {"*": MachineConfig(executable="remd-exchange")}

    #: Modelled serial cost per replica in the global exchange step.
    PER_REPLICA = 0.005
    BASE = 0.5

    def execute(self, ctx):
        mode = ctx.args.get("mode", "global")
        seed = int(
            ctx.args.get("seed", zlib.crc32(ctx.uid.encode()) & 0x7FFFFFFF)
        )
        rng = np.random.default_rng(seed)
        if mode == "global":
            return self._execute_global(ctx, rng)
        if mode == "pair":
            return self._execute_pair(ctx, rng)
        raise KernelError(f"unknown exchange mode {mode!r}")

    def _execute_global(self, ctx, rng):
        pattern = ctx.args.get("pattern", "replica_*.npz")
        files = sorted(ctx.sandbox.glob(pattern))
        if len(files) < 2:
            raise KernelError(
                f"global exchange needs >= 2 replicas matching {pattern!r}"
            )
        trajectories = [Trajectory.load(f) for f in files]
        energies = np.array([t.final_energy for t in trajectories])
        t_min = float(ctx.args.get("tmin", "1.0"))
        t_max = float(ctx.args.get("tmax", str(t_min * 4)))
        temperatures = geometric_ladder(t_min, t_max, len(files))
        phase = int(ctx.args.get("phase", "0"))
        result = attempt_neighbor_swaps(energies, temperatures, rng, phase=phase)
        outfile = ctx.args.get("outfile", "exchange.npz")
        np.savez_compressed(
            ctx.sandbox / outfile,
            permutation=result.permutation,
            temperatures=temperatures,
            energies=energies,
            accepted=np.int64(result.accepted),
            attempted=np.int64(result.attempted),
        )
        return {
            "attempted": result.attempted,
            "accepted": result.accepted,
            "acceptance_ratio": result.acceptance_ratio,
        }

    def _execute_pair(self, ctx, rng):
        file_a = ctx.sandbox / ctx.arg("file-a")
        file_b = ctx.sandbox / ctx.arg("file-b")
        if not file_a.exists() or not file_b.exists():
            raise KernelError("pair exchange: replica files missing")
        traj_a = Trajectory.load(file_a)
        traj_b = Trajectory.load(file_b)
        temp_a = float(ctx.args.get("temp-a", str(traj_a.temperature)))
        temp_b = float(ctx.args.get("temp-b", str(traj_b.temperature)))
        swapped = attempt_swap(
            traj_a.final_energy, traj_b.final_energy, temp_a, temp_b, rng
        )
        outfile = ctx.args.get("outfile", "exchange.npz")
        np.savez_compressed(
            ctx.sandbox / outfile,
            swapped=np.bool_(swapped),
            energies=np.array([traj_a.final_energy, traj_b.final_energy]),
            temperatures=np.array([temp_a, temp_b]),
        )
        return {"swapped": bool(swapped)}

    def duration(self, cores, platform, args) -> float:
        if args.get("mode", "global") == "pair":
            return self.BASE
        nreplicas = int(args.get("nreplicas", "2"))
        return self.BASE + self.PER_REPLICA * nreplicas
