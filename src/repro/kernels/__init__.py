"""Built-in kernel plugin library.

Importing this package registers every built-in plugin:

=====================  =======================================================
``misc.mkfile``        create a file of N characters (paper §IV.A, stage 1)
``misc.ccount``        count characters in a file (paper §IV.A, stage 2)
``misc.sleep``         sleep / model a fixed duration
``misc.echo``          write a message to a file
``md.amber``           toy-MD front-end modelling the Amber engine
``md.gromacs``         toy-MD front-end modelling the Gromacs engine
``analysis.coco``      CoCo: PCA + frontier sampling over all trajectories
``analysis.lsdmap``    LSDMap: diffusion-map analysis of one trajectory set
``exchange.temperature``  REMD temperature exchange (Metropolis)
=====================  =======================================================
"""

from repro.kernels import misc  # noqa: F401  (registration side effect)
from repro.kernels import md  # noqa: F401
from repro.kernels import analysis  # noqa: F401
from repro.kernels import exchange  # noqa: F401

__all__ = ["misc", "md", "analysis", "exchange"]
