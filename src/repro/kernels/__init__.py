"""Built-in kernel plugin library.

Importing this package registers every built-in plugin:

=====================  =======================================================
``misc.mkfile``        create a file of N characters (paper §IV.A, stage 1)
``misc.ccount``        count characters in a file (paper §IV.A, stage 2)
``misc.sleep``         sleep / model a fixed duration
``misc.echo``          write a message to a file
``md.amber``           toy-MD front-end modelling the Amber engine
``md.gromacs``         toy-MD front-end modelling the Gromacs engine
``analysis.coco``      CoCo: PCA + frontier sampling over all trajectories
``analysis.lsdmap``    LSDMap: diffusion-map analysis of one trajectory set
``exchange.temperature``  REMD temperature exchange (Metropolis)
=====================  =======================================================

Registration is *lazy by family*: ``repro.core.kernel_registry`` imports only
the submodule a lookup needs (``misc.sleep`` must not drag in the MD/analysis
stack and its scipy import), so importing this package alone registers
nothing.  Call :func:`register_builtins` (or touch a family attribute) to
force registration of everything / one family.
"""

from __future__ import annotations

import importlib

__all__ = ["misc", "md", "analysis", "exchange", "register_builtins"]

_FAMILIES = ("misc", "md", "analysis", "exchange")


def __getattr__(name: str):
    if name in _FAMILIES:
        return importlib.import_module(f"repro.kernels.{name}")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def register_builtins() -> None:
    """Import every family for its registration side effect."""
    for family in _FAMILIES:
        importlib.import_module(f"repro.kernels.{family}")
