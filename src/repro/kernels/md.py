"""MD engine kernels: ``md.amber`` and ``md.gromacs``.

Both wrap the toy MD engine (:mod:`repro.md`); they differ in their
modelled machine configurations (Gromacs is modelled ~25% faster per core
than Amber on the same system, reflecting the usual throughput gap on
small solvated systems).

Arguments
---------
``--nsteps``        integration steps (``--duration-ps`` is accepted as an
                    alternative: 1 ps == 500 steps, a 2 fs time step)
``--system``        system name: ``ala2-2d`` (default) or ``mueller-brown``
``--temperature``   thermostat temperature (default: system reference)
``--outfile``       trajectory output (``.npz``) in the unit sandbox
``--startfile``     optional ``.npz`` to start from: a prior trajectory
                    (continues from its final frame) or a CoCo points file
                    (uses ``--startindex``)
``--startindex``    row of the CoCo points file to start from (default 0)
``--seed``          RNG seed (default: derived from the unit uid)
``--stride``        sampling stride in steps (default 10)
"""

from __future__ import annotations

import zlib

import numpy as np

from repro.core.kernel_plugin import KernelPlugin, MachineConfig
from repro.core.kernel_registry import kernel
from repro.exceptions import KernelError
from repro.md.engine import MDEngine
from repro.md.system import alanine_dipeptide_surface, mueller_brown_system

__all__ = ["AmberKernel", "GromacsKernel", "STEPS_PER_PS", "build_system"]

#: 2 fs MD time step: 500 steps per picosecond.
STEPS_PER_PS = 500

_SYSTEMS = {
    "ala2-2d": alanine_dipeptide_surface,
    "mueller-brown": mueller_brown_system,
}


def build_system(name: str):
    """Instantiate a named MD system (``ala2-2d`` or ``mueller-brown``)."""
    try:
        return _SYSTEMS[name]()
    except KeyError:
        raise KernelError(
            f"unknown MD system {name!r} (known: {sorted(_SYSTEMS)})"
        ) from None


def _parse_nsteps(ctx_args: dict[str, str]) -> int:
    if "nsteps" in ctx_args:
        nsteps = int(ctx_args["nsteps"])
    elif "duration-ps" in ctx_args:
        nsteps = int(float(ctx_args["duration-ps"]) * STEPS_PER_PS)
    else:
        raise KernelError("MD kernels need --nsteps=... or --duration-ps=...")
    if nsteps < 1:
        raise KernelError("nsteps must be >= 1")
    return nsteps


class _MDEngineKernel(KernelPlugin):
    """Shared implementation of the MD engine kernels."""

    def execute(self, ctx):
        nsteps = _parse_nsteps(ctx.args)
        system = build_system(ctx.args.get("system", "ala2-2d"))
        temperature = ctx.args.get("temperature")
        temperature = float(temperature) if temperature is not None else None
        stride = int(ctx.args.get("stride", "10"))
        seed_arg = ctx.args.get("seed")
        # Derive a stable per-unit seed so concurrent replicas decorrelate.
        seed = (
            int(seed_arg)
            if seed_arg is not None
            else zlib.crc32(ctx.uid.encode()) & 0x7FFFFFFF
        )

        x0 = None
        startfile = ctx.args.get("startfile")
        if startfile:
            start_path = ctx.sandbox / startfile
            if not start_path.exists():
                raise KernelError(f"start file missing: {start_path}")
            with np.load(start_path, allow_pickle=True) as data:
                if "positions" in data:  # a prior trajectory
                    x0 = data["positions"][-1]
                elif "new_points" in data:  # a CoCo points file
                    index = int(ctx.args.get("startindex", "0"))
                    points = data["new_points"]
                    x0 = points[index % len(points)]
                else:
                    raise KernelError(
                        f"unrecognized start file contents: {start_path}"
                    )

        engine = MDEngine(system, seed=seed)
        trajectory = engine.run(
            nsteps,
            temperature=temperature,
            x0=x0,
            stride=stride,
            meta={"engine": self.name, "unit": ctx.uid},
        )
        outfile = ctx.args.get("outfile", "trajectory.npz")
        trajectory.save(ctx.sandbox / outfile)
        return {
            "nframes": trajectory.nframes,
            "final_energy": trajectory.final_energy,
            "temperature": trajectory.temperature,
        }

    def duration(self, cores, platform, args) -> float:
        nsteps = _parse_nsteps(args)
        system = build_system(args.get("system", "ala2-2d"))
        return MDEngine.modelled_seconds(nsteps, system.natoms, cores)


@kernel
class AmberKernel(_MDEngineKernel):
    name = "md.amber"
    description = "Amber MD engine (toy-MD backed)"
    machine_configs = {
        "*": MachineConfig(executable="pmemd", speed_factor=1.0),
        "xsede.supermic": MachineConfig(executable="pmemd", speed_factor=1.0),
        "xsede.stampede": MachineConfig(executable="pmemd.MPI", speed_factor=0.95),
    }


@kernel
class GromacsKernel(_MDEngineKernel):
    name = "md.gromacs"
    description = "Gromacs MD engine (toy-MD backed)"
    machine_configs = {
        "*": MachineConfig(executable="gmx mdrun", speed_factor=1.25),
        "xsede.comet": MachineConfig(executable="gmx_mpi mdrun", speed_factor=1.3),
    }
