"""Potential energy surfaces for the toy MD engine.

All potentials are functions of low-dimensional coordinates ``x`` of shape
``(dim,)`` or batched ``(n, dim)``; energies broadcast accordingly and
forces are exact analytic gradients (verified against finite differences in
the test suite).
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["Potential", "Harmonic", "DoubleWell2D", "MuellerBrown"]


class Potential(abc.ABC):
    """A differentiable potential energy surface."""

    dim: int = 2

    @abc.abstractmethod
    def energy(self, x: np.ndarray) -> np.ndarray | float:
        """Potential energy at *x* (batched if *x* is ``(n, dim)``)."""

    @abc.abstractmethod
    def force(self, x: np.ndarray) -> np.ndarray:
        """Force ``-dU/dx`` at *x*, same shape as *x*."""

    def _batch(self, x: np.ndarray) -> tuple[np.ndarray, bool]:
        x = np.asarray(x, dtype=float)
        if x.ndim == 1:
            return x[None, :], True
        return x, False


class Harmonic(Potential):
    """Isotropic harmonic well ``U = k/2 |x - x0|^2`` (any dimension)."""

    def __init__(self, k: float = 1.0, x0: np.ndarray | None = None, dim: int = 2) -> None:
        self.k = float(k)
        self.dim = dim
        self.x0 = np.zeros(dim) if x0 is None else np.asarray(x0, dtype=float)

    def energy(self, x):
        xb, single = self._batch(x)
        e = 0.5 * self.k * np.sum((xb - self.x0) ** 2, axis=1)
        return float(e[0]) if single else e

    def force(self, x):
        xb, single = self._batch(x)
        f = -self.k * (xb - self.x0)
        return f[0] if single else f


class DoubleWell2D(Potential):
    """A φ/ψ-like double well: two metastable basins along x, harmonic in y.

    ``U(x, y) = h (x^2 - a^2)^2 / a^4 + k y^2 / 2``

    Minima at ``(-a, 0)`` and ``(+a, 0)``, barrier height ``h`` at ``x=0``.
    This is the reduced stand-in for alanine dipeptide's two backbone
    conformers (C7eq / C7ax): replica exchange must cross the barrier, and
    CoCo/LSDMap must discover the second basin — the same qualitative tasks
    as on the real molecule.
    """

    dim = 2

    def __init__(self, barrier: float = 5.0, a: float = 1.0, k: float = 4.0) -> None:
        if barrier <= 0 or a <= 0 or k < 0:
            raise ValueError("barrier and a must be positive, k non-negative")
        self.h = float(barrier)
        self.a = float(a)
        self.k = float(k)

    def energy(self, x):
        xb, single = self._batch(x)
        q, y = xb[:, 0], xb[:, 1]
        e = self.h * (q**2 - self.a**2) ** 2 / self.a**4 + 0.5 * self.k * y**2
        return float(e[0]) if single else e

    def force(self, x):
        xb, single = self._batch(x)
        q, y = xb[:, 0], xb[:, 1]
        fx = -4.0 * self.h * q * (q**2 - self.a**2) / self.a**4
        fy = -self.k * y
        f = np.stack([fx, fy], axis=1)
        return f[0] if single else f

    @property
    def minima(self) -> np.ndarray:
        return np.array([[-self.a, 0.0], [self.a, 0.0]])


class MuellerBrown(Potential):
    """The Müller–Brown surface, the standard 2-D test landscape.

    Sum of four anisotropic Gaussians with the canonical parameters; three
    minima connected by two saddle points.  Energies are conventionally in
    the range [-150, +100] over the interesting region.
    """

    dim = 2

    _A = np.array([-200.0, -100.0, -170.0, 15.0])
    _a = np.array([-1.0, -1.0, -6.5, 0.7])
    _b = np.array([0.0, 0.0, 11.0, 0.6])
    _c = np.array([-10.0, -10.0, -6.5, 0.7])
    _x0 = np.array([1.0, 0.0, -0.5, -1.0])
    _y0 = np.array([0.0, 0.5, 1.5, 1.0])

    #: Approximate locations of the three minima (deep to shallow).
    minima = np.array([[-0.558, 1.442], [0.623, 0.028], [-0.050, 0.467]])

    def _terms(self, xb: np.ndarray) -> np.ndarray:
        dx = xb[:, 0:1] - self._x0[None, :]
        dy = xb[:, 1:2] - self._y0[None, :]
        return self._A[None, :] * np.exp(
            self._a[None, :] * dx**2
            + self._b[None, :] * dx * dy
            + self._c[None, :] * dy**2
        )

    def energy(self, x):
        xb, single = self._batch(x)
        e = self._terms(xb).sum(axis=1)
        return float(e[0]) if single else e

    def force(self, x):
        xb, single = self._batch(x)
        dx = xb[:, 0:1] - self._x0[None, :]
        dy = xb[:, 1:2] - self._y0[None, :]
        terms = self._terms(xb)
        dU_dx = (terms * (2.0 * self._a[None, :] * dx + self._b[None, :] * dy)).sum(axis=1)
        dU_dy = (terms * (self._b[None, :] * dx + 2.0 * self._c[None, :] * dy)).sum(axis=1)
        f = -np.stack([dU_dx, dU_dy], axis=1)
        return f[0] if single else f
