"""Replica-exchange molecular dynamics machinery.

Temperature ladders, the Metropolis exchange criterion and neighbour
pairing — the mathematics behind the ``exchange.temperature`` kernel and
the paper's Fig. 5/6 Amber temperature-exchange workload.

The detailed-balance property tested in the suite: a proposed swap between
replicas *i*, *j* at inverse temperatures ``beta_i > beta_j`` with energies
``E_i``, ``E_j`` is accepted with probability
``min(1, exp((beta_i - beta_j) * (E_i - E_j)))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "geometric_ladder",
    "acceptance_probability",
    "attempt_swap",
    "attempt_neighbor_swaps",
    "ExchangeResult",
]


def geometric_ladder(t_min: float, t_max: float, n: int) -> np.ndarray:
    """Geometric temperature ladder, the standard REMD spacing.

    Geometric spacing keeps the expected acceptance roughly uniform across
    the ladder for systems with temperature-independent heat capacity.
    """
    if n < 1:
        raise ValueError("ladder needs at least one temperature")
    if t_min <= 0 or t_max < t_min:
        raise ValueError("need 0 < t_min <= t_max")
    if n == 1:
        return np.array([t_min])
    ratio = (t_max / t_min) ** (1.0 / (n - 1))
    return t_min * ratio ** np.arange(n)


def acceptance_probability(
    energy_i: float, energy_j: float, temp_i: float, temp_j: float
) -> float:
    """Metropolis acceptance of swapping configurations i <-> j."""
    if temp_i <= 0 or temp_j <= 0:
        raise ValueError("temperatures must be positive")
    beta_i, beta_j = 1.0 / temp_i, 1.0 / temp_j
    delta = (beta_i - beta_j) * (energy_i - energy_j)
    if delta >= 0.0:
        return 1.0
    return float(np.exp(delta))


def attempt_swap(
    energy_i: float,
    energy_j: float,
    temp_i: float,
    temp_j: float,
    rng: np.random.Generator,
) -> bool:
    """One Metropolis trial; True means the replicas swap temperatures."""
    return bool(rng.random() < acceptance_probability(energy_i, energy_j, temp_i, temp_j))


@dataclass
class ExchangeResult:
    """Outcome of one exchange step over the whole ladder.

    ``permutation[k]`` is the index of the temperature-slot replica *k*
    occupies after the exchange (identity where no swap happened).
    """

    permutation: np.ndarray
    attempted: int
    accepted: int

    @property
    def acceptance_ratio(self) -> float:
        return self.accepted / self.attempted if self.attempted else 0.0


def attempt_neighbor_swaps(
    energies: np.ndarray,
    temperatures: np.ndarray,
    rng: np.random.Generator,
    phase: int = 0,
) -> ExchangeResult:
    """Attempt swaps between ladder neighbours (0-1, 2-3, ... or 1-2, 3-4...).

    *phase* 0 pairs even-odd neighbours, 1 pairs odd-even; alternating the
    phase across iterations is the standard REMD schedule.  Temperatures
    must be sorted ascending with ``energies[k]`` the energy of the replica
    currently at temperature ``temperatures[k]``.
    """
    energies = np.asarray(energies, dtype=float)
    temperatures = np.asarray(temperatures, dtype=float)
    if energies.shape != temperatures.shape:
        raise ValueError("energies and temperatures must align")
    n = len(energies)
    permutation = np.arange(n)
    attempted = accepted = 0
    for i in range(phase % 2, n - 1, 2):
        j = i + 1
        attempted += 1
        if attempt_swap(energies[i], energies[j], temperatures[i], temperatures[j], rng):
            accepted += 1
            permutation[i], permutation[j] = permutation[j], permutation[i]
    return ExchangeResult(permutation=permutation, attempted=attempted, accepted=accepted)
