"""A toy molecular-dynamics substrate.

The paper's science workloads run Amber and Gromacs on solvated alanine
dipeptide (2881 atoms) and analyze trajectories with CoCo and LSDMap.
Neither MD engine is runnable here, so this package provides the smallest
system that exercises the *same algorithmic paths*:

* Langevin dynamics on 2-D reduced potentials — the φ/ψ-like double-well
  of :func:`repro.md.system.alanine_dipeptide_surface` and the classic
  Müller–Brown surface — with a BAOAB integrator;
* trajectory containers with ``.npz`` persistence;
* replica-exchange machinery (temperature ladders, Metropolis swap
  criterion, neighbour pairing) in :mod:`repro.md.remd`;
* real CoCo (PCA + occupancy-grid frontier sampling) and LSDMap
  (Gaussian-kernel diffusion maps) implementations in
  :mod:`repro.md.analysis`.

Exchange decisions consume potential energies, CoCo/LSDMap consume
low-dimensional projections of configurations: a 2-D surface feeds both
exactly as a 2881-atom system would, at laptop cost (DESIGN.md §2).
"""

from repro.md.potentials import (
    Potential,
    DoubleWell2D,
    MuellerBrown,
    Harmonic,
)
from repro.md.system import MDSystem, alanine_dipeptide_surface, mueller_brown_system
from repro.md.integrators import LangevinIntegrator
from repro.md.engine import MDEngine
from repro.md.trajectory import Trajectory
from repro.md import remd
from repro.md import analysis

__all__ = [
    "Potential",
    "DoubleWell2D",
    "MuellerBrown",
    "Harmonic",
    "MDSystem",
    "alanine_dipeptide_surface",
    "mueller_brown_system",
    "LangevinIntegrator",
    "MDEngine",
    "Trajectory",
    "remd",
    "analysis",
]
