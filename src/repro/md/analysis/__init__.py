"""Trajectory analysis: CoCo and LSDMap implementations."""

from repro.md.analysis.coco import CoCoResult, coco
from repro.md.analysis.lsdmap import DiffusionMapResult, lsdmap
from repro.md.analysis.free_energy import (
    FreeEnergyProfile,
    boltzmann_weights,
    free_energy_profile,
)

__all__ = [
    "coco",
    "CoCoResult",
    "lsdmap",
    "DiffusionMapResult",
    "FreeEnergyProfile",
    "free_energy_profile",
    "boltzmann_weights",
]
