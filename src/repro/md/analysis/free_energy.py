"""Free-energy estimation from sampled configurations.

``F(x) = -T ln p(x)`` up to a constant: the standard histogram estimator
along a chosen coordinate.  Used by the test suite to validate that the
whole stack — engine, REMD, adaptive sampling — actually produces
Boltzmann-distributed ensembles on the known potentials, which is the
strongest end-to-end check a reproduction without the real MD engines can
run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FreeEnergyProfile", "free_energy_profile", "boltzmann_weights"]


@dataclass
class FreeEnergyProfile:
    """1-D free-energy estimate along a coordinate."""

    centers: np.ndarray
    values: np.ndarray  # F in energy units, min-shifted to 0
    counts: np.ndarray
    temperature: float

    def value_at(self, x: float) -> float:
        """Linear interpolation of F at *x* (clamped to the range)."""
        return float(np.interp(x, self.centers, self.values))

    @property
    def barrier_estimate(self) -> float:
        """Height of the highest interior maximum between the two deepest
        minima (inf if the profile has a single basin)."""
        finite = np.isfinite(self.values)
        if finite.sum() < 3:
            return float("inf")
        values = self.values.copy()
        values[~finite] = np.inf
        # Local minima of the (finite part of the) profile.
        minima = [
            i
            for i in range(1, len(values) - 1)
            if values[i] <= values[i - 1] and values[i] <= values[i + 1]
            and np.isfinite(values[i])
        ]
        if len(minima) < 2:
            return float("inf")
        deepest = sorted(minima, key=lambda i: values[i])[:2]
        lo, hi = sorted(deepest)
        interior = values[lo:hi + 1]
        return float(np.max(interior) - max(values[lo], values[hi]))


def free_energy_profile(
    samples: np.ndarray,
    temperature: float,
    axis: int = 0,
    bins: int = 30,
    bounds: tuple[float, float] | None = None,
) -> FreeEnergyProfile:
    """Histogram free energy along coordinate *axis* of *samples*.

    Empty bins get ``+inf`` (never sampled).  The profile is shifted so its
    minimum is zero, making it directly comparable to a potential whose
    minima sit at zero.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or len(samples) < 10:
        raise ValueError("samples must be (n >= 10, dim)")
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    coordinate = samples[:, axis]
    if bounds is None:
        bounds = (float(coordinate.min()), float(coordinate.max()))
    counts, edges = np.histogram(coordinate, bins=bins, range=bounds)
    centers = 0.5 * (edges[1:] + edges[:-1])
    with np.errstate(divide="ignore"):
        values = -temperature * np.log(counts / max(counts.sum(), 1))
    values = values - values[np.isfinite(values)].min()
    return FreeEnergyProfile(
        centers=centers, values=values, counts=counts, temperature=temperature
    )


def boltzmann_weights(energies: np.ndarray, temperature: float) -> np.ndarray:
    """Normalized Boltzmann weights of configurations with *energies*."""
    if temperature <= 0:
        raise ValueError("temperature must be positive")
    energies = np.asarray(energies, dtype=float)
    shifted = energies - energies.min()  # overflow-safe
    weights = np.exp(-shifted / temperature)
    return weights / weights.sum()
