"""CoCo: Complementary Coordinates (Laughton, Orozco & Vranken 2009).

The algorithm behind the paper's Amber-CoCo SAL workload (Fig. 7/8): given
the pooled trajectories of all simulation instances, find where sampling is
*missing* and emit new starting points there so the next iteration's
simulations explore fresh territory.

Implementation (faithful to the published method, reduced to our
low-dimensional configurations):

1. PCA over all sampled configurations.
2. Project samples onto the first ``n_components`` PCs and lay an
   ``grid_bins``-per-axis occupancy grid over the sampled bounding box.
3. Rank *unoccupied* bins by their distance to occupied ones ("frontier
   first") and return the inverse-PCA images of the emptiest bin centres
   as the next round's start points.

The cost of steps 1-3 is linear in the total number of frames and
independent of how many cores ran the simulations — which is why the
paper's analysis stage is serial and its duration grows with the ensemble
size (Fig. 8).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CoCoResult", "coco"]


@dataclass
class CoCoResult:
    """Outcome of one CoCo analysis pass."""

    #: New start points in configuration space, shape (n_points, dim).
    new_points: np.ndarray
    #: PCA mean, shape (dim,).
    mean: np.ndarray
    #: PCA components (rows), shape (n_components, dim).
    components: np.ndarray
    #: Explained variance of each kept component.
    explained_variance: np.ndarray
    #: Fraction of grid bins inside the sampled bounding box that are occupied.
    occupancy: float


def _pca(samples: np.ndarray, n_components: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Plain PCA via SVD; returns (mean, components, explained_variance)."""
    mean = samples.mean(axis=0)
    centered = samples - mean
    # SVD of the (n, d) data matrix; rows of vt are principal axes.
    _u, s, vt = np.linalg.svd(centered, full_matrices=False)
    variance = (s**2) / max(len(samples) - 1, 1)
    return mean, vt[:n_components], variance[:n_components]


def coco(
    samples: np.ndarray,
    n_points: int = 1,
    grid_bins: int = 10,
    n_components: int = 2,
    rng: np.random.Generator | None = None,
) -> CoCoResult:
    """Run CoCo over pooled configurations.

    Parameters
    ----------
    samples:
        ``(nframes, dim)`` pooled configurations from all simulations.
    n_points:
        How many new start points to produce (== next iteration's ensemble
        size in the SAL workload).
    grid_bins:
        Occupancy-grid resolution per PCA axis.
    n_components:
        Number of principal components spanning the grid (2 in the
        published tool's default "frontier points" mode).
    rng:
        Used only to jitter tie-breaking among equally-distant empty bins.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.ndim != 2 or len(samples) < 2:
        raise ValueError("samples must be (nframes >= 2, dim)")
    if n_points < 1 or grid_bins < 2 or n_components < 1:
        raise ValueError("n_points >= 1, grid_bins >= 2, n_components >= 1")
    n_components = min(n_components, samples.shape[1])
    rng = rng or np.random.default_rng(0)

    mean, components, variance = _pca(samples, n_components)
    projected = (samples - mean) @ components.T  # (n, k)

    # Occupancy grid over the sampled bounding box (slightly padded so the
    # extreme samples do not sit exactly on the boundary).
    low = projected.min(axis=0)
    high = projected.max(axis=0)
    span = np.where(high > low, high - low, 1.0)
    low = low - 0.05 * span
    high = high + 0.05 * span
    edges = [np.linspace(low[k], high[k], grid_bins + 1) for k in range(n_components)]

    occupied, _ = np.histogramdd(projected, bins=edges)
    occupied_mask = occupied > 0
    occupancy = float(occupied_mask.mean())

    centers = [0.5 * (e[1:] + e[:-1]) for e in edges]
    mesh = np.meshgrid(*centers, indexing="ij")
    all_centers = np.stack([m.ravel() for m in mesh], axis=1)  # (bins^k, k)
    flat_occupied = occupied_mask.ravel()

    if flat_occupied.all():
        # Everything is sampled: fall back to the least-visited bins, the
        # published tool's behaviour once the map saturates.
        counts = occupied.ravel()
        order = np.argsort(counts + rng.random(counts.shape) * 1e-9)
        chosen = all_centers[order[:n_points]]
    else:
        empty_centers = all_centers[~flat_occupied]
        occupied_centers = all_centers[flat_occupied]
        # Distance of each empty bin to the nearest occupied bin; the
        # frontier (largest distance) is where sampling is most lacking.
        deltas = empty_centers[:, None, :] - occupied_centers[None, :, :]
        nearest = np.sqrt((deltas**2).sum(axis=2)).min(axis=1)
        order = np.argsort(-(nearest + rng.random(nearest.shape) * 1e-9))
        chosen = empty_centers[order[:n_points]]
        if len(chosen) < n_points:
            # Not enough empty bins: round-robin repeat the frontier.
            repeat = np.resize(np.arange(len(chosen)), n_points - len(chosen))
            chosen = np.vstack([chosen, chosen[repeat]])

    new_points = mean + chosen @ components  # inverse PCA map
    return CoCoResult(
        new_points=new_points,
        mean=mean,
        components=components,
        explained_variance=variance,
        occupancy=occupancy,
    )
