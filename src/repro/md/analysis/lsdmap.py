"""LSDMap: locally-scaled diffusion maps (Preto & Clementi 2014).

The analysis stage of the paper's Gromacs-LSDMap workload (Fig. 4).
Diffusion maps embed configurations by the leading eigenvectors of a
Markov transition matrix built from a Gaussian kernel over pairwise
distances; the first non-trivial eigenvector ("DC1") resolves the slowest
conformational transition.

Invariants (property-tested): the transition matrix is row-stochastic, its
leading eigenvalue is 1 with a constant eigenvector, all eigenvalues lie
in [-1, 1].
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.linalg

__all__ = ["DiffusionMapResult", "lsdmap"]


@dataclass
class DiffusionMapResult:
    """Spectral embedding of one configuration set."""

    #: Eigenvalues, descending; eigenvalues[0] == 1.
    eigenvalues: np.ndarray
    #: Diffusion coordinates, shape (n, n_evecs); column 0 is constant.
    eigenvectors: np.ndarray
    #: Kernel bandwidth(s) used.
    epsilon: np.ndarray
    #: The kernel matrix' mean row sum (diagnostic of scale choice).
    mean_degree: float

    @property
    def dc1(self) -> np.ndarray:
        """The first non-trivial diffusion coordinate."""
        return self.eigenvectors[:, 1]


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    """Dense squared Euclidean distances, numerically clipped at 0."""
    norms = (x**2).sum(axis=1)
    sq = norms[:, None] + norms[None, :] - 2.0 * (x @ x.T)
    return np.maximum(sq, 0.0)


def lsdmap(
    samples: np.ndarray,
    n_evecs: int = 4,
    epsilon: float | str = "median",
    local_scaling: bool = False,
    k_neighbors: int = 7,
    alpha: float = 0.5,
) -> DiffusionMapResult:
    """Compute a (locally scaled) diffusion map of *samples*.

    Parameters
    ----------
    samples:
        ``(n, dim)`` configurations (n >= n_evecs + 1).
    n_evecs:
        Number of eigenpairs to return (including the trivial first).
    epsilon:
        Gaussian kernel bandwidth; ``"median"`` uses the median pairwise
        distance (the usual automatic choice).
    local_scaling:
        The "LS" in LSDMap: per-point bandwidths from the distance to the
        ``k_neighbors``-th neighbour, so dense and sparse regions are
        resolved on their own scales.
    alpha:
        Density-normalization exponent (0.5: Fokker-Planck normalization,
        the LSDMap paper's choice).
    """
    x = np.asarray(samples, dtype=float)
    if x.ndim != 2 or len(x) < 3:
        raise ValueError("samples must be (n >= 3, dim)")
    n = len(x)
    n_evecs = min(n_evecs, n)

    sq = _pairwise_sq_distances(x)
    distances = np.sqrt(sq)

    if local_scaling:
        k = min(max(k_neighbors, 1), n - 1)
        # Distance to the k-th nearest neighbour of each point.
        local = np.sort(distances, axis=1)[:, k]
        local = np.maximum(local, 1e-12)
        eps = np.outer(local, local)  # epsilon_i * epsilon_j
        kernel = np.exp(-sq / eps)
        eps_used = local
    else:
        if epsilon == "median":
            off_diag = distances[~np.eye(n, dtype=bool)]
            eps_value = float(np.median(off_diag))
        else:
            eps_value = float(epsilon)
        if eps_value <= 0:
            raise ValueError("epsilon must be positive")
        kernel = np.exp(-sq / (2.0 * eps_value**2))
        eps_used = np.array([eps_value])

    # Density normalization (alpha) then row-normalization to a Markov matrix.
    degree = kernel.sum(axis=1)
    if alpha > 0:
        weights = degree**alpha
        kernel = kernel / np.outer(weights, weights)
        degree = kernel.sum(axis=1)
    d_inv_sqrt = 1.0 / np.sqrt(degree)
    # Symmetric conjugate of the Markov matrix keeps eigh applicable.
    symmetric = kernel * np.outer(d_inv_sqrt, d_inv_sqrt)
    symmetric = 0.5 * (symmetric + symmetric.T)  # exact symmetry

    eigenvalues, vectors = scipy.linalg.eigh(
        symmetric, subset_by_index=[n - n_evecs, n - 1]
    )
    # eigh returns ascending; flip to descending.
    eigenvalues = eigenvalues[::-1]
    vectors = vectors[:, ::-1]
    # Back-transform symmetric eigenvectors to Markov (right) eigenvectors.
    eigenvectors = vectors * d_inv_sqrt[:, None]
    # Normalize sign and scale: constant-positive first vector, unit norm.
    for j in range(eigenvectors.shape[1]):
        norm = np.linalg.norm(eigenvectors[:, j])
        if norm > 0:
            eigenvectors[:, j] /= norm
        if eigenvectors[np.argmax(np.abs(eigenvectors[:, j])), j] < 0:
            eigenvectors[:, j] *= -1.0

    return DiffusionMapResult(
        eigenvalues=np.clip(eigenvalues, -1.0, 1.0),
        eigenvectors=eigenvectors,
        epsilon=eps_used,
        mean_degree=float(degree.mean()),
    )
