"""MD system definitions: a potential plus physically sensible defaults."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.md.potentials import DoubleWell2D, MuellerBrown, Potential

__all__ = ["MDSystem", "alanine_dipeptide_surface", "mueller_brown_system"]


@dataclass
class MDSystem:
    """A named system: potential surface, default start point and step.

    ``reference_temperature`` is the temperature at which production
    simulations of this system are meaningful (barrier-crossing times
    finite but rare), used as the bottom of REMD temperature ladders.
    """

    name: str
    potential: Potential
    x0: np.ndarray
    dt: float = 0.01
    friction: float = 1.0
    reference_temperature: float = 1.0
    #: Number of atoms of the *real* system this stands in for (metadata
    #: only; used by cost models).
    natoms: int = 1
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.x0 = np.asarray(self.x0, dtype=float)
        if self.x0.shape != (self.potential.dim,):
            raise ValueError(
                f"x0 shape {self.x0.shape} does not match potential dim "
                f"{self.potential.dim}"
            )


def alanine_dipeptide_surface(barrier: float = 5.0) -> MDSystem:
    """The paper's solvated alanine dipeptide, reduced to a 2-D double well.

    The real system has 2881 atoms; its slow degree of freedom is the
    backbone dihedral pair (φ, ψ) with two metastable conformers.  The
    reduced model keeps: (i) two basins separated by a thermally relevant
    barrier, (ii) a potential-energy signal usable by the Metropolis
    exchange criterion, (iii) a 2-D configuration space for CoCo/LSDMap.
    Start in the left basin so sampling the right one requires either
    temperature (REMD) or adaptive restarts (CoCo) — the effects the
    paper's workloads exist to produce.
    """
    potential = DoubleWell2D(barrier=barrier, a=1.0, k=4.0)
    return MDSystem(
        name="ala2-2d",
        potential=potential,
        x0=np.array([-1.0, 0.0]),
        dt=0.01,
        friction=1.0,
        reference_temperature=1.0,
        natoms=2881,
        meta={"stands_in_for": "solvated alanine dipeptide (2881 atoms)"},
    )


def mueller_brown_system() -> MDSystem:
    """The Müller-Brown landscape with a start in the deepest minimum."""
    potential = MuellerBrown()
    return MDSystem(
        name="mueller-brown",
        potential=potential,
        x0=potential.minima[0].copy(),
        dt=1e-4,
        friction=10.0,
        reference_temperature=15.0,
        natoms=1,
    )
