"""Trajectory container with ``.npz`` persistence.

The MD kernels exchange trajectories between tasks as files in unit
sandboxes (exactly how Amber restart/trajectory files flow through the
paper's workloads), so the format must round-trip through disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Trajectory"]


@dataclass
class Trajectory:
    """Positions, energies and metadata of one MD run.

    Attributes
    ----------
    positions:
        ``(nframes, dim)`` sampled coordinates.
    energies:
        ``(nframes,)`` potential energies of the samples.
    temperature:
        The thermostat temperature of the run.
    dt:
        Integration time step.
    stride:
        Steps between saved frames.
    meta:
        Free-form provenance (replica id, iteration, kernel name, ...).
    """

    positions: np.ndarray
    energies: np.ndarray
    temperature: float
    dt: float = 0.01
    stride: int = 1
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.positions = np.asarray(self.positions, dtype=float)
        self.energies = np.asarray(self.energies, dtype=float)
        if self.positions.ndim != 2:
            raise ValueError("positions must be (nframes, dim)")
        if len(self.energies) != len(self.positions):
            raise ValueError("energies and positions length mismatch")

    @property
    def nframes(self) -> int:
        return len(self.positions)

    @property
    def dim(self) -> int:
        return self.positions.shape[1]

    @property
    def final_position(self) -> np.ndarray:
        return self.positions[-1]

    @property
    def final_energy(self) -> float:
        return float(self.energies[-1])

    # -- persistence -------------------------------------------------------------

    def save(self, path: str | Path) -> Path:
        """Write the trajectory as a compressed ``.npz``; returns the path."""
        path = Path(path)
        meta_keys = sorted(self.meta)
        np.savez_compressed(
            path,
            positions=self.positions,
            energies=self.energies,
            temperature=np.float64(self.temperature),
            dt=np.float64(self.dt),
            stride=np.int64(self.stride),
            meta_keys=np.array(meta_keys, dtype=object),
            meta_values=np.array(
                [str(self.meta[k]) for k in meta_keys], dtype=object
            ),
        )
        # np.savez appends .npz when missing; normalize the return value.
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(cls, path: str | Path) -> "Trajectory":
        with np.load(path, allow_pickle=True) as data:
            meta = dict(
                zip(data["meta_keys"].tolist(), data["meta_values"].tolist())
            )
            return cls(
                positions=data["positions"],
                energies=data["energies"],
                temperature=float(data["temperature"]),
                dt=float(data["dt"]),
                stride=int(data["stride"]),
                meta=meta,
            )

    # -- composition -------------------------------------------------------------

    def extend(self, other: "Trajectory") -> "Trajectory":
        """Concatenate *other* after this trajectory (same dim required)."""
        if other.dim != self.dim:
            raise ValueError("cannot extend with a different-dimensional trajectory")
        return Trajectory(
            positions=np.vstack([self.positions, other.positions]),
            energies=np.concatenate([self.energies, other.energies]),
            temperature=other.temperature,
            dt=other.dt,
            stride=other.stride,
            meta={**self.meta, **other.meta},
        )
