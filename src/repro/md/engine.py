"""The MD engine: runs a system and produces trajectories.

This object is what the ``md.amber`` / ``md.gromacs`` kernel plugins wrap;
it also carries the *cost model* mapping (steps, atoms, cores) to modelled
wall seconds for the simulated execution mode.
"""

from __future__ import annotations

import numpy as np

from repro.md.integrators import LangevinIntegrator
from repro.md.system import MDSystem
from repro.md.trajectory import Trajectory

__all__ = ["MDEngine"]


class MDEngine:
    """Run Langevin MD on one :class:`MDSystem`."""

    def __init__(self, system: MDSystem, seed: int | None = None) -> None:
        self.system = system
        self.seed = seed

    def run(
        self,
        nsteps: int,
        temperature: float | None = None,
        x0: np.ndarray | None = None,
        stride: int = 10,
        seed: int | None = None,
        meta: dict | None = None,
    ) -> Trajectory:
        """Integrate *nsteps* and return the sampled trajectory."""
        system = self.system
        temperature = (
            system.reference_temperature if temperature is None else float(temperature)
        )
        start = system.x0 if x0 is None else np.asarray(x0, dtype=float)
        rng = np.random.default_rng(self.seed if seed is None else seed)
        integrator = LangevinIntegrator(
            system.potential,
            dt=system.dt,
            friction=system.friction,
            temperature=temperature,
            rng=rng,
        )
        positions, _velocities = integrator.run(start, nsteps, stride=stride)
        if len(positions) == 0:
            # Degenerate stride > nsteps: keep at least the final state so
            # downstream exchange/analysis always has one frame.
            positions = np.asarray([start])
        energies = np.atleast_1d(system.potential.energy(positions))
        return Trajectory(
            positions=positions,
            energies=energies,
            temperature=temperature,
            dt=system.dt,
            stride=stride,
            meta={"system": system.name, **(meta or {})},
        )

    # -- cost model ---------------------------------------------------------------

    #: Modelled single-core throughput of the *real* engine on the
    #: reference platform: MD steps x atoms per second.  Tuned so the
    #: paper's workloads land at their reported magnitudes (a 6 ps = 3000
    #: step run of 2881 atoms on one core ~ a few hundred seconds).
    STEP_ATOMS_PER_SECOND = 4.0e4

    @classmethod
    def modelled_seconds(cls, nsteps: int, natoms: int, cores: int = 1) -> float:
        """Modelled wall seconds of an MD run on *cores* cores.

        Domain-decomposed MD scales near-linearly until a few dozen atoms
        per core; alanine dipeptide at 2881 atoms keeps scaling through the
        paper's 64-core points, so linear speedup is the faithful model
        (the paper's Fig. 9 indeed observes it).
        """
        if nsteps < 0 or natoms < 1 or cores < 1:
            raise ValueError("nsteps >= 0, natoms >= 1, cores >= 1 required")
        return nsteps * natoms / (cls.STEP_ATOMS_PER_SECOND * cores)
