"""Langevin dynamics integration.

BAOAB splitting (Leimkuhler & Matthews): velocity half-kick, position
half-drift, Ornstein-Uhlenbeck thermostat, half-drift, half-kick.  BAOAB
has excellent configurational sampling accuracy at large time steps, which
keeps the toy simulations cheap while preserving the Boltzmann statistics
the replica-exchange tests rely on.

Units: ``k_B = 1``, mass = 1, so temperature is in energy units and
velocities carry variance ``T`` at equilibrium.
"""

from __future__ import annotations

import numpy as np

from repro.md.potentials import Potential

__all__ = ["LangevinIntegrator"]


class LangevinIntegrator:
    """BAOAB Langevin integrator.

    Parameters
    ----------
    potential:
        The energy surface.
    dt:
        Time step.
    friction:
        Langevin friction γ (1/time).
    temperature:
        Target temperature (k_B = 1).
    rng:
        NumPy generator for the thermostat noise.
    """

    def __init__(
        self,
        potential: Potential,
        dt: float = 0.01,
        friction: float = 1.0,
        temperature: float = 1.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if friction < 0:
            raise ValueError("friction must be non-negative")
        if temperature < 0:
            raise ValueError("temperature must be non-negative")
        self.potential = potential
        self.dt = float(dt)
        self.friction = float(friction)
        self.temperature = float(temperature)
        self.rng = rng or np.random.default_rng()
        # OU decay and noise amplitude for the O step.
        self._c1 = np.exp(-self.friction * self.dt)
        self._c2 = np.sqrt(max(self.temperature * (1.0 - self._c1**2), 0.0))

    def sample_velocity(self, shape: tuple[int, ...]) -> np.ndarray:
        """Draw a Maxwell-Boltzmann velocity at the target temperature."""
        return self.rng.standard_normal(shape) * np.sqrt(self.temperature)

    def step(self, x: np.ndarray, v: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Advance one BAOAB step; returns new ``(x, v)`` (copies)."""
        dt = self.dt
        f = self.potential.force(x)
        v = v + 0.5 * dt * f                       # B
        x = x + 0.5 * dt * v                        # A
        v = self._c1 * v + self._c2 * self.rng.standard_normal(v.shape)  # O
        x = x + 0.5 * dt * v                        # A
        f = self.potential.force(x)
        v = v + 0.5 * dt * f                       # B
        return x, v

    def run(
        self,
        x0: np.ndarray,
        nsteps: int,
        v0: np.ndarray | None = None,
        stride: int = 1,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Integrate *nsteps*; return ``(positions, velocities)`` sampled
        every *stride* steps (the initial state is not included).

        Shapes: ``(nsteps // stride, dim)``.
        """
        if nsteps < 1:
            raise ValueError("nsteps must be >= 1")
        if stride < 1:
            raise ValueError("stride must be >= 1")
        x = np.array(x0, dtype=float)
        v = self.sample_velocity(x.shape) if v0 is None else np.array(v0, dtype=float)
        nsamples = nsteps // stride
        xs = np.empty((nsamples, x.shape[-1]))
        vs = np.empty_like(xs)
        sample = 0
        for step in range(1, nsteps + 1):
            x, v = self.step(x, v)
            if step % stride == 0 and sample < nsamples:
                xs[sample] = x
                vs[sample] = v
                sample += 1
        return xs[:sample], vs[:sample]
