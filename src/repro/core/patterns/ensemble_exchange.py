"""The Ensemble Exchange pattern (paper Fig. 2b).

Interacting ensemble members alternate between two states: *simulating*
(independent) and *exchanging* (interacting with other members).  There is
no obligatory global barrier: members that are ready exchange among
themselves while others still simulate.

Two exchange disciplines are supported, both observed in the wild:

* ``"pairwise"`` (default) — replicas that finish a simulation burst enter a
  waiting pool; as soon as :meth:`select_pairs` can match two of them, an
  exchange task runs for that pair and both proceed to the next burst.  This
  is the temporally-unsynchronized pairwise REMD the paper describes.
* ``"global"`` — one exchange task per iteration over all members, started
  when every member finished the burst (RepEx-style synchronous exchange;
  this is what the paper's Fig. 5/6 Amber temperature-exchange runs used —
  their exchange time scales with the number of replicas and not with the
  core count, the signature of a serial global step).

Placeholders for staging: ``$PREV_STAGE`` (the member's previous task),
``$SHARED``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.execution_pattern import ExecutionPattern
from repro.exceptions import PatternError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import Kernel

__all__ = ["EnsembleExchange"]


class EnsembleExchange(ExecutionPattern):
    """Simulate / exchange cycles over an ensemble of members.

    Parameters
    ----------
    ensemble_size:
        Number of ensemble members (replicas), 1-based instance numbers.
    iterations:
        Number of simulate+exchange cycles each member performs.
    exchange_mode:
        ``"pairwise"`` or ``"global"`` (see module docstring).
    """

    pattern_name = "ee"

    def __init__(
        self,
        ensemble_size: int,
        iterations: int = 1,
        exchange_mode: str = "pairwise",
    ) -> None:
        super().__init__()
        self.ensemble_size = self._check_positive(ensemble_size, "ensemble_size")
        self.iterations = self._check_positive(iterations, "iterations")
        if exchange_mode not in ("pairwise", "global"):
            raise PatternError(f"unknown exchange_mode {exchange_mode!r}")
        self.exchange_mode = exchange_mode

    # -- user hooks ---------------------------------------------------------------

    def simulation_stage(self, iteration: int, instance: int) -> "Kernel":
        raise PatternError(
            f"{type(self).__name__} must define simulation_stage(iteration, instance)"
        )

    def exchange_stage(self, iteration: int, instances: Sequence[int]) -> "Kernel":
        """Kernel performing the exchange among *instances*.

        In pairwise mode *instances* is a 2-tuple; in global mode it is the
        list of all members of that iteration.
        """
        raise PatternError(
            f"{type(self).__name__} must define exchange_stage(iteration, instances)"
        )

    def select_pairs(self, waiting: Sequence[int]) -> list[tuple[int, int]]:
        """Match waiting members into exchange pairs (pairwise mode).

        *waiting* holds the instance numbers currently in the pool, all at
        the same iteration, in ascending order.  The default greedily pairs
        temperature-ladder neighbours (consecutive instance numbers, e.g.
        2 with 3 if both wait) — override for other coupling topologies.
        Members left unmatched stay in the pool; if they can never match,
        the driver's quiescence rule lets them skip the exchange.
        """
        pairs = []
        by_index = sorted(waiting)
        i = 0
        while i + 1 < len(by_index):
            if by_index[i + 1] == by_index[i] + 1:
                pairs.append((by_index[i], by_index[i + 1]))
                i += 2
            else:
                i += 1
        return pairs

    # -- used by the driver ----------------------------------------------------------

    def get_simulation(self, iteration: int, instance: int) -> "Kernel":
        kernel = self.simulation_stage(iteration, instance)
        return self._require_kernel(
            kernel, f"simulation_stage({iteration}, {instance})"
        )

    def get_exchange(self, iteration: int, instances: Sequence[int]) -> "Kernel":
        kernel = self.exchange_stage(iteration, tuple(instances))
        return self._require_kernel(
            kernel, f"exchange_stage({iteration}, {tuple(instances)})"
        )

    def validate(self) -> None:
        super().validate()
        if type(self).simulation_stage is EnsembleExchange.simulation_stage:
            raise PatternError(f"{type(self).__name__} must define simulation_stage()")
        if type(self).exchange_stage is EnsembleExchange.exchange_stage:
            raise PatternError(f"{type(self).__name__} must define exchange_stage()")
