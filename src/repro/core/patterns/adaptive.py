"""Adaptive Simulation-Analysis Loop (paper §V's planned enhancement).

The paper's roadmap: "Ensemble toolkit will progressively support more
adaptive scenarios, for example the ability to kill-replace tasks, vary the
number of tasks between stages, vary the workload in each task during
execution time."  This pattern delivers the decision-point API for the
first two mechanisms that operate at stage boundaries:

* after every analysis barrier the user's :meth:`adapt` hook inspects the
  completed analysis tasks and returns an :class:`AdaptDecision` that can
  **stop the loop early** (convergence) or **change the ensemble sizes** of
  the following iteration;
* together with :attr:`~repro.core.execution_pattern.ExecutionPattern.max_task_retries`
  this covers kill-replace of failed members.

Example::

    class Converging(AdaptiveSimulationAnalysisLoop):
        def adapt(self, iteration, analysis_units):
            occupancy = analysis_units[0].result["occupancy"]
            if occupancy > 0.9:
                return AdaptDecision(proceed=False)       # converged
            return AdaptDecision(simulation_instances=self.simulation_instances * 2)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.core.patterns.simulation_analysis_loop import SimulationAnalysisLoop
from repro.exceptions import PatternError

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit

__all__ = ["AdaptDecision", "AdaptiveSimulationAnalysisLoop"]


@dataclass(frozen=True)
class AdaptDecision:
    """What the loop should do after an analysis barrier.

    ``proceed=False`` ends the loop now (post_loop still runs).
    ``simulation_instances`` / ``analysis_instances`` resize the *next*
    iteration's stages (``None`` keeps the current size).
    """

    proceed: bool = True
    simulation_instances: int | None = None
    analysis_instances: int | None = None

    def validate(self) -> None:
        for field_name in ("simulation_instances", "analysis_instances"):
            value = getattr(self, field_name)
            if value is not None and (not isinstance(value, int) or value < 1):
                raise PatternError(
                    f"AdaptDecision.{field_name} must be a positive int or None, "
                    f"got {value!r}"
                )


class AdaptiveSimulationAnalysisLoop(SimulationAnalysisLoop):
    """SAL whose shape is decided at run time.

    ``iterations`` becomes an upper bound; :meth:`adapt` may stop earlier
    and may retarget the ensemble sizes between iterations.  Everything
    else (barriers, placeholders, staging) behaves exactly like
    :class:`SimulationAnalysisLoop`.
    """

    pattern_name = "adaptive-sal"

    def adapt(
        self, iteration: int, analysis_units: Sequence["ComputeUnit"]
    ) -> AdaptDecision:
        """Inspect iteration *iteration*'s analysis results; default: static."""
        return AdaptDecision()

    #: Record of applied decisions, for tests and provenance.
    @property
    def decisions(self) -> list[AdaptDecision]:
        if not hasattr(self, "_decisions"):
            self._decisions: list[AdaptDecision] = []
        return self._decisions
