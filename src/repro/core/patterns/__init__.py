"""Concrete execution patterns (paper Fig. 2)."""

from repro.core.patterns.bag_of_tasks import BagOfTasks
from repro.core.patterns.pipeline import EnsembleOfPipelines
from repro.core.patterns.ensemble_exchange import EnsembleExchange
from repro.core.patterns.simulation_analysis_loop import SimulationAnalysisLoop
from repro.core.patterns.composite import ConcurrentPatterns, PatternSequence
from repro.core.patterns.adaptive import AdaptDecision, AdaptiveSimulationAnalysisLoop

__all__ = [
    "BagOfTasks",
    "EnsembleOfPipelines",
    "EnsembleExchange",
    "SimulationAnalysisLoop",
    "PatternSequence",
    "ConcurrentPatterns",
    "AdaptDecision",
    "AdaptiveSimulationAnalysisLoop",
]
