"""The Bag of Tasks unit pattern.

The simplest unit pattern (paper §III.B: "an execution pattern of a bag of
tasks would create a set of tasks that are independent of each other"):
``size`` tasks, no coupling, no ordering.  Implemented as a one-stage
ensemble of pipelines, which is exactly its semantics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.patterns.pipeline import EnsembleOfPipelines
from repro.exceptions import PatternError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import Kernel

__all__ = ["BagOfTasks"]


class BagOfTasks(EnsembleOfPipelines):
    """``size`` independent tasks; define :meth:`task`."""

    pattern_name = "bot"

    def __init__(self, size: int) -> None:
        super().__init__(ensemble_size=size, pipeline_size=1)
        self.size = size

    def task(self, instance: int) -> "Kernel":
        """Return the kernel of task *instance* (1-based)."""
        raise PatternError(
            f"{type(self).__name__} must define task(instance)"
        )

    def stage(self, stage_number: int, instance: int) -> "Kernel":
        return self.task(instance)

    def validate(self) -> None:
        # Deliberately skip the stage_<k> existence check of the parent:
        # BagOfTasks routes everything through task().
        if self.executed:
            raise PatternError(
                f"pattern {self.uid} was already executed; create a new instance"
            )
        if type(self).task is BagOfTasks.task:
            raise PatternError(f"{type(self).__name__} must define task(instance)")
