"""The Ensemble of Pipelines pattern (paper Fig. 2a).

``N`` independent pipelines, each a fixed sequence of ``M`` stages.  Stage
``k+1`` of a pipeline starts only after stage ``k`` of the *same* pipeline
ends; different pipelines never synchronize.

Users subclass and either define ``stage_1`` .. ``stage_M`` methods or
override the generic :meth:`stage`::

    class CharCount(EnsembleOfPipelines):
        def stage_1(self, instance):
            k = Kernel(name="misc.mkfile")
            k.arguments = ["--size=1000", "--filename=out.txt"]
            return k

        def stage_2(self, instance):
            k = Kernel(name="misc.ccount")
            k.arguments = ["--inputfile=out.txt", "--outputfile=counts.txt"]
            k.link_input_data = ["$STAGE_1/out.txt"]
            return k

Data placeholders available in staging directives:

* ``$STAGE_<k>``  — the sandbox of stage *k* of the same pipeline,
* ``$SHARED``     — the pilot-wide shared directory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.execution_pattern import ExecutionPattern
from repro.exceptions import PatternError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import Kernel

__all__ = ["EnsembleOfPipelines"]


class EnsembleOfPipelines(ExecutionPattern):
    """N independent M-stage pipelines.

    Parameters
    ----------
    ensemble_size:
        Number of pipelines N (1-based instance numbers).
    pipeline_size:
        Number of stages M in each pipeline.
    """

    pattern_name = "eop"

    def __init__(self, ensemble_size: int, pipeline_size: int = 1) -> None:
        super().__init__()
        self.ensemble_size = self._check_positive(ensemble_size, "ensemble_size")
        self.pipeline_size = self._check_positive(pipeline_size, "pipeline_size")

    # -- user hooks ---------------------------------------------------------------

    def stage(self, stage_number: int, instance: int) -> "Kernel":
        """Return the kernel of stage *stage_number* for pipeline *instance*.

        The default dispatches to ``stage_<k>`` methods; override for fully
        programmatic stage definitions.
        """
        method = getattr(self, f"stage_{stage_number}", None)
        if method is None:
            raise PatternError(
                f"{type(self).__name__} defines no stage_{stage_number}() "
                f"and does not override stage()"
            )
        return method(instance)

    # -- used by the driver ----------------------------------------------------------

    def get_stage(self, stage_number: int, instance: int) -> "Kernel":
        if not 1 <= stage_number <= self.pipeline_size:
            raise PatternError(
                f"stage {stage_number} out of range 1..{self.pipeline_size}"
            )
        if not 1 <= instance <= self.ensemble_size:
            raise PatternError(
                f"instance {instance} out of range 1..{self.ensemble_size}"
            )
        kernel = self.stage(stage_number, instance)
        return self._require_kernel(
            kernel, f"stage_{stage_number}(instance={instance})"
        )

    def validate(self) -> None:
        super().validate()
        # Fail fast on missing stage methods before anything is submitted.
        for stage_number in range(1, self.pipeline_size + 1):
            if (
                getattr(self, f"stage_{stage_number}", None) is None
                and type(self).stage is EnsembleOfPipelines.stage
            ):
                raise PatternError(
                    f"{type(self).__name__} must define stage_{stage_number}() "
                    f"(pipeline_size={self.pipeline_size})"
                )
