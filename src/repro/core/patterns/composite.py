"""Higher-order pattern composition (paper §III.B, §V).

The paper proposes *unit patterns* "that can be combined to form higher-order
patterns consisting of more complex communications and synchronizations" and
lists identifying a complete unit-pattern basis as future work.  This module
implements the composition operator that exists today in spirit:
:class:`PatternSequence` runs unit patterns one after another, with data
hand-off through the pilot's ``$SHARED`` space.

Because each constituent pattern is executed by its own driver against the
same resource handle, a sequence of (bag-of-tasks -> SAL -> EE) is itself a
valid "complex" pattern with no new machinery.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.execution_pattern import ExecutionPattern
from repro.exceptions import PatternError

__all__ = ["PatternSequence", "ConcurrentPatterns"]


def _check_members(
    owner: str,
    patterns: Sequence[ExecutionPattern],
    forbidden: tuple[type, ...],
) -> list:
    if not patterns:
        raise PatternError(f"{owner} needs at least one pattern")
    for pattern in patterns:
        if not isinstance(pattern, ExecutionPattern):
            raise PatternError(
                f"{owner} elements must be patterns, got {pattern!r}"
            )
        if isinstance(pattern, forbidden):
            raise PatternError(f"{owner} cannot nest composite patterns")
    return list(patterns)


class PatternSequence(ExecutionPattern):
    """Execute *patterns* sequentially on one allocation.

    A sequence step may itself be a :class:`ConcurrentPatterns` group —
    "prepare, then run these two things side by side, then post-process"
    is the canonical campaign shape — but sequences do not nest in
    sequences (flatten them instead).
    """

    pattern_name = "seq"

    def __init__(self, patterns: Sequence[ExecutionPattern]) -> None:
        super().__init__()
        self.patterns = _check_members(
            "PatternSequence", patterns, forbidden=(PatternSequence,)
        )

    def validate(self) -> None:
        super().validate()
        for pattern in self.patterns:
            pattern.validate()


class ConcurrentPatterns(ExecutionPattern):
    """Execute *patterns* concurrently on one allocation.

    All constituent patterns submit into the same pilot; the agent
    interleaves their tasks on the available cores.  This is the other
    composition operator the paper's higher-order-pattern roadmap needs
    (e.g. running an EE sampler *while* an independent analysis pipeline
    drains the previous batch).
    """

    pattern_name = "conc"

    def __init__(self, patterns: Sequence[ExecutionPattern]) -> None:
        super().__init__()
        self.patterns = _check_members(
            "ConcurrentPatterns",
            patterns,
            forbidden=(PatternSequence, ConcurrentPatterns),
        )

    def validate(self) -> None:
        super().validate()
        for pattern in self.patterns:
            pattern.validate()
