"""The Simulation-Analysis Loop pattern (paper Fig. 2c).

A two-stage iterative pattern: every iteration runs ``N`` simulation
instances, synchronizes, then runs ``M`` analysis instances, synchronizes,
and loops.  Optional ``pre_loop`` / ``post_loop`` singleton stages bracket
the loop (the EnMD API the paper's experiments used had both).

Placeholders available in staging directives:

* ``$PRE_LOOP``                         — sandbox of the pre_loop task,
* ``$PREV_SIMULATION``                  — sandbox of the same-instance
  simulation of the current iteration (analysis stage),
* ``$PREV_ANALYSIS``                    — sandbox of the same-instance
  analysis of the previous iteration (simulation stage),
* ``$SIMULATION_<iter>_<instance>``     — any specific simulation,
* ``$ANALYSIS_<iter>_<instance>``       — any specific analysis,
* ``$SHARED``                           — the pilot-wide directory.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.execution_pattern import ExecutionPattern
from repro.exceptions import PatternError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import Kernel

__all__ = ["SimulationAnalysisLoop"]


class SimulationAnalysisLoop(ExecutionPattern):
    """Iterative simulate-then-analyze with global barriers.

    Parameters
    ----------
    iterations:
        Number of loop iterations (1-based).
    simulation_instances:
        Simulation ensemble size N per iteration.
    analysis_instances:
        Analysis ensemble size M per iteration (often 1: a serial, global
        analysis such as CoCo).
    """

    pattern_name = "sal"

    def __init__(
        self,
        iterations: int,
        simulation_instances: int,
        analysis_instances: int = 1,
    ) -> None:
        super().__init__()
        self.iterations = self._check_positive(iterations, "iterations")
        self.simulation_instances = self._check_positive(
            simulation_instances, "simulation_instances"
        )
        self.analysis_instances = self._check_positive(
            analysis_instances, "analysis_instances"
        )

    # -- user hooks ---------------------------------------------------------------

    def pre_loop(self) -> "Kernel | None":
        """Optional setup task executed once before iteration 1."""
        return None

    def simulation_stage(self, iteration: int, instance: int) -> "Kernel":
        raise PatternError(
            f"{type(self).__name__} must define simulation_stage(iteration, instance)"
        )

    def analysis_stage(self, iteration: int, instance: int) -> "Kernel":
        raise PatternError(
            f"{type(self).__name__} must define analysis_stage(iteration, instance)"
        )

    def post_loop(self) -> "Kernel | None":
        """Optional teardown task executed once after the last iteration."""
        return None

    # -- used by the driver ----------------------------------------------------------

    def get_simulation(self, iteration: int, instance: int) -> "Kernel":
        kernel = self.simulation_stage(iteration, instance)
        return self._require_kernel(
            kernel, f"simulation_stage({iteration}, {instance})"
        )

    def get_analysis(self, iteration: int, instance: int) -> "Kernel":
        kernel = self.analysis_stage(iteration, instance)
        return self._require_kernel(
            kernel, f"analysis_stage({iteration}, {instance})"
        )

    def validate(self) -> None:
        super().validate()
        if type(self).simulation_stage is SimulationAnalysisLoop.simulation_stage:
            raise PatternError(
                f"{type(self).__name__} must define simulation_stage()"
            )
        if type(self).analysis_stage is SimulationAnalysisLoop.analysis_stage:
            raise PatternError(f"{type(self).__name__} must define analysis_stage()")
