"""Ensemble Toolkit core: the paper's primary contribution.

The four components of the paper's Fig. 1:

* **Execution patterns** (:mod:`repro.core.patterns`) — parameterized
  templates of ensemble coordination: :class:`EnsembleOfPipelines`,
  :class:`EnsembleExchange`, :class:`SimulationAnalysisLoop`, plus the
  :class:`BagOfTasks` unit pattern and sequential composition.
* **Kernel plugins** (:class:`Kernel` + the registry) — named computational
  tasks with per-resource configuration.
* **Resource handle** (:class:`ResourceHandle`) — allocate / run / deallocate.
* **Execution plugin** (:mod:`repro.core.execution_plugin`) — binds a
  pattern's kernels into compute units and drives them on the pilot runtime.

A five-line application (paper Fig. 1's numbered steps)::

    from repro import Kernel, ResourceHandle, BagOfTasks

    class Sleep(BagOfTasks):
        def task(self, instance):
            k = Kernel(name="misc.sleep")
            k.arguments = ["--duration=0"]
            return k

    handle = ResourceHandle(resource="local.localhost", cores=2, walltime=5)
    handle.allocate()
    handle.run(Sleep(size=4))
    handle.deallocate()
"""

from repro.core.kernel_plugin import Kernel, KernelPlugin
from repro.core.kernel_registry import (
    get_kernel_plugin,
    list_kernel_plugins,
    register_kernel,
)
from repro.core.execution_pattern import ExecutionPattern
from repro.core.patterns.bag_of_tasks import BagOfTasks
from repro.core.patterns.pipeline import EnsembleOfPipelines
from repro.core.patterns.ensemble_exchange import EnsembleExchange
from repro.core.patterns.simulation_analysis_loop import SimulationAnalysisLoop
from repro.core.patterns.composite import ConcurrentPatterns, PatternSequence
from repro.core.patterns.adaptive import AdaptDecision, AdaptiveSimulationAnalysisLoop
from repro.core.resource_handle import ResourceHandle, SingleClusterEnvironment
from repro.core.profiler import OverheadBreakdown, breakdown_from_profile

__all__ = [
    "Kernel",
    "KernelPlugin",
    "register_kernel",
    "get_kernel_plugin",
    "list_kernel_plugins",
    "ExecutionPattern",
    "BagOfTasks",
    "EnsembleOfPipelines",
    "EnsembleExchange",
    "SimulationAnalysisLoop",
    "PatternSequence",
    "ConcurrentPatterns",
    "AdaptDecision",
    "AdaptiveSimulationAnalysisLoop",
    "ResourceHandle",
    "SingleClusterEnvironment",
    "OverheadBreakdown",
    "breakdown_from_profile",
]
