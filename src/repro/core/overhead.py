"""EnTK client-side overhead model (simulated mode).

In local mode the toolkit's own costs are simply *measured*; under
simulation they must be *charged* on the virtual clock.  The constants model
what the paper's Fig. 3 decomposes:

* **core overhead** — toolkit initialization, launching the resource request
  and cancelling it: independent of pattern and task count.
* **pattern overhead** — creating compute units from kernels and submitting
  them to the runtime: proportional to the number of tasks.

Values are per-operation costs in seconds, of the magnitude reported for
EnMD/RADICAL-Pilot (paper Fig. 3 shows a few seconds of constant core
overhead and a pattern overhead growing to a handful of seconds at 192
tasks).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["EnTKOverheadModel"]


@dataclass(frozen=True)
class EnTKOverheadModel:
    """Per-operation client-side costs, in seconds."""

    #: One-time toolkit/module initialization.
    init_cost: float = 1.0
    #: Launching the resource (pilot) request, excluding queue wait.
    allocate_cost: float = 2.5
    #: Cancelling the resource request at deallocation.
    cancel_cost: float = 1.0
    #: Creating one compute unit description from a kernel plugin.
    task_create_cost: float = 0.012
    #: Fixed cost of one submission batch to the runtime system.
    submit_batch_cost: float = 0.1
    #: Per-task marshalling cost within a submission batch.
    submit_task_cost: float = 0.004

    def pattern_overhead(self, ntasks: int, nbatches: int = 1) -> float:
        """Modelled EnTK pattern overhead for *ntasks* in *nbatches*."""
        return (
            ntasks * (self.task_create_cost + self.submit_task_cost)
            + nbatches * self.submit_batch_cost
        )

    @property
    def core_overhead(self) -> float:
        """Modelled EnTK core overhead (init + allocate + cancel)."""
        return self.init_cost + self.allocate_cost + self.cancel_cost
