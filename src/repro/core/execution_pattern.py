"""Base class of execution patterns (paper §III.B.1, §III.D).

An execution pattern is "a parametrized template that captures the execution
of the ensemble(s)": it fixes coordination and synchronization, while the
user supplies only the workload (kernels) of each stage.  Concrete patterns
live in :mod:`repro.core.patterns`; each has a matching *driver* in
:mod:`repro.core.drivers` that enforces its ordering rules on the pilot
runtime.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import PatternError
from repro.utils.ids import generate_id

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import Kernel

__all__ = ["ExecutionPattern"]


class ExecutionPattern:
    """Common behaviour of all execution patterns.

    Subclasses declare ``pattern_name`` and implement stage methods returning
    :class:`~repro.core.kernel_plugin.Kernel` objects.  Instances are
    single-use: :meth:`ResourceHandle.run` consumes one pattern object and
    records results on it (``units``, ``failed_units``).
    """

    pattern_name: str = "base"

    #: Fault tolerance: how many times a failed task is resubmitted before
    #: its failure is surfaced to the pattern (paper §I lists fault-tolerant
    #: execution of large ensembles among the requirements scripting fails).
    #: Retained for backward compatibility; superseded by ``retry_policy``.
    max_task_retries: int = 0

    #: Full retry parametrization (:class:`repro.pilot.retry.RetryPolicy`):
    #: attempt budget plus exponential backoff between resubmissions.  When
    #: set it takes precedence over ``max_task_retries``; when ``None`` the
    #: driver adapts ``max_task_retries`` to an immediate-retry policy.
    retry_policy = None

    def __init__(self) -> None:
        self.uid = generate_id(f"pattern.{self.pattern_name}")
        #: Filled by the execution plugin after the run.
        self.units: list = []
        self.failed_units: list = []
        self.executed = False

    # -- hooks ------------------------------------------------------------------

    def validate(self) -> None:
        """Sanity-check the parametrization; override and call super()."""
        if self.executed:
            raise PatternError(
                f"pattern {self.uid} was already executed; create a new instance"
            )

    # -- helpers for subclasses ----------------------------------------------------

    @staticmethod
    def _require_kernel(obj, where: str) -> "Kernel":
        from repro.core.kernel_plugin import Kernel

        if not isinstance(obj, Kernel):
            raise PatternError(
                f"{where} must return a Kernel, got {type(obj).__name__}"
            )
        return obj

    @staticmethod
    def _check_positive(value: int, what: str) -> int:
        if not isinstance(value, int) or isinstance(value, bool) or value < 1:
            raise PatternError(f"{what} must be a positive integer, got {value!r}")
        return value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.uid}>"
