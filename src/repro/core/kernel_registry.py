"""Registry of kernel plugins.

Plugins register under dotted names (``misc.mkfile``, ``md.amber``,
``analysis.coco``).  Importing :mod:`repro.kernels` registers the built-in
library; applications can register their own with :func:`register_kernel`
or the :func:`kernel` class decorator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, TypeVar

from repro.exceptions import KernelError, NoKernelPluginError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import KernelPlugin

__all__ = ["register_kernel", "get_kernel_plugin", "list_kernel_plugins", "kernel"]

_REGISTRY: dict[str, type] = {}

P = TypeVar("P")


def register_kernel(plugin_cls: type, *, replace: bool = False) -> type:
    """Register *plugin_cls* under its ``name`` attribute."""
    name = getattr(plugin_cls, "name", "")
    if not name:
        raise KernelError(f"kernel plugin {plugin_cls!r} has no name")
    if name in _REGISTRY and not replace:
        raise KernelError(f"kernel plugin {name!r} is already registered")
    _REGISTRY[name] = plugin_cls
    return plugin_cls


def kernel(plugin_cls: type) -> type:
    """Class decorator form of :func:`register_kernel`."""
    return register_kernel(plugin_cls)


def get_kernel_plugin(name: str) -> type:
    """Look a plugin class up by name; built-ins load lazily."""
    if name not in _REGISTRY:
        # Importing the built-in library registers misc/md/analysis kernels.
        import repro.kernels  # noqa: F401  (import for side effect)
    try:
        return _REGISTRY[name]
    except KeyError:
        raise NoKernelPluginError(name, list(_REGISTRY)) from None


def list_kernel_plugins() -> list[str]:
    """Names of all registered plugins (built-ins included), sorted."""
    import repro.kernels  # noqa: F401  (import for side effect)

    return sorted(_REGISTRY)
