"""Registry of kernel plugins.

Plugins register under dotted names (``misc.mkfile``, ``md.amber``,
``analysis.coco``).  Importing :mod:`repro.kernels` registers the built-in
library; applications can register their own with :func:`register_kernel`
or the :func:`kernel` class decorator.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, TypeVar

from repro.exceptions import KernelError, NoKernelPluginError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import KernelPlugin

__all__ = ["register_kernel", "get_kernel_plugin", "list_kernel_plugins", "kernel"]

_REGISTRY: dict[str, type] = {}

P = TypeVar("P")


def register_kernel(plugin_cls: type, *, replace: bool = False) -> type:
    """Register *plugin_cls* under its ``name`` attribute."""
    name = getattr(plugin_cls, "name", "")
    if not name:
        raise KernelError(f"kernel plugin {plugin_cls!r} has no name")
    if name in _REGISTRY and not replace:
        raise KernelError(f"kernel plugin {name!r} is already registered")
    _REGISTRY[name] = plugin_cls
    return plugin_cls


def kernel(plugin_cls: type) -> type:
    """Class decorator form of :func:`register_kernel`."""
    return register_kernel(plugin_cls)


#: Built-in plugin modules by dotted-name prefix.  Loading only the
#: module a lookup needs keeps light workloads light: ``misc.sleep``
#: must not drag in the MD/analysis stack (and its scipy import), which
#: used to dominate simulated-run wall time.
_BUILTIN_MODULES = {
    "misc": "repro.kernels.misc",
    "md": "repro.kernels.md",
    "analysis": "repro.kernels.analysis",
    "exchange": "repro.kernels.exchange",
}


def get_kernel_plugin(name: str) -> type:
    """Look a plugin class up by name; built-ins load lazily per family."""
    if name not in _REGISTRY:
        import importlib

        module = _BUILTIN_MODULES.get(name.partition(".")[0])
        if module is not None:
            importlib.import_module(module)
    if name not in _REGISTRY:
        # Unknown prefix: load the whole built-in library before giving
        # up, so third-party registrations hooked into it still resolve.
        import repro.kernels

        repro.kernels.register_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise NoKernelPluginError(name, list(_REGISTRY)) from None


def list_kernel_plugins() -> list[str]:
    """Names of all registered plugins (built-ins included), sorted."""
    import repro.kernels

    repro.kernels.register_builtins()
    return sorted(_REGISTRY)
