"""The resource handle: allocate / run / deallocate (paper §III.B.3).

:class:`ResourceHandle` is the user's connection to one machine: it requests
the pilot (resource allocation), runs execution patterns on it, and releases
it.  The paper's EnMD called this the ``SingleClusterEnvironment``; the alias
is provided.

Example::

    handle = ResourceHandle(resource="local.localhost", cores=8, walltime=10)
    handle.allocate()
    handle.run(my_pattern)
    handle.deallocate()
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.drivers.registry import get_driver_class
from repro.core.overhead import EnTKOverheadModel
from repro.core.patterns.composite import PatternSequence
from repro.exceptions import AllocationError, ResourceHandleError
from repro.pilot.description import ComputePilotDescription
from repro.pilot.pilot_manager import PilotManager
from repro.pilot.session import Session
from repro.pilot.states import PilotState
from repro.pilot.unit_manager import UnitManager
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.execution_pattern import ExecutionPattern

__all__ = ["ResourceHandle", "SingleClusterEnvironment"]

log = get_logger("core.resource_handle")


class ResourceHandle:
    """Allocate resources, run patterns, deallocate.

    Parameters
    ----------
    resource:
        Platform name (``"local.localhost"``, ``"xsede.comet"`` ...).
    cores:
        Pilot size in cores.
    walltime:
        Requested walltime in minutes.
    username, queue, project:
        Accepted for API fidelity; credentials are meaningless here and the
        queue/project strings are only recorded.
    mode:
        ``"local"`` or ``"sim"``; defaults to local on ``local.localhost``
        and simulated elsewhere.
    seed, model_queue_wait:
        Simulation knobs (see :class:`repro.pilot.session.Session`).
    fault_rate, node_mtbf, node_repair_time, pilot_mtbf:
        Fault-injection knobs: task-level Bernoulli faults, node-level
        MTBF/repair failure domains and pilot container-job deaths
        (all sim-only; see :class:`repro.pilot.session.Session`).
    max_pilot_resubmits, retry_policy:
        Recovery knobs: pilot resubmission budget and the runtime
        :class:`~repro.pilot.retry.RetryPolicy` for units killed by
        node/pilot failures.
    agent_policy, slot_strategy:
        Agent scheduling knobs (see :class:`repro.pilot.agent.Agent`).
    spool_dir, bulk_lifecycle:
        Scale-envelope knobs: stream the trace to an NDJSON spool file,
        and move homogeneous unit batches through the state machine in
        bulk (see :class:`repro.pilot.session.Session`).
    overheads:
        EnTK client-side cost model used under simulation.
    """

    def __init__(
        self,
        resource: str,
        cores: int,
        walltime: float,
        username: str | None = None,
        queue: str = "",
        project: str = "",
        mode: str | None = None,
        seed: int = 0,
        model_queue_wait: bool = False,
        fault_rate: float = 0.0,
        node_mtbf: float = 0.0,
        node_repair_time: float = 300.0,
        pilot_mtbf: float = 0.0,
        max_pilot_resubmits: int = 0,
        retry_policy=None,
        agent_policy: str = "backfill",
        slot_strategy: str = "scattered",
        sandbox=None,
        spool_dir=None,
        bulk_lifecycle: bool = False,
        overheads: EnTKOverheadModel | None = None,
    ) -> None:
        self.resource = resource
        self.cores = cores
        self.walltime = walltime
        self.username = username
        self.queue = queue
        self.project = project
        self.mode = mode or ("local" if resource == "local.localhost" else "sim")
        self.seed = seed
        self.model_queue_wait = model_queue_wait
        self.fault_rate = fault_rate
        self.node_mtbf = node_mtbf
        self.node_repair_time = node_repair_time
        self.pilot_mtbf = pilot_mtbf
        self.max_pilot_resubmits = max_pilot_resubmits
        self.retry_policy = retry_policy
        self.agent_policy = agent_policy
        self.slot_strategy = slot_strategy
        self.sandbox = sandbox
        self.spool_dir = spool_dir
        self.bulk_lifecycle = bulk_lifecycle
        self.overheads = overheads or EnTKOverheadModel()

        self.session: Session | None = None
        self.pmgr: PilotManager | None = None
        self.umgr: UnitManager | None = None
        self.pilot = None
        self.allocated = False
        self.deallocated = False

    # -- internals ---------------------------------------------------------------

    @property
    def platform(self):
        self._require_allocated()
        return self.session.platform

    def _require_allocated(self) -> None:
        if not self.allocated or self.session is None:
            raise ResourceHandleError("resource handle is not allocated")
        if self.deallocated:
            raise ResourceHandleError("resource handle was deallocated")

    def _charge(self, seconds: float) -> None:
        """Advance virtual time by a client-side cost (sim mode only)."""
        if self.session is not None and self.session.is_simulated and seconds > 0:
            sim = self.session.sim
            sim.run(until=sim.now + seconds)

    # -- lifecycle -----------------------------------------------------------------

    def allocate(self, wait: bool = True) -> "ResourceHandle":
        """Create the session and submit the pilot request.

        With ``wait=True`` (default) the call returns once the pilot is
        active — queue wait is thereby excluded from pattern run times,
        matching how the paper reports its in-allocation measurements.
        """
        if self.allocated:
            raise ResourceHandleError("resource handle is already allocated")
        self.session = Session(
            mode=self.mode,
            platform=self.resource,
            sandbox=self.sandbox,
            seed=self.seed,
            model_queue_wait=self.model_queue_wait,
            fault_rate=self.fault_rate,
            node_mtbf=self.node_mtbf,
            node_repair_time=self.node_repair_time,
            pilot_mtbf=self.pilot_mtbf,
            max_pilot_resubmits=self.max_pilot_resubmits,
            retry_policy=self.retry_policy,
            spool_dir=self.spool_dir,
            bulk_lifecycle=self.bulk_lifecycle,
        )
        prof = self.session.prof
        prof.event("entk_init_start", self.session.uid)
        self._charge(self.overheads.init_cost)
        prof.event("entk_init_stop", self.session.uid)

        prof.event("entk_alloc_start", self.session.uid,
                   resource=self.resource, cores=self.cores)
        self.pmgr = PilotManager(
            self.session,
            policy=self.agent_policy,
            slot_strategy=self.slot_strategy,
        )
        description = ComputePilotDescription(
            resource=self.resource,
            cores=self.cores,
            runtime=self.walltime,
            queue=self.queue,
            project=self.project,
            mode=self.mode,
        )
        self.pilot = self.pmgr.submit_pilots(description)[0]
        self._charge(self.overheads.allocate_cost)
        prof.event("entk_alloc_stop", self.session.uid)

        self.umgr = UnitManager(self.session)
        self.umgr.add_pilots(self.pilot)
        self.allocated = True

        if wait:
            self.pmgr.wait_pilots_active(timeout=120.0)
            if self.pilot.state is not PilotState.ACTIVE:
                raise AllocationError(
                    f"pilot did not activate (state={self.pilot.state.value})"
                )
        return self

    def run(self, pattern: "ExecutionPattern") -> "ExecutionPattern":
        """Execute *pattern* on the allocation; blocks until it completes.

        :class:`PatternSequence` instances run their constituents in order
        on the same allocation.  Raises :class:`PatternError` if any task
        failed.
        """
        self._require_allocated()
        if isinstance(pattern, PatternSequence):
            self.session.prof.event("entk_pattern_start", pattern.uid,
                                    pattern=pattern.pattern_name)
            for sub in pattern.patterns:
                self.run(sub)
            pattern.units = [u for sub in pattern.patterns for u in sub.units]
            pattern.executed = True
            self.session.prof.event("entk_pattern_stop", pattern.uid)
            return pattern
        driver_cls = get_driver_class(pattern)
        driver = driver_cls(pattern, self)
        driver.run()
        return pattern

    def deallocate(self) -> None:
        """Cancel the pilot and close the session."""
        if not self.allocated or self.deallocated:
            return
        prof = self.session.prof
        prof.event("entk_cancel_start", self.session.uid)
        self.pmgr.cancel_pilots()
        self._charge(self.overheads.cancel_cost)
        prof.event("entk_cancel_stop", self.session.uid)
        self.session.close()
        self.deallocated = True

    # -- conveniences -----------------------------------------------------------------

    def __enter__(self) -> "ResourceHandle":
        return self.allocate()

    def __exit__(self, *exc_info) -> None:
        self.deallocate()

    @property
    def profile(self):
        """The session's profiler (valid until and after deallocation)."""
        if self.session is None:
            raise ResourceHandleError("resource handle was never allocated")
        return self.session.prof


#: The paper-era EnMD name for the resource handle.
SingleClusterEnvironment = ResourceHandle
