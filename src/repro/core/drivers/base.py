"""Common machinery of pattern drivers."""

from __future__ import annotations

import abc
import copy
import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.exceptions import PatternError
from repro.pilot.states import UnitState
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.execution_pattern import ExecutionPattern
    from repro.core.kernel_plugin import Kernel
    from repro.core.resource_handle import ResourceHandle
    from repro.pilot.unit import ComputeUnit

__all__ = ["PatternDriver", "SubmitRequest"]

log = get_logger("core.driver")


@dataclass
class SubmitRequest:
    """One kernel to submit, with its pattern context.

    ``placeholders`` maps staging tokens (without the leading ``$``) to the
    uid of the unit whose sandbox they refer to; ``tags`` is free-form
    metadata recorded on the unit (pattern entity, stage, iteration, ...).
    """

    kernel: "Kernel"
    tags: dict[str, Any] = field(default_factory=dict)
    placeholders: dict[str, str] = field(default_factory=dict)


class PatternDriver(abc.ABC):
    """Drives one pattern instance to completion on a resource handle."""

    def __init__(self, pattern: "ExecutionPattern", handle: "ResourceHandle") -> None:
        self.pattern = pattern
        self.handle = handle
        self.session = handle.session
        self.umgr = handle.umgr
        self.overheads = handle.overheads
        self._lock = threading.RLock()
        self._wakeup = threading.Condition(self._lock)
        self.units: list["ComputeUnit"] = []
        self.failed_units: list["ComputeUnit"] = []
        self._internal_error: BaseException | None = None
        self._pending: list[tuple[SubmitRequest, Any]] = []
        self._flush_scheduled = False
        #: retry bookkeeping: lineage root uid -> attempts used.
        self._retries: dict[str, int] = {}

    # -- subclass contract -----------------------------------------------------------

    @abc.abstractmethod
    def start(self) -> None:
        """Submit the pattern's initial batch(es)."""

    @abc.abstractmethod
    def on_unit_final(self, unit: "ComputeUnit") -> None:
        """React to one unit reaching a final state (submit successors...)."""

    @property
    @abc.abstractmethod
    def done(self) -> bool:
        """True when no further progress is possible or needed."""

    # -- execution -------------------------------------------------------------------

    def run(self) -> None:
        """Execute the pattern; raises :class:`PatternError` on task failure."""
        prof = self.session.prof
        self.pattern.validate()
        prof.event("entk_pattern_start", self.pattern.uid,
                   pattern=self.pattern.pattern_name)
        # Hold the driver lock across start(): unit-final callbacks (which
        # also take the lock) must not run before the initial batch's
        # bookkeeping (e.g. placeholder uid maps) is complete.
        with self._lock:
            self.start()
        self._drive_until(lambda: self.done)
        prof.event("entk_pattern_stop", self.pattern.uid)
        self.pattern.units = list(self.units)
        self.pattern.failed_units = list(self.failed_units)
        self.pattern.executed = True
        if self._internal_error is not None:
            raise self._internal_error
        if self.failed_units:
            details = "; ".join(
                f"{u.uid} ({u.description.name}): {u.exception!r}"
                for u in self.failed_units[:5]
            )
            raise PatternError(
                f"pattern {self.pattern.uid}: {len(self.failed_units)} "
                f"task(s) failed: {details}"
            )

    def _drive_until(self, condition) -> None:
        def finished() -> bool:
            return condition() or self._internal_error is not None

        if self.session.is_simulated:
            sim = self.session.sim
            while not finished():
                if sim.step() is None:
                    raise PatternError(
                        f"pattern {self.pattern.uid} deadlocked: simulation "
                        "drained with work outstanding"
                    )
            return
        with self._wakeup:
            while not finished():
                self._wakeup.wait(0.25)

    def _wake(self) -> None:
        with self._wakeup:
            self._wakeup.notify_all()

    # -- submission helper ------------------------------------------------------------

    def submit(self, requests: list[SubmitRequest]) -> list["ComputeUnit"]:
        """Bind kernels, resolve placeholders, submit as one batch.

        Under simulation the EnTK pattern overhead (task creation +
        submission marshalling) is charged on the virtual clock *before*
        the units reach the runtime, which is when the real toolkit pays
        it.  Returns the created units (in request order) immediately; the
        agent sees them after the charged delay.
        """
        if not requests:
            return []
        prof = self.session.prof
        with self.session.tracer.span(
            "driver.submit", self.pattern.uid, n=len(requests)
        ):
            prof.event(
                "entk_stage_create_start", self.pattern.uid, n=len(requests)
            )
            descriptions = []
            for request in requests:
                kernel = request.kernel
                kernel.link_input_data = [
                    self._resolve(entry, request.placeholders)
                    for entry in kernel.link_input_data
                ]
                kernel.copy_input_data = [
                    self._resolve(entry, request.placeholders)
                    for entry in kernel.copy_input_data
                ]
                description = kernel.bind(self.handle.resource, self.handle.platform)
                description.tags.update(request.tags)
                description.tags.setdefault("pattern", self.pattern.uid)
                descriptions.append(description)
            prof.event("entk_stage_create_stop", self.pattern.uid, n=len(requests))

            # Under simulation, EnTK's client-side cost (task creation +
            # submission marshalling, proportional to the task count) delays
            # delivery of the batch to the agent; units are created
            # synchronously so callers can wire placeholders immediately.
            overhead = 0.0
            if self.session.is_simulated:
                overhead = self.overheads.pattern_overhead(len(requests))
                prof.event("entk_pattern_overhead", self.pattern.uid,
                           seconds=overhead, n=len(requests))
            units = self.umgr.submit_units(
                descriptions, callback=self._unit_event, extra_delay=overhead
            )
            with self._lock:
                self.units.extend(units)
        return units

    def queue_submission(self, request: SubmitRequest, on_submitted=None) -> None:
        """Submit *request*, coalescing same-instant requests into one batch.

        Pattern progress often releases many successor tasks at the same
        (virtual) moment — e.g. all pipelines finishing a lock-step stage.
        The real toolkit submits those as one bulk operation; submitting
        192 one-task batches instead would charge 192 batch costs.  Under
        simulation, requests queued within one event timestamp are flushed
        together by a zero-delay, low-priority event; locally the request
        is submitted immediately (real measured costs are per-call anyway).

        ``on_submitted(unit)`` is invoked for the created unit before it can
        start executing, so callers can record placeholder mappings.
        """
        if not self.session.is_simulated:
            units = self.submit([request])
            if on_submitted is not None:
                on_submitted(units[0])
            return
        self._pending.append((request, on_submitted))
        if not self._flush_scheduled:
            self._flush_scheduled = True
            # priority=10: run after all same-time unit-final events so the
            # whole cohort lands in one batch.
            self.session.sim.schedule(
                0.0, self._flush_pending, priority=10,
                label=f"flush:{self.pattern.uid}",
            )

    def _flush_pending(self) -> None:
        with self._lock:
            self._flush_scheduled = False
            batch = self._pending
            self._pending = []
            if not batch:
                return
            units = self.submit([request for request, _ in batch])
            for (_, on_submitted), unit in zip(batch, units):
                if on_submitted is not None:
                    on_submitted(unit)

    @staticmethod
    def _resolve(entry: str, placeholders: dict[str, str]) -> str:
        """Rewrite ``$TOKEN/...`` staging sources to ``$UNIT_<uid>/...``."""
        if not entry.startswith("$"):
            return entry
        head, sep, rest = entry.partition("/")
        token = head[1:]
        if token in ("SHARED", "PILOT_SANDBOX") or token.startswith("UNIT_"):
            return entry
        if token not in placeholders:
            raise PatternError(
                f"staging placeholder ${token} is not defined here "
                f"(known: {sorted(placeholders) or 'none'})"
            )
        return f"$UNIT_{placeholders[token]}{sep}{rest}"

    # -- fault tolerance ---------------------------------------------------------------

    @property
    def retry_policy(self):
        """Effective task-retry policy of the driven pattern.

        ``pattern.retry_policy`` wins; a bare ``max_task_retries`` counter
        is adapted to an immediate (zero-backoff) policy; neither set means
        no retries (``None``).
        """
        from repro.pilot.retry import RetryPolicy

        policy = getattr(self.pattern, "retry_policy", None)
        if policy is not None:
            return policy
        return RetryPolicy.from_legacy_retries(
            getattr(self.pattern, "max_task_retries", 0)
        )

    def _try_retry(self, unit: "ComputeUnit") -> bool:
        """Resubmit a failed unit if the pattern's retry budget allows.

        The retry is a fresh compute unit with the identical description
        (same payload, staging, tags), so the pattern's ordering logic sees
        it exactly as it saw the original.  Drivers that keep uid-keyed
        placeholder maps are told to rebind via :meth:`on_unit_retried`.
        The policy's exponential backoff is charged as extra delivery delay
        on the virtual clock.
        """
        policy = self.retry_policy
        if policy is None:
            return False
        root = unit.description.tags.get("__retry_root", unit.uid)
        with self._lock:
            used = self._retries.get(root, 0)
            # attempts consumed so far = the original + `used` retries.
            if not policy.should_retry(used + 1):
                return False
            self._retries[root] = used + 1
        import dataclasses

        description = dataclasses.replace(
            unit.description,
            arguments=list(unit.description.arguments),
            environment=dict(unit.description.environment),
            input_staging=list(unit.description.input_staging),
            output_staging=list(unit.description.output_staging),
            tags={**unit.description.tags, "__retry_root": root,
                  "__retry_attempt": used + 1},
        )
        delay = 0.0
        if self.session.is_simulated:
            rng = None
            if policy.jitter > 0:
                rng = self.session.sim_context.streams.get("retry_backoff")
            delay = policy.jittered_delay(used + 1, rng)
        self.session.prof.event(
            "entk_task_retry", unit.uid, attempt=used + 1, root=root,
            delay=delay,
        )
        log.info("retrying failed unit %s (attempt %d/%d, backoff %.1fs)",
                 unit.uid, used + 1, policy.retries, delay)
        # Hold the driver lock across submit + bookkeeping: the replacement
        # may finish on another worker thread immediately, and its final
        # callback (which also takes this lock) must observe the unit list
        # and the rebound placeholder maps.
        with self._lock:
            replacement = self.umgr.submit_units(
                [description], callback=self._unit_event, extra_delay=delay
            )[0]
            self.units.append(replacement)
            self.on_unit_retried(unit, replacement)
        return True

    def on_unit_retried(self, old: "ComputeUnit", new: "ComputeUnit") -> None:
        """Rebind uid-keyed driver state after a retry (override as needed)."""

    # -- unit events --------------------------------------------------------------------

    def _unit_event(self, unit: "ComputeUnit", state: UnitState) -> None:
        if not state.is_final:
            return
        if state is UnitState.FAILED and self._try_retry(unit):
            return  # the retry unit carries the pattern forward
        if state in (UnitState.FAILED, UnitState.CANCELED):
            with self._lock:
                self.failed_units.append(unit)
        try:
            # Serialize all driver logic: callbacks may arrive concurrently
            # from executor worker threads in local mode.  The lock is
            # reentrant, so synchronous failure paths inside submit() that
            # re-enter this handler on the same thread are safe.
            with self._lock:
                self.on_unit_final(unit)
        except BaseException as exc:  # noqa: BLE001 - surface via run()
            log.exception("driver callback failed for unit %s", unit.uid)
            with self._lock:
                if self._internal_error is None:
                    self._internal_error = exc
        self._wake()
