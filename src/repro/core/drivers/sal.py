"""Driver for the Simulation-Analysis Loop.

Ordering rules (paper Fig. 2c): within one iteration all N simulations run
(concurrently, resources permitting) and are *globally synchronized* before
the M analysis tasks start; the analyses synchronize before the next
iteration's simulations.  ``pre_loop`` runs before iteration 1 and
``post_loop`` after the final analysis barrier.

A failure anywhere aborts the remainder of the loop (collective properties
of the whole ensemble are computed, so partial iterations are worthless —
paper §I).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.drivers.base import PatternDriver, SubmitRequest
from repro.pilot.states import UnitState

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit

__all__ = ["SimulationAnalysisLoopDriver"]


class SimulationAnalysisLoopDriver(PatternDriver):
    """Executes :class:`~repro.core.patterns.simulation_analysis_loop.SimulationAnalysisLoop`."""

    def __init__(self, pattern, handle) -> None:
        super().__init__(pattern, handle)
        self._phase = "init"  # init | pre_loop | sim | ana | post_loop | done
        self._iteration = 0
        self._outstanding = 0
        self._aborted = False
        #: placeholder map, grows as stages finish.
        self._tokens: dict[str, str] = {}
        #: per-iteration (simulation_instances, analysis_instances) — the
        #: sizes may change between iterations under adaptive execution.
        self._sizes: dict[int, tuple[int, int]] = {}

    # -- phase machine ---------------------------------------------------------------

    def start(self) -> None:
        pre = self.pattern.pre_loop()
        if pre is not None:
            self._phase = "pre_loop"
            self._outstanding = 1
            units = self.submit(
                [SubmitRequest(kernel=self.pattern._require_kernel(pre, "pre_loop()"),
                               tags={"phase": "pre_loop"},
                               placeholders=dict(self._tokens))]
            )
            self._tokens["PRE_LOOP"] = units[0].uid
        else:
            self._start_iteration(1)

    def _start_iteration(self, iteration: int) -> None:
        self._iteration = iteration
        self._phase = "sim"
        pattern = self.pattern
        self._sizes[iteration] = (
            pattern.simulation_instances,
            pattern.analysis_instances,
        )
        requests = []
        for instance in range(1, pattern.simulation_instances + 1):
            placeholders = dict(self._tokens)
            if iteration > 1:
                _, prev_analysis_count = self._sizes[iteration - 1]
                placeholders["PREV_ANALYSIS"] = self._tokens[
                    f"ANALYSIS_{iteration - 1}_{min(instance, prev_analysis_count)}"
                ]
            requests.append(
                SubmitRequest(
                    kernel=pattern.get_simulation(iteration, instance),
                    tags={"phase": "sim", "iteration": iteration,
                          "instance": instance},
                    placeholders=placeholders,
                )
            )
        self._outstanding = len(requests)
        units = self.submit(requests)
        for request, unit in zip(requests, units):
            token = f"SIMULATION_{iteration}_{request.tags['instance']}"
            self._tokens[token] = unit.uid

    def _start_analysis(self) -> None:
        self._phase = "ana"
        pattern = self.pattern
        iteration = self._iteration
        requests = []
        sim_count, _ = self._sizes[iteration]
        for instance in range(1, pattern.analysis_instances + 1):
            placeholders = dict(self._tokens)
            placeholders["PREV_SIMULATION"] = self._tokens[
                f"SIMULATION_{iteration}_{min(instance, sim_count)}"
            ]
            requests.append(
                SubmitRequest(
                    kernel=pattern.get_analysis(iteration, instance),
                    tags={"phase": "ana", "iteration": iteration,
                          "instance": instance},
                    placeholders=placeholders,
                )
            )
        self._outstanding = len(requests)
        units = self.submit(requests)
        for request, unit in zip(requests, units):
            token = f"ANALYSIS_{iteration}_{request.tags['instance']}"
            self._tokens[token] = unit.uid

    def _start_post_loop(self) -> None:
        post = self.pattern.post_loop()
        if post is None:
            self._phase = "done"
            return
        self._phase = "post_loop"
        self._outstanding = 1
        self.submit(
            [SubmitRequest(kernel=self.pattern._require_kernel(post, "post_loop()"),
                           tags={"phase": "post_loop"},
                           placeholders=dict(self._tokens))]
        )

    # -- events -----------------------------------------------------------------------

    def on_unit_final(self, unit: "ComputeUnit") -> None:
        if unit.description.tags.get("pattern") != self.pattern.uid:
            return
        with self._lock:
            self._outstanding -= 1
            if unit.state is not UnitState.DONE:
                self._aborted = True
            barrier_reached = self._outstanding == 0
        if not barrier_reached:
            return
        if self._aborted:
            self._phase = "done"
            return
        if self._phase == "pre_loop":
            self._start_iteration(1)
        elif self._phase == "sim":
            self._start_analysis()
        elif self._phase == "ana":
            self._after_analysis_barrier()
        elif self._phase == "post_loop":
            self._phase = "done"

    def _after_analysis_barrier(self) -> None:
        """Decide what follows a completed analysis barrier.

        The static loop continues to the next iteration until
        ``pattern.iterations``; the adaptive driver overrides this.
        """
        if self._iteration < self.pattern.iterations:
            self._start_iteration(self._iteration + 1)
        else:
            self._start_post_loop()

    def on_unit_retried(self, old, new) -> None:
        tags = old.description.tags
        with self._lock:
            if tags.get("phase") == "pre_loop":
                self._tokens["PRE_LOOP"] = new.uid
            elif tags.get("phase") == "sim":
                self._tokens[
                    f"SIMULATION_{tags['iteration']}_{tags['instance']}"
                ] = new.uid
            elif tags.get("phase") == "ana":
                self._tokens[
                    f"ANALYSIS_{tags['iteration']}_{tags['instance']}"
                ] = new.uid

    @property
    def done(self) -> bool:
        return self._phase == "done"
