"""Pattern drivers: per-pattern orchestration logic.

A driver enforces one pattern's ordering rules by submitting compute units
to the pilot runtime and reacting to their completions.  Drivers are pure
control flow — continuation-passing on unit-final callbacks — so the same
code serves threaded local execution and the discrete-event simulation.
"""

from repro.core.drivers.base import PatternDriver, SubmitRequest
from repro.core.drivers.eop import EnsembleOfPipelinesDriver
from repro.core.drivers.sal import SimulationAnalysisLoopDriver
from repro.core.drivers.ee import EnsembleExchangeDriver
from repro.core.drivers.registry import get_driver_class, register_driver

__all__ = [
    "PatternDriver",
    "SubmitRequest",
    "EnsembleOfPipelinesDriver",
    "SimulationAnalysisLoopDriver",
    "EnsembleExchangeDriver",
    "get_driver_class",
    "register_driver",
]
