"""Driver for concurrent pattern composition.

Each constituent pattern keeps its own (unmodified) driver; this driver
only starts them together and waits for all of them.  Constituents submit
into the same unit manager, so the pilot's agent interleaves their tasks —
genuine concurrency, not round-robin of whole patterns.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.drivers.base import PatternDriver
from repro.core.drivers.registry import get_driver_class
from repro.exceptions import PatternError

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit

__all__ = ["ConcurrentPatternsDriver"]


class ConcurrentPatternsDriver(PatternDriver):
    """Runs all child drivers concurrently to completion."""

    def __init__(self, pattern, handle) -> None:
        super().__init__(pattern, handle)
        self._children: list[PatternDriver] = []
        for child in pattern.patterns:
            driver_cls = get_driver_class(child)
            self._children.append(driver_cls(child, handle))

    def start(self) -> None:
        prof = self.session.prof
        for child_driver in self._children:
            child = child_driver.pattern
            child.validate()
            prof.event("entk_pattern_start", child.uid,
                       pattern=child.pattern_name, parent=self.pattern.uid)
            with child_driver._lock:
                child_driver.start()

    def on_unit_final(self, unit: "ComputeUnit") -> None:
        # Children receive their own callbacks; nothing to do here — but we
        # do wake the composite's drive loop on every completion (base
        # class handles that) so `done` is re-evaluated.
        pass

    @property
    def done(self) -> bool:
        return all(child.done for child in self._children)

    def run(self) -> None:
        prof = self.session.prof
        self.pattern.validate()
        prof.event("entk_pattern_start", self.pattern.uid,
                   pattern=self.pattern.pattern_name)
        self.start()
        # The composite has no units of its own: its wake-ups come from the
        # children's unit events, so in local mode we poll their doneness
        # (children notify their own condition variables).
        self._drive_until(lambda: self.done)
        prof.event("entk_pattern_stop", self.pattern.uid)

        failed = []
        for child_driver in self._children:
            child = child_driver.pattern
            prof.event("entk_pattern_stop", child.uid)
            child.units = list(child_driver.units)
            child.failed_units = list(child_driver.failed_units)
            child.executed = True
            failed.extend(child_driver.failed_units)
            if child_driver._internal_error is not None:
                raise child_driver._internal_error
        self.pattern.units = [
            unit for child in self._children for unit in child.units
        ]
        self.pattern.failed_units = failed
        self.pattern.executed = True
        if failed:
            raise PatternError(
                f"pattern {self.pattern.uid}: {len(failed)} task(s) failed "
                "across concurrent constituents"
            )
