"""Mapping from pattern classes to driver classes."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import PatternError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.drivers.base import PatternDriver
    from repro.core.execution_pattern import ExecutionPattern

__all__ = ["register_driver", "get_driver_class"]

_DRIVERS: dict[type, type] = {}


def register_driver(pattern_cls: type, driver_cls: type) -> None:
    _DRIVERS[pattern_cls] = driver_cls


def get_driver_class(pattern: "ExecutionPattern") -> type:
    """Most-derived registered driver for *pattern*'s class."""
    for cls in type(pattern).__mro__:
        if cls in _DRIVERS:
            return _DRIVERS[cls]
    raise PatternError(
        f"no driver registered for pattern type {type(pattern).__name__}"
    )


def _register_builtins() -> None:
    from repro.core.drivers.adaptive import AdaptiveSimulationAnalysisLoopDriver
    from repro.core.drivers.composite import ConcurrentPatternsDriver
    from repro.core.drivers.ee import EnsembleExchangeDriver
    from repro.core.drivers.eop import EnsembleOfPipelinesDriver
    from repro.core.drivers.sal import SimulationAnalysisLoopDriver
    from repro.core.patterns.adaptive import AdaptiveSimulationAnalysisLoop
    from repro.core.patterns.composite import ConcurrentPatterns
    from repro.core.patterns.ensemble_exchange import EnsembleExchange
    from repro.core.patterns.pipeline import EnsembleOfPipelines
    from repro.core.patterns.simulation_analysis_loop import SimulationAnalysisLoop

    register_driver(EnsembleOfPipelines, EnsembleOfPipelinesDriver)
    register_driver(SimulationAnalysisLoop, SimulationAnalysisLoopDriver)
    register_driver(EnsembleExchange, EnsembleExchangeDriver)
    register_driver(
        AdaptiveSimulationAnalysisLoop, AdaptiveSimulationAnalysisLoopDriver
    )
    register_driver(ConcurrentPatterns, ConcurrentPatternsDriver)


_register_builtins()
