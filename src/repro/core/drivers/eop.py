"""Driver for Ensemble of Pipelines (and Bag of Tasks).

Ordering rule: stage ``k+1`` of pipeline *p* is submitted from the final
callback of stage ``k`` of the same pipeline.  Pipelines never synchronize
with each other; the initial stage of every pipeline is submitted as one
bulk batch (this is what makes the pattern overhead one batch's worth, as
the paper's Fig. 3 assumes).

A failed stage aborts only its own pipeline; the pattern completes when
every pipeline has either finished its last stage or aborted, then reports
the failures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.drivers.base import PatternDriver, SubmitRequest
from repro.pilot.states import UnitState

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit

__all__ = ["EnsembleOfPipelinesDriver"]

#: Shared read-only placeholder map for pipelines with no recorded
#: sandboxes yet (staging resolution only ever reads these dicts).
_NO_PLACEHOLDERS: dict[str, str] = {}


class EnsembleOfPipelinesDriver(PatternDriver):
    """Executes :class:`~repro.core.patterns.pipeline.EnsembleOfPipelines`."""

    def __init__(self, pattern, handle) -> None:
        super().__init__(pattern, handle)
        #: pipelines still making progress (instance numbers).
        self._live: set[int] = set()
        #: stage sandbox uids per pipeline: {instance: {"STAGE_1": uid}}.
        #: Populated lazily — a single-stage pattern (every bag of tasks)
        #: never records anything, and the final stage of any pipeline is
        #: skipped because no later stage can reference its sandbox.  At
        #: the million-unit scale the eager dict-per-pipeline version was
        #: a measurable resident term.
        self._sandboxes: dict[int, dict[str, str]] = {}

    def _record_sandbox(self, instance: int, stage: int, uid: str) -> None:
        if stage >= self.pattern.pipeline_size:
            return
        self._sandboxes.setdefault(instance, {})[f"STAGE_{stage}"] = uid

    def _placeholders(self, instance: int) -> dict[str, str]:
        return self._sandboxes.get(instance, _NO_PLACEHOLDERS)

    def start(self) -> None:
        pattern = self.pattern
        self._live = set(range(1, pattern.ensemble_size + 1))
        requests = []
        for instance in sorted(self._live):
            kernel = pattern.get_stage(1, instance)
            requests.append(
                SubmitRequest(
                    kernel=kernel,
                    tags={"stage": 1, "instance": instance},
                    placeholders=_NO_PLACEHOLDERS,
                )
            )
        units = self.submit(requests)
        for request, unit in zip(requests, units):
            self._record_sandbox(request.tags["instance"], 1, unit.uid)

    def on_unit_final(self, unit: "ComputeUnit") -> None:
        tags = unit.description.tags
        if tags.get("pattern") != self.pattern.uid:
            return
        instance = tags["instance"]
        stage = tags["stage"]
        if unit.state is not UnitState.DONE:
            with self._lock:
                self._live.discard(instance)
            return
        if stage >= self.pattern.pipeline_size:
            with self._lock:
                self._live.discard(instance)
            return
        next_stage = stage + 1
        kernel = self.pattern.get_stage(next_stage, instance)
        request = SubmitRequest(
            kernel=kernel,
            tags={"stage": next_stage, "instance": instance},
            placeholders=self._placeholders(instance),
        )
        self.queue_submission(
            request,
            on_submitted=lambda unit, i=instance, s=next_stage: (
                self._record_sandbox(i, s, unit.uid)
            ),
        )

    def on_unit_retried(self, old, new) -> None:
        instance = old.description.tags["instance"]
        stage = old.description.tags["stage"]
        with self._lock:
            self._record_sandbox(instance, stage, new.uid)

    @property
    def done(self) -> bool:
        with self._lock:
            return not self._live
