"""Driver for the adaptive Simulation-Analysis Loop."""

from __future__ import annotations

from repro.core.drivers.sal import SimulationAnalysisLoopDriver
from repro.utils.logger import get_logger

__all__ = ["AdaptiveSimulationAnalysisLoopDriver"]

log = get_logger("core.driver.adaptive")


class AdaptiveSimulationAnalysisLoopDriver(SimulationAnalysisLoopDriver):
    """SAL driver that consults the pattern's adapt() hook at each barrier."""

    def _after_analysis_barrier(self) -> None:
        pattern = self.pattern
        iteration = self._iteration
        analysis_units = [
            u
            for u in self.units
            if u.description.tags.get("phase") == "ana"
            and u.description.tags.get("iteration") == iteration
        ]
        decision = pattern.adapt(iteration, analysis_units)
        decision.validate()
        pattern.decisions.append(decision)
        self.session.prof.event(
            "entk_adapt_decision",
            pattern.uid,
            iteration=iteration,
            proceed=decision.proceed,
            simulation_instances=decision.simulation_instances,
            analysis_instances=decision.analysis_instances,
        )
        if decision.simulation_instances is not None:
            log.info(
                "adapt: iteration %d resizes simulations %d -> %d",
                iteration,
                pattern.simulation_instances,
                decision.simulation_instances,
            )
            pattern.simulation_instances = decision.simulation_instances
        if decision.analysis_instances is not None:
            pattern.analysis_instances = decision.analysis_instances
        if not decision.proceed or iteration >= pattern.iterations:
            self._start_post_loop()
        else:
            self._start_iteration(iteration + 1)
