"""Driver for Ensemble Exchange.

Pairwise mode (no global barrier): every member loops
``simulate -> wait in pool -> exchange(pair) -> simulate ...`` and the pool
is matched greedily whenever a member arrives.  Members that cannot find a
partner once everything else has drained (odd ensembles, failed partners)
*skip* that exchange rather than deadlock — the pattern promises pairwise
interaction when possible, not a barrier.

Global mode: one exchange task per iteration over all surviving members,
submitted when the last simulation of the iteration completes (RepEx-style;
its serial cost grows with the ensemble size, which is exactly the
behaviour in the paper's Fig. 5/6).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.drivers.base import PatternDriver, SubmitRequest
from repro.pilot.states import UnitState

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit

__all__ = ["EnsembleExchangeDriver"]


class EnsembleExchangeDriver(PatternDriver):
    """Executes :class:`~repro.core.patterns.ensemble_exchange.EnsembleExchange`."""

    def __init__(self, pattern, handle) -> None:
        super().__init__(pattern, handle)
        self._live: set[int] = set()
        #: members waiting for an exchange partner, per iteration.
        self._pool: dict[int, list[int]] = {}
        #: members currently simulating or exchanging (instance -> phase).
        self._busy: dict[int, str] = {}
        #: last task uid per member (for $PREV_STAGE staging).
        self._prev: dict[int, str] = {}
        #: last *simulation* uid per member (for $PREV_SIMULATION staging).
        self._prev_sim: dict[int, str] = {}

    # -- submission helpers --------------------------------------------------------------

    def start(self) -> None:
        pattern = self.pattern
        self._live = set(range(1, pattern.ensemble_size + 1))
        requests = []
        for instance in sorted(self._live):
            requests.append(self._sim_request(1, instance))
        self._submit_sims(requests)

    def _sim_request(self, iteration: int, instance: int) -> SubmitRequest:
        placeholders = {}
        if instance in self._prev:
            placeholders["PREV_STAGE"] = self._prev[instance]
        if instance in self._prev_sim:
            placeholders["PREV_SIMULATION"] = self._prev_sim[instance]
        return SubmitRequest(
            kernel=self.pattern.get_simulation(iteration, instance),
            tags={"phase": "sim", "iteration": iteration, "instance": instance},
            placeholders=placeholders,
        )

    def _submit_sims(self, requests: list[SubmitRequest]) -> None:
        for request in requests:
            self._busy[request.tags["instance"]] = "sim"
        units = self.submit(requests)
        for request, unit in zip(requests, units):
            self._prev[request.tags["instance"]] = unit.uid
            self._prev_sim[request.tags["instance"]] = unit.uid

    def _submit_exchange(self, iteration: int, instances: tuple[int, ...]) -> None:
        kernel = self.pattern.get_exchange(iteration, instances)
        placeholders = {}
        for instance in instances:
            placeholders[f"REPLICA_{instance}"] = self._prev[instance]
        if len(instances) == 1 and instances[0] in self._prev:
            placeholders["PREV_STAGE"] = self._prev[instances[0]]
        for instance in instances:
            self._busy[instance] = "exchange"
        units = self.submit(
            [SubmitRequest(kernel=kernel,
                           tags={"phase": "exchange", "iteration": iteration,
                                 "instances": list(instances)},
                           placeholders=placeholders)]
        )
        for instance in instances:
            self._prev[instance] = units[0].uid

    # -- events ------------------------------------------------------------------------

    def on_unit_final(self, unit: "ComputeUnit") -> None:
        tags = unit.description.tags
        if tags.get("pattern") != self.pattern.uid:
            return
        if tags["phase"] == "sim":
            self._on_sim_final(unit, tags)
        else:
            self._on_exchange_final(unit, tags)
        self._resolve_stragglers()

    def _on_sim_final(self, unit: "ComputeUnit", tags: dict) -> None:
        instance = tags["instance"]
        iteration = tags["iteration"]
        with self._lock:
            self._busy.pop(instance, None)
            if unit.state is not UnitState.DONE:
                self._live.discard(instance)
                return
        if self.pattern.exchange_mode == "global":
            pool = self._pool.setdefault(iteration, [])
            pool.append(instance)
            # Cheap count check first; the set comparison only runs once per
            # iteration, keeping this O(n) per completion at 2560 replicas.
            if len(pool) == len(self._live) and set(pool) == self._live:
                self._pool[iteration] = []
                self._submit_exchange(iteration, tuple(sorted(pool)))
            return
        # pairwise
        pool = self._pool.setdefault(iteration, [])
        pool.append(instance)
        self._match_pairs(iteration)

    def _match_pairs(self, iteration: int) -> None:
        pool = self._pool.get(iteration, [])
        if len(pool) < 2:
            return
        pairs = self.pattern.select_pairs(sorted(pool))
        for a, b in pairs:
            if a in pool and b in pool and a != b:
                pool.remove(a)
                pool.remove(b)
                self._submit_exchange(iteration, (a, b))

    def _on_exchange_final(self, unit: "ComputeUnit", tags: dict) -> None:
        iteration = tags["iteration"]
        instances = tags["instances"]
        failed = unit.state is not UnitState.DONE
        for instance in instances:
            with self._lock:
                self._busy.pop(instance, None)
                if failed:
                    self._live.discard(instance)
                    continue
            self._advance_member(instance, iteration)

    def _advance_member(self, instance: int, iteration: int) -> None:
        if instance not in self._live:
            return
        if iteration >= self.pattern.iterations:
            with self._lock:
                self._live.discard(instance)
            return
        request = self._sim_request(iteration + 1, instance)
        self._busy[instance] = "sim"

        def record(unit, i=instance) -> None:
            self._prev[i] = unit.uid
            self._prev_sim[i] = unit.uid

        self.queue_submission(request, on_submitted=record)

    def _resolve_stragglers(self) -> None:
        """Skip exchanges that can never be matched (quiescence rule).

        When nothing is simulating or exchanging and the pools still hold
        members, no partner can ever arrive for them: let them skip the
        exchange and continue.  In global mode quiescence with a non-empty
        pool means some members failed mid-iteration; the survivors
        exchange among themselves.
        """
        with self._lock:
            if self._busy:
                return
            stragglers = [
                (iteration, instance)
                for iteration, pool in self._pool.items()
                for instance in pool
                if instance in self._live
            ]
            for iteration, pool in list(self._pool.items()):
                self._pool[iteration] = []
        if not stragglers:
            return
        if self.pattern.exchange_mode == "global":
            by_iteration: dict[int, list[int]] = {}
            for iteration, instance in stragglers:
                by_iteration.setdefault(iteration, []).append(instance)
            for iteration, instances in by_iteration.items():
                self._submit_exchange(iteration, tuple(sorted(instances)))
        else:
            for iteration, instance in stragglers:
                self._advance_member(instance, iteration)

    def on_unit_retried(self, old, new) -> None:
        tags = old.description.tags
        with self._lock:
            if tags.get("phase") == "sim":
                instance = tags["instance"]
                if self._prev.get(instance) == old.uid:
                    self._prev[instance] = new.uid
                if self._prev_sim.get(instance) == old.uid:
                    self._prev_sim[instance] = new.uid
            else:
                for instance in tags.get("instances", []):
                    if self._prev.get(instance) == old.uid:
                        self._prev[instance] = new.uid

    @property
    def done(self) -> bool:
        with self._lock:
            return not self._live
