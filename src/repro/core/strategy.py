"""Execution strategies (paper §V, ref. [23]).

The paper's execution plugin performs *static* binding: the user picks the
resource and the core count.  Its roadmap is "the transition from static
workload-resource mapping to dynamic mapping ... the ability to efficiently
select resources for a given workload".  This module implements that
decision layer: given a workload estimate and a set of candidate
platforms, a strategy picks the platform and pilot size that optimizes an
objective, using the same cost models the simulator runs on.

Estimates deliberately reuse first-order laws the rest of the package
implements exactly:

* makespan of an N-task homogeneous phase on C cores = ceil(N·c/C) waves,
* queue wait grows with the requested fraction of the machine,
* client-side overhead is proportional to the task count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.cluster.platform import PlatformSpec
from repro.cluster.platforms import get_platform
from repro.core.overhead import EnTKOverheadModel
from repro.exceptions import ConfigurationError

__all__ = [
    "WorkloadEstimate",
    "ResourcePlan",
    "estimate_ttc",
    "ExecutionStrategy",
    "MinimizeTTCStrategy",
    "MinimizeCostStrategy",
    "select_resource",
]


@dataclass(frozen=True)
class WorkloadEstimate:
    """First-order description of an ensemble workload.

    ``task_seconds`` is the modelled single-core duration of one task on
    the *reference* platform (core_speed 1.0); per-platform speeds are
    applied by the estimator.  ``serial_seconds`` covers serial stages
    (e.g. a global analysis) that no amount of cores parallelizes.
    """

    ntasks: int
    task_seconds: float
    cores_per_task: int = 1
    stages: int = 1
    serial_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.ntasks < 1 or self.cores_per_task < 1 or self.stages < 1:
            raise ConfigurationError("ntasks, cores_per_task, stages must be >= 1")
        if self.task_seconds < 0 or self.serial_seconds < 0:
            raise ConfigurationError("durations must be non-negative")

    @property
    def total_core_seconds(self) -> float:
        return self.ntasks * self.stages * self.task_seconds * self.cores_per_task


@dataclass(frozen=True)
class ResourcePlan:
    """A strategy's verdict: where to run and how big a pilot to request."""

    resource: str
    cores: int
    estimated_ttc: float
    estimated_queue_wait: float
    estimated_cost_core_hours: float
    details: dict = field(default_factory=dict)


def _queue_wait_estimate(platform: PlatformSpec, cores: int) -> float:
    """Expected queue wait: baseline plus a machine-fraction penalty.

    Requesting a large slice of a machine waits disproportionately longer;
    a linear fraction penalty of 4x at full machine is the standard
    rule-of-thumb shape.
    """
    fraction = cores / platform.total_cores
    return platform.mean_queue_wait * (1.0 + 4.0 * fraction)


def estimate_ttc(
    workload: WorkloadEstimate,
    platform: PlatformSpec,
    cores: int,
    overheads: EnTKOverheadModel | None = None,
    include_queue_wait: bool = True,
) -> dict[str, float]:
    """Estimated TTC decomposition of *workload* on *cores* of *platform*."""
    if cores < workload.cores_per_task:
        raise ConfigurationError(
            "pilot smaller than a single task's core requirement"
        )
    overheads = overheads or EnTKOverheadModel()
    concurrent = max(cores // workload.cores_per_task, 1)
    waves = math.ceil(workload.ntasks / concurrent)
    task_time = workload.task_seconds / platform.node.core_speed
    execution = workload.stages * waves * task_time + workload.serial_seconds
    launch = workload.stages * waves * platform.unit_launch_overhead
    client = overheads.core_overhead + overheads.pattern_overhead(
        workload.ntasks * workload.stages, nbatches=workload.stages
    )
    bootstrap = platform.agent_bootstrap + platform.submit_latency
    queue_wait = _queue_wait_estimate(platform, cores) if include_queue_wait else 0.0
    ttc = execution + launch + client + bootstrap + queue_wait
    return {
        "ttc": ttc,
        "execution": execution,
        "queue_wait": queue_wait,
        "client_overhead": client,
        "bootstrap": bootstrap,
        "launch": launch,
        "waves": float(waves),
    }


class ExecutionStrategy:
    """Base class: enumerate candidate plans, score them, pick the best."""

    #: Candidate pilot sizes as multiples of the workload's natural width.
    width_factors: tuple[float, ...] = (0.25, 0.5, 1.0)

    def objective(self, plan: ResourcePlan) -> float:
        raise NotImplementedError

    def candidate_cores(self, workload: WorkloadEstimate, platform: PlatformSpec) -> list[int]:
        natural = workload.ntasks * workload.cores_per_task
        sizes = set()
        for factor in self.width_factors:
            cores = max(
                workload.cores_per_task, int(natural * factor)
            )
            cores = min(cores, platform.total_cores)
            # Round to whole nodes, as a batch system would allocate.
            nodes = platform.nodes_for_cores(cores)
            sizes.add(nodes * platform.cores_per_node)
        return sorted(sizes)

    def plan(
        self,
        workload: WorkloadEstimate,
        resources: list[str],
        overheads: EnTKOverheadModel | None = None,
    ) -> ResourcePlan:
        """Return the best plan over all candidate (platform, size) pairs."""
        if not resources:
            raise ConfigurationError("no candidate resources given")
        best: ResourcePlan | None = None
        for name in resources:
            platform = get_platform(name)
            for cores in self.candidate_cores(workload, platform):
                estimate = estimate_ttc(workload, platform, cores, overheads)
                plan = ResourcePlan(
                    resource=name,
                    cores=cores,
                    estimated_ttc=estimate["ttc"],
                    estimated_queue_wait=estimate["queue_wait"],
                    estimated_cost_core_hours=cores * estimate["ttc"] / 3600.0,
                    details=estimate,
                )
                if best is None or self.objective(plan) < self.objective(best):
                    best = plan
        assert best is not None
        return best


class MinimizeTTCStrategy(ExecutionStrategy):
    """Fastest turnaround, cost be damned."""

    width_factors = (0.25, 0.5, 1.0)

    def objective(self, plan: ResourcePlan) -> float:
        return plan.estimated_ttc


class MinimizeCostStrategy(ExecutionStrategy):
    """Cheapest core-hours subject to finishing at all."""

    width_factors = (0.125, 0.25, 0.5, 1.0)

    def objective(self, plan: ResourcePlan) -> float:
        return plan.estimated_cost_core_hours


def select_resource(
    workload: WorkloadEstimate,
    resources: list[str],
    objective: str = "ttc",
) -> ResourcePlan:
    """Convenience wrapper: pick a strategy by objective name and plan."""
    strategies = {
        "ttc": MinimizeTTCStrategy,
        "cost": MinimizeCostStrategy,
    }
    try:
        strategy = strategies[objective]()
    except KeyError:
        raise ConfigurationError(
            f"unknown objective {objective!r} (known: {sorted(strategies)})"
        ) from None
    return strategy.plan(workload, resources)
