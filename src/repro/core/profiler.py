"""TTC decomposition in the paper's terms (Fig. 3).

The paper decomposes total time to completion into:

* **application execution time** — when tasks actually execute,
* **EnTK core overhead** — toolkit init + resource request launch/cancel
  (constant: independent of pattern, tasks, resource),
* **EnTK pattern overhead** — creating tasks and submitting them to the
  runtime (proportional to the number of tasks),
* **runtime (RP) overhead** — everything the pilot system adds: agent
  scheduling, launching, staging, control-plane latency.

:func:`breakdown_from_profile` computes all four from the session's event
trace and the pattern's unit timestamps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.pilot.states import UnitState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.execution_pattern import ExecutionPattern
    from repro.pilot.profiler import Profiler

__all__ = ["OverheadBreakdown", "breakdown_from_profile"]


@dataclass(frozen=True)
class OverheadBreakdown:
    """All durations in seconds.

    ``execution_time`` is the measure the paper plots: the union of the
    intervals during which at least one task of the pattern was executing
    (so client-side gaps between stages do not count as execution).
    ``makespan`` is first-task-start to last-task-end for reference.
    Components need not sum to TTC — overheads partially overlap execution.
    """

    ttc: float
    execution_time: float
    makespan: float
    core_overhead: float
    pattern_overhead: float
    runtime_overhead: float
    ntasks: int
    #: Seconds spent coping with injected failures (wasted execution,
    #: retry backoff, pilot resubmission downtime), summed per affected
    #: unit — aggregate core-time, may exceed TTC; 0.0 in fault-free runs.
    #: See :func:`repro.analytics.faults.fault_recovery_summary`.
    fault_overhead: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "ttc": self.ttc,
            "execution_time": self.execution_time,
            "makespan": self.makespan,
            "core_overhead": self.core_overhead,
            "pattern_overhead": self.pattern_overhead,
            "runtime_overhead": self.runtime_overhead,
            "fault_overhead": self.fault_overhead,
            "ntasks": self.ntasks,
        }


def merge_interval_length(intervals: list[tuple[float, float]]) -> float:
    """Total length of the union of ``(start, stop)`` intervals."""
    total = 0.0
    end = -float("inf")
    for start, stop in sorted(intervals):
        if stop <= end:
            continue
        total += stop - max(start, end)
        end = stop
    return total


def _span_sum(prof: "Profiler", start_name: str, stop_name: str, uid: str | None) -> float:
    """Sum of paired start/stop spans (same count assumed, in order)."""
    starts = prof.events(start_name, uid)
    stops = prof.events(stop_name, uid)
    return sum(
        stop.time - start.time for start, stop in zip(starts, stops)
    )


def breakdown_from_profile(
    prof: "Profiler", pattern: "ExecutionPattern"
) -> OverheadBreakdown:
    """Decompose one executed pattern's TTC.

    *Execution time* spans from the first task entering EXECUTING to the
    last task leaving it — with identical concurrent tasks (the paper's
    characterization workloads) this equals the per-task runtime, and in
    general it is what a user perceives as "my tasks running".
    """
    units = [u for u in pattern.units]
    if not units:
        raise ValueError(f"pattern {pattern.uid} has no units (was it run?)")

    ttc = prof.span("entk_pattern_start", "entk_pattern_stop", pattern.uid) or 0.0

    intervals: list[tuple[float, float]] = []
    for u in units:
        start = u.timestamps.get(UnitState.EXECUTING.value)
        stop = u.timestamps.get(UnitState.AGENT_STAGING_OUTPUT.value)
        if stop is None:
            # Failed mid-execution: use the final-state stamp.
            stop = u.timestamps.get(u.state.value)
        if start is not None and stop is not None:
            intervals.append((start, stop))
    execution_time = merge_interval_length(intervals)
    makespan = (
        max(stop for _, stop in intervals) - min(start for start, _ in intervals)
        if intervals
        else 0.0
    )

    # Core overhead: init + allocate + cancel client-side spans.
    core_overhead = (
        _span_sum(prof, "entk_init_start", "entk_init_stop", None)
        + _span_sum(prof, "entk_alloc_start", "entk_alloc_stop", None)
        + _span_sum(prof, "entk_cancel_start", "entk_cancel_stop", None)
    )

    # Pattern overhead: task creation (measured) plus submission charge.
    create = _span_sum(
        prof, "entk_stage_create_start", "entk_stage_create_stop", pattern.uid
    )
    charged = sum(
        ev.attrs.get("seconds", 0.0)
        for ev in prof.events("entk_pattern_overhead", pattern.uid)
    )
    pattern_overhead = create + charged

    runtime_overhead = max(ttc - execution_time - pattern_overhead, 0.0)

    # Fault-recovery share of the run (0.0 when no faults were injected).
    # Imported lazily: analytics sits above core in the layer diagram.
    from repro.analytics.faults import fault_recovery_overhead

    fault_overhead = fault_recovery_overhead(prof)

    return OverheadBreakdown(
        ttc=ttc,
        execution_time=execution_time,
        makespan=makespan,
        core_overhead=core_overhead,
        pattern_overhead=pattern_overhead,
        runtime_overhead=runtime_overhead,
        ntasks=len(units),
        fault_overhead=fault_overhead,
    )
