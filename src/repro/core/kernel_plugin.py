"""Kernel plugins: the task abstraction of Ensemble Toolkit (paper §III.B.2).

Two classes cooperate:

* :class:`Kernel` is the *user-facing* object: pick a plugin by name, set
  arguments, core count and data directives.  This mirrors the EnMD API the
  paper describes (``k = Kernel(name="md.gromacs"); k.arguments = [...]``).
* :class:`KernelPlugin` is the *developer-facing* base class: a concrete
  plugin supplies the real Python payload (executed in local mode), a cost
  model (used in simulated mode) and per-resource configuration, hiding
  "kernel-specific peculiarities across different resources" exactly as the
  paper assigns to this component.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster.platform import PlatformSpec
from repro.exceptions import KernelError
from repro.pilot.description import ComputeUnitDescription, StagingDirective

__all__ = ["Kernel", "KernelPlugin", "MachineConfig"]


@dataclass
class MachineConfig:
    """Per-resource configuration of one kernel plugin.

    On real systems this carries module loads and executable paths; here it
    carries the environment plus a *speed factor* so the same kernel can be
    modelled as faster or slower per machine (e.g. Stampede's older Xeons).
    """

    environment: dict[str, str] = field(default_factory=dict)
    pre_exec: list[str] = field(default_factory=list)
    executable: str = ""
    speed_factor: float = 1.0


class Kernel:
    """A user's handle on one computational task.

    Attributes mirror the EnMD kernel API:

    ``arguments``
        List of ``--key=value`` strings, parsed for the payload.
    ``cores`` / ``uses_mpi``
        Resource shape of the task.
    ``link_input_data`` / ``copy_input_data`` / ``copy_output_data``
        Staging directives; sources may use pattern placeholders such as
        ``$STAGE_1``, ``$PREV_SIMULATION`` or ``$SHARED`` which the
        execution plugin resolves (see
        :mod:`repro.core.execution_plugin`).  Each entry is either
        ``"path"`` or ``"path > newname"``.
    """

    def __init__(self, name: str) -> None:
        from repro.core.kernel_registry import get_kernel_plugin

        self.name = name
        self._plugin: KernelPlugin = get_kernel_plugin(name)()
        self.arguments: list[str] = []
        self.cores: int = 1
        self.uses_mpi: bool = False
        self.link_input_data: list[str] = []
        self.copy_input_data: list[str] = []
        self.copy_output_data: list[str] = []
        self.environment: dict[str, str] = {}
        #: Modelled bytes per staged file (simulated mode).
        self.data_size: int = 1024
        #: Free-form metadata propagated to the compute unit.
        self.tags: dict[str, Any] = {}

    # -- binding -----------------------------------------------------------------

    @staticmethod
    def _parse_directive(entry: str) -> tuple[str, str]:
        """Split ``"src > dst"`` (dst defaults to the source basename)."""
        if ">" in entry:
            src, _, dst = entry.partition(">")
            return src.strip(), dst.strip()
        src = entry.strip()
        return src, src.rsplit("/", 1)[-1]

    def bind(self, resource: str, platform: PlatformSpec) -> ComputeUnitDescription:
        """Translate this kernel into a compute unit description.

        Called by the execution plugin after placeholder resolution; the
        returned description carries both the real payload and the cost
        model, so it is valid in either execution mode.
        """
        self._plugin.validate(self)
        config = self._plugin.config_for(resource)
        args = dict(self._iter_args())

        input_staging = [
            StagingDirective(source=src, target=dst, action="link",
                             nbytes=self.data_size)
            for src, dst in map(self._parse_directive, self.link_input_data)
        ] + [
            StagingDirective(source=src, target=dst, action="copy",
                             nbytes=self.data_size)
            for src, dst in map(self._parse_directive, self.copy_input_data)
        ]
        output_staging = [
            StagingDirective(source=src, target=dst, action="copy",
                             nbytes=self.data_size)
            for src, dst in map(self._parse_directive, self.copy_output_data)
        ]

        plugin = self._plugin

        def payload(ctx: Any) -> Any:
            return plugin.execute(ctx)

        def duration_model(cores: int, plat: Any) -> float:
            return plugin.duration(cores, plat, args) / config.speed_factor

        description = ComputeUnitDescription(
            executable=config.executable or self.name,
            arguments=list(self.arguments),
            environment={**config.environment, **self.environment},
            cores=self.cores,
            mpi=self.uses_mpi or self.cores > 1,
            name=self.name,
            payload=payload,
            duration_model=duration_model,
            input_staging=input_staging,
            output_staging=output_staging,
            tags=dict(self.tags),
        )
        description.validate()
        return description

    def _iter_args(self):
        for arg in self.arguments:
            if arg.startswith("--") and "=" in arg:
                key, _, value = arg[2:].partition("=")
                yield key, value

    def get_arg(self, name: str, default: str | None = None) -> str | None:
        """Convenience lookup of ``--name=value`` in :attr:`arguments`."""
        return dict(self._iter_args()).get(name, default)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name} cores={self.cores} args={self.arguments}>"


class KernelPlugin:
    """Base class for concrete kernel plugins.

    Subclasses set :attr:`name`, implement :meth:`execute` (real execution)
    and :meth:`duration` (cost model) and may override
    :attr:`machine_configs` for per-resource tweaks.  ``"*"`` is the
    fallback configuration.
    """

    name: str = ""
    description: str = ""
    #: Arguments that must be present (``--arg=...``) for the kernel to bind.
    required_args: tuple[str, ...] = ()
    machine_configs: dict[str, MachineConfig] = {}

    def config_for(self, resource: str) -> MachineConfig:
        if resource in self.machine_configs:
            return self.machine_configs[resource]
        return self.machine_configs.get("*", MachineConfig())

    def validate(self, kernel: Kernel) -> None:
        present = {key for key, _ in kernel._iter_args()}
        missing = [arg for arg in self.required_args if arg not in present]
        if missing:
            raise KernelError(
                f"kernel {self.name!r} missing required arguments: "
                + ", ".join(f"--{m}=..." for m in missing)
            )

    # -- to override -----------------------------------------------------------

    def execute(self, ctx: Any) -> Any:
        """Run the task for real; *ctx* is a TaskContext."""
        raise NotImplementedError

    def duration(self, cores: int, platform: Any, args: dict[str, str]) -> float:
        """Modelled runtime in reference seconds (before speed factors)."""
        raise NotImplementedError
