"""A DAGMan/Pegasus-style generic DAG workflow, as a baseline.

The paper's §II: "DAGMan simply schedules the jobs as per the DAG where
each edge of the DAG specifies the order of precedence"; general workflow
systems make the *user* enumerate every task and every edge.  This module
implements that model faithfully — a named-task DAG executed with maximal
concurrency on the pilot runtime — and helpers that mechanically express
the paper's patterns as DAGs, so the harness can quantify the programming-
model gap (tasks + edges the user owns) while showing execution parity.

The DAG executes through the same driver machinery as the patterns, so
TTC comparisons isolate the model, not the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import networkx as nx

from repro.core.drivers.base import PatternDriver, SubmitRequest
from repro.core.drivers.registry import register_driver
from repro.core.execution_pattern import ExecutionPattern
from repro.exceptions import PatternError
from repro.pilot.states import UnitState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.kernel_plugin import Kernel
    from repro.pilot.unit import ComputeUnit

__all__ = ["DAGWorkflow", "DAGTask", "express_eop_as_dag", "express_sal_as_dag"]


@dataclass
class DAGTask:
    """One node: a kernel factory plus its explicit dependencies."""

    name: str
    kernel_factory: object  # Callable[[], Kernel]
    depends_on: list[str] = field(default_factory=list)


class DAGWorkflow(ExecutionPattern):
    """An explicit task DAG (the general-purpose workflow-system model).

    >>> dag = DAGWorkflow()
    >>> dag.add_task("a", make_kernel_a)
    >>> dag.add_task("b", make_kernel_b, depends_on=["a"])

    Staging placeholder: ``$TASK_<name>`` resolves to the named
    predecessor's sandbox (the dependency must be declared).
    """

    pattern_name = "dag"

    def __init__(self) -> None:
        super().__init__()
        self._tasks: dict[str, DAGTask] = {}

    # -- construction ------------------------------------------------------------

    def add_task(self, name, kernel_factory, depends_on=None) -> "DAGWorkflow":
        if name in self._tasks:
            raise PatternError(f"DAG task {name!r} already exists")
        self._tasks[name] = DAGTask(
            name=name,
            kernel_factory=kernel_factory,
            depends_on=list(depends_on or []),
        )
        return self

    @property
    def task_count(self) -> int:
        return len(self._tasks)

    @property
    def edge_count(self) -> int:
        """Dependency edges the user had to declare explicitly."""
        return sum(len(task.depends_on) for task in self._tasks.values())

    def graph(self) -> "nx.DiGraph":
        graph = nx.DiGraph()
        graph.add_nodes_from(self._tasks)
        for task in self._tasks.values():
            for dependency in task.depends_on:
                graph.add_edge(dependency, task.name)
        return graph

    def validate(self) -> None:
        super().validate()
        if not self._tasks:
            raise PatternError("DAG has no tasks")
        for task in self._tasks.values():
            for dependency in task.depends_on:
                if dependency not in self._tasks:
                    raise PatternError(
                        f"task {task.name!r} depends on unknown task "
                        f"{dependency!r}"
                    )
        if not nx.is_directed_acyclic_graph(self.graph()):
            cycle = nx.find_cycle(self.graph())
            raise PatternError(f"workflow graph has a cycle: {cycle}")

    # -- used by the driver ----------------------------------------------------------

    def get_task(self, name: str) -> DAGTask:
        return self._tasks[name]

    def task_names(self) -> list[str]:
        return list(self._tasks)


class DAGWorkflowDriver(PatternDriver):
    """Executes a :class:`DAGWorkflow` with maximal concurrency.

    A task is submitted the moment its last dependency finishes; a failed
    task cancels (never submits) its whole descendant cone but leaves
    independent branches running — DAGMan's "as much as possible"
    semantics.
    """

    def __init__(self, pattern, handle) -> None:
        super().__init__(pattern, handle)
        self._graph = None
        self._remaining_deps: dict[str, int] = {}
        self._task_uid: dict[str, str] = {}
        self._pending_count = 0

    def start(self) -> None:
        pattern = self.pattern
        self._graph = pattern.graph()
        self._remaining_deps = {
            name: self._graph.in_degree(name) for name in pattern.task_names()
        }
        self._pending_count = pattern.task_count
        roots = [name for name, deps in self._remaining_deps.items() if deps == 0]
        self._submit_tasks(roots)

    def _submit_tasks(self, names: list[str]) -> None:
        requests = []
        for name in names:
            task = self.pattern.get_task(name)
            kernel: "Kernel" = task.kernel_factory()
            placeholders = {
                f"TASK_{dependency}": self._task_uid[dependency]
                for dependency in task.depends_on
            }
            requests.append(
                SubmitRequest(
                    kernel=kernel,
                    tags={"dag_task": name},
                    placeholders=placeholders,
                )
            )
        units = self.submit(requests)
        for name, unit in zip(names, units):
            self._task_uid[name] = unit.uid

    def on_unit_retried(self, old, new) -> None:
        name = old.description.tags.get("dag_task")
        if name is not None:
            self._task_uid[name] = new.uid

    def on_unit_final(self, unit: "ComputeUnit") -> None:
        tags = unit.description.tags
        if tags.get("pattern") != self.pattern.uid:
            return
        name = tags["dag_task"]
        with self._lock:
            self._pending_count -= 1
            if unit.state is not UnitState.DONE:
                # Prune the descendant cone: those tasks will never run.
                descendants = nx.descendants(self._graph, name)
                not_submitted = [
                    d for d in descendants if d not in self._task_uid
                ]
                for d in not_submitted:
                    self._remaining_deps[d] = -1  # poisoned
                self._pending_count -= len(not_submitted)
                return
            ready = []
            for successor in self._graph.successors(name):
                if self._remaining_deps[successor] < 0:
                    continue
                self._remaining_deps[successor] -= 1
                if self._remaining_deps[successor] == 0:
                    ready.append(successor)
        if unit.state is UnitState.DONE and ready:
            self._submit_tasks(ready)

    @property
    def done(self) -> bool:
        with self._lock:
            return self._pending_count <= 0


register_driver(DAGWorkflow, DAGWorkflowDriver)


# ---------------------------------------------------------------------------
# Mechanical translations of the paper's patterns into the DAG model
# ---------------------------------------------------------------------------


def express_eop_as_dag(eop_pattern) -> DAGWorkflow:
    """Rewrite an EnsembleOfPipelines instance as an explicit DAG.

    What the pattern gives for free, the DAG user must enumerate:
    N*M tasks and N*(M-1) precedence edges, plus hand-rewritten
    ``$STAGE_k`` placeholders.
    """
    dag = DAGWorkflow()
    for instance in range(1, eop_pattern.ensemble_size + 1):
        for stage in range(1, eop_pattern.pipeline_size + 1):
            name = f"p{instance}_s{stage}"
            depends = [f"p{instance}_s{stage - 1}"] if stage > 1 else []

            def factory(s=stage, i=instance):
                kernel = eop_pattern.get_stage(s, i)
                kernel.link_input_data = [
                    entry.replace(f"$STAGE_{s - 1}", f"$TASK_p{i}_s{s - 1}")
                    for entry in kernel.link_input_data
                ]
                kernel.copy_input_data = [
                    entry.replace(f"$STAGE_{s - 1}", f"$TASK_p{i}_s{s - 1}")
                    for entry in kernel.copy_input_data
                ]
                return kernel

            dag.add_task(name, factory, depends_on=depends)
    return dag


def express_sal_as_dag(sal_pattern) -> DAGWorkflow:
    """Rewrite a SimulationAnalysisLoop instance as an explicit DAG.

    The SAL barriers become dense edge sets: every analysis of iteration
    *t* depends on every simulation of *t*; every simulation of *t+1*
    depends on every analysis of *t* — O(iterations * N * M) edges.
    """
    dag = DAGWorkflow()
    for iteration in range(1, sal_pattern.iterations + 1):
        for instance in range(1, sal_pattern.simulation_instances + 1):
            depends = (
                [
                    f"i{iteration - 1}_a{a}"
                    for a in range(1, sal_pattern.analysis_instances + 1)
                ]
                if iteration > 1
                else []
            )

            def sim_factory(t=iteration, i=instance):
                return sal_pattern.get_simulation(t, i)

            dag.add_task(f"i{iteration}_s{instance}", sim_factory,
                         depends_on=depends)
        for instance in range(1, sal_pattern.analysis_instances + 1):
            depends = [
                f"i{iteration}_s{s}"
                for s in range(1, sal_pattern.simulation_instances + 1)
            ]

            def ana_factory(t=iteration, i=instance):
                kernel = sal_pattern.get_analysis(t, i)
                rewritten = []
                for entry in kernel.link_input_data:
                    for s in range(1, sal_pattern.simulation_instances + 1):
                        entry = entry.replace(
                            f"$SIMULATION_{t}_{s}", f"$TASK_i{t}_s{s}"
                        )
                    rewritten.append(entry)
                kernel.link_input_data = rewritten
                return kernel

            dag.add_task(f"i{iteration}_a{instance}", ana_factory,
                         depends_on=depends)
    return dag
