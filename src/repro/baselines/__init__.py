"""Baseline systems the paper argues against (§I, §II).

Two comparison points frame the paper's pitch:

* **scripting** — one batch job per task; modelled directly in
  :func:`repro.experiments.ablations.pilot_vs_batch`.
* **general-purpose workflow systems** (Pegasus, DAGMan, ...) — express
  everything as a task DAG with explicit dependencies.
  :class:`~repro.baselines.dag.DAGWorkflow` implements that model on the
  same pilot runtime, so the comparison isolates the *programming model*:
  what the user must write, and what the system must track, to run an
  ensemble application.
"""

from repro.baselines.dag import DAGWorkflow, express_eop_as_dag, express_sal_as_dag

__all__ = ["DAGWorkflow", "express_eop_as_dag", "express_sal_as_dag"]
