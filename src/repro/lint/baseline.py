"""Committed baseline of grandfathered findings.

The baseline is a JSON file mapping a line-independent finding key (see
:attr:`repro.lint.model.Finding.baseline_key`) to an allowed *count*.  A run
suppresses up to that many matching findings; anything beyond the count — a
new instance of an old problem — is reported.  Fixing a grandfathered finding
never breaks the build (stale allowances are reported separately so they can
be pruned with ``--write-baseline``).
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path

from repro.lint.model import Finding

__all__ = ["Baseline", "apply_baseline"]

_FORMAT_VERSION = 1


class Baseline:
    """Allowed finding counts, loaded from / saved to JSON."""

    def __init__(self, counts: dict[str, int] | None = None) -> None:
        self.counts: dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        counts = data.get("findings", {})
        if not all(isinstance(v, int) and v > 0 for v in counts.values()):
            raise ValueError(f"corrupt baseline counts in {path}")
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(Counter(f.baseline_key for f in findings))

    def save(self, path: Path) -> None:
        payload = {
            "version": _FORMAT_VERSION,
            "comment": (
                "Grandfathered repro.lint findings. Regenerate with "
                "`python -m repro lint --write-baseline`; shrink, never grow."
            ),
            "findings": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")


def apply_baseline(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], dict[str, int]]:
    """Split *findings* into (new, grandfathered) and report stale allowances.

    Findings are matched oldest-line-first so the reported "new" instances
    are the ones furthest from the grandfathered code.
    """
    remaining = dict(baseline.counts)
    new: list[Finding] = []
    old: list[Finding] = []
    for finding in sorted(findings):
        key = finding.baseline_key
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            old.append(finding)
        else:
            new.append(finding)
    stale = {k: v for k, v in remaining.items() if v > 0}
    return new, old, stale
