"""Lint configuration, from ``[tool.repro.lint]`` in ``pyproject.toml``.

Recognised keys::

    [tool.repro.lint]
    paths    = ["src/repro"]           # default scan roots
    select   = ["DET", "DC", "SM", "EVT"]  # rule ids or family prefixes
    exclude  = ["src/repro.egg-info"]  # path prefixes to skip
    baseline = "lint-baseline.json"    # grandfathered findings (optional)

Python 3.11+ parses with :mod:`tomllib`; on 3.10 (no tomllib, and the CI
image does not ship ``tomli``) a minimal single-section fallback parser
handles exactly the subset above — quoted strings and flat string arrays.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LintConfig", "load_config", "find_pyproject"]

_SECTION = ("tool", "repro", "lint")


@dataclass
class LintConfig:
    paths: list[str] = field(default_factory=lambda: ["src"])
    select: list[str] | None = None
    exclude: list[str] = field(default_factory=list)
    baseline: str | None = None
    #: Directory paths/baseline are relative to (pyproject's directory).
    root: Path = field(default_factory=Path.cwd)

    def baseline_path(self) -> Path | None:
        if self.baseline is None:
            return None
        path = Path(self.baseline)
        return path if path.is_absolute() else self.root / path


def find_pyproject(start: Path) -> Path | None:
    """Nearest ``pyproject.toml`` at or above *start*."""
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


def load_config(pyproject: Path | None) -> LintConfig:
    """Config from *pyproject* (or defaults when ``None``/section absent)."""
    if pyproject is None or not pyproject.is_file():
        return LintConfig()
    section = _read_section(pyproject)
    config = LintConfig(root=pyproject.parent)
    if not section:
        return config
    if "paths" in section:
        config.paths = _string_list(section["paths"], "paths")
    if "select" in section:
        config.select = _string_list(section["select"], "select")
    if "exclude" in section:
        config.exclude = _string_list(section["exclude"], "exclude")
    if "baseline" in section:
        if not isinstance(section["baseline"], str):
            raise ValueError("[tool.repro.lint] baseline must be a string")
        config.baseline = section["baseline"]
    return config


def _string_list(value: object, key: str) -> list[str]:
    if not (isinstance(value, list) and all(isinstance(v, str) for v in value)):
        raise ValueError(f"[tool.repro.lint] {key} must be a list of strings")
    return list(value)


def _read_section(pyproject: Path) -> dict:
    text = pyproject.read_text()
    try:
        import tomllib
    except ImportError:  # Python 3.10: minimal fallback, see module docstring
        return _fallback_parse(text)
    data = tomllib.loads(text)
    for part in _SECTION:
        data = data.get(part, {})
        if not isinstance(data, dict):
            return {}
    return data


_KEY_RE = re.compile(r"^\s*([A-Za-z_][\w-]*)\s*=\s*(.+?)\s*$")


def _fallback_parse(text: str) -> dict:
    """Parse only ``[tool.repro.lint]`` from *text*: strings + string arrays."""
    section: dict = {}
    in_section = False
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip() if not raw.strip().startswith("#") else ""
        if not line:
            continue
        if line.startswith("["):
            in_section = line == "[%s]" % ".".join(_SECTION)
            continue
        if not in_section:
            continue
        match = _KEY_RE.match(line)
        if not match:
            continue
        key, value = match.groups()
        if value.startswith("[") and value.endswith("]"):
            section[key] = re.findall(r'"([^"]*)"', value)
        elif value.startswith('"') and value.endswith('"'):
            section[key] = value[1:-1]
    return section
