"""Per-file analysis context shared by every rule.

Parsing, line splitting and import resolution happen once per file here, so
individual rules stay small AST visitors.  The :class:`ImportMap` answers the
question every determinism rule asks — "what fully-qualified name does this
call refer to?" — by tracking ``import x``, ``import x as y`` and
``from x import y [as z]`` bindings at any nesting level.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["FileContext", "ImportMap", "build_context"]


class ImportMap:
    """Local name -> fully-qualified dotted path, from a module's imports."""

    def __init__(self) -> None:
        self._names: dict[str, str] = {}

    def collect(self, tree: ast.AST) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".", 1)[0]
                    # `import a.b` binds `a`; `import a.b as c` binds the
                    # full path to `c`.
                    target = alias.name if alias.asname else local
                    self._names[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.level:  # relative import: package-local, never stdlib
                    continue
                module = node.module or ""
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._names[local] = f"{module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Dotted path of a Name/Attribute chain, or ``None``.

        ``np.random.seed`` with ``import numpy as np`` resolves to
        ``"numpy.random.seed"``.  Chains rooted in calls or subscripts are
        not resolvable and return ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self._names.get(parts[0])
        if root is not None:
            parts[0] = root
        return ".".join(parts)


@dataclass
class FileContext:
    """Everything a rule needs to analyse one file."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    imports: ImportMap = field(default_factory=ImportMap)

    def line_text(self, lineno: int) -> str:
        """Physical source line (1-based); empty string when out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


def build_context(source: str, path: Path, relpath: str) -> FileContext:
    """Parse *source* and assemble the shared context (raises SyntaxError)."""
    tree = ast.parse(source, filename=relpath)
    ctx = FileContext(
        path=path,
        relpath=relpath,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    ctx.imports.collect(tree)
    return ctx
