"""Data model of the static-analysis pass.

A :class:`Finding` is one diagnostic anchored to a file and line.  Its
:attr:`~Finding.baseline_key` deliberately excludes the line number so that
grandfathered findings stay matched when unrelated edits shift code around;
the baseline stores *counts* per key instead (see :mod:`repro.lint.baseline`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Finding"]


@dataclass(frozen=True, order=True, slots=True)
class Finding:
    """One diagnostic produced by a lint rule."""

    file: str
    line: int
    col: int
    rule_id: str
    message: str
    #: Hint appended to the text report, e.g. the sanctioned replacement API.
    hint: str = field(default="", compare=False)

    @property
    def baseline_key(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.file}::{self.rule_id}::{self.message}"

    def to_dict(self) -> dict:
        out = {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule_id": self.rule_id,
            "message": self.message,
        }
        if self.hint:
            out["hint"] = self.hint
        return out

    def render(self) -> str:
        text = f"{self.file}:{self.line}:{self.col}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" [{self.hint}]"
        return text
