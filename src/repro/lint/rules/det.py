"""DET — determinism-hazard rules.

Every figure in this reproduction is only comparable across runs because the
simulator is bit-deterministic under a seed.  These rules catch the ways that
property silently erodes: wall-clock reads, global RNG state, OS entropy, and
iteration over hash-ordered collections.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.model import Finding
from repro.lint.registry import Rule, register_rule

__all__ = [
    "WallClockRule",
    "GlobalRandomRule",
    "EntropySourceRule",
    "UnorderedIterationRule",
]

# Calls that read the machine's clock.  The sanctioned path is the injected
# `repro.utils.timing.Clock` (WallClock locally, VirtualClock under the DES).
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

# numpy.random attributes that do NOT touch the module-global RandomState.
_NUMPY_RANDOM_OK = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",  # a *seeded instance* is injectable; the global fns are not
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

# stdlib random attributes that construct an injectable generator rather than
# drawing from (or reseeding) the hidden module-global Random instance.
_STDLIB_RANDOM_OK = frozenset({"Random"})

_ENTROPY_CALLS = frozenset(
    {
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)


def _iter_calls(ctx: FileContext) -> Iterator[tuple[ast.Call, str]]:
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Call):
            dotted = ctx.imports.resolve(node.func)
            if dotted:
                yield node, dotted


@register_rule
class WallClockRule(Rule):
    id = "DET001"
    summary = "wall-clock read; time must come from the injected Clock"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, dotted in _iter_calls(ctx):
            if dotted in _WALL_CLOCK_CALLS:
                yield Finding(
                    ctx.relpath,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    f"wall-clock call {dotted}()",
                    hint="read time via repro.utils.timing.Clock",
                )


@register_rule
class GlobalRandomRule(Rule):
    id = "DET002"
    summary = "global RNG state; randomness must come from injected streams"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, dotted in _iter_calls(ctx):
            if dotted.startswith("random."):
                attr = dotted.split(".", 1)[1]
                if "." not in attr and attr not in _STDLIB_RANDOM_OK | {
                    "SystemRandom"  # reported by DET003, not here
                }:
                    yield Finding(
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"global stdlib RNG call {dotted}()",
                        hint="draw from a repro.eventsim.RandomStreams stream",
                    )
            elif dotted.startswith("numpy.random."):
                attr = dotted.split("numpy.random.", 1)[1]
                if "." not in attr and attr not in _NUMPY_RANDOM_OK:
                    yield Finding(
                        ctx.relpath,
                        node.lineno,
                        node.col_offset,
                        self.id,
                        f"numpy global RNG call {dotted}()",
                        hint="use numpy.random.default_rng or RandomStreams",
                    )


@register_rule
class EntropySourceRule(Rule):
    id = "DET003"
    summary = "OS entropy source; ids and draws must be seed-derived"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node, dotted in _iter_calls(ctx):
            if dotted in _ENTROPY_CALLS or dotted.startswith("secrets."):
                yield Finding(
                    ctx.relpath,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    f"OS entropy call {dotted}()",
                    hint="use repro.utils.ids.generate_id or a seeded stream",
                )


def _is_set_expr(node: ast.expr) -> bool:
    """Syntactically a set: literal, comprehension, set()/frozenset() call,
    or a set-algebra method call (.union/.intersection/...)."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in (
            "union",
            "intersection",
            "difference",
            "symmetric_difference",
        ):
            return True
    return False


@register_rule
class UnorderedIterationRule(Rule):
    id = "DET004"
    summary = "iteration over a set in hash order; wrap in sorted(...)"

    _MESSAGE = "iteration over a set expression in hash order"
    _HINT = "wrap in sorted(...) before iterating"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For) and _is_set_expr(node.iter):
                yield self._finding(ctx, node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self._finding(ctx, gen.iter)
            elif isinstance(node, ast.Call):
                # Order-sensitive consumers materialising a set directly.
                if isinstance(node.func, ast.Name) and node.func.id in (
                    "list",
                    "tuple",
                    "enumerate",
                ):
                    for arg in node.args[:1]:
                        if _is_set_expr(arg):
                            yield self._finding(ctx, arg)

    def _finding(self, ctx: FileContext, node: ast.expr) -> Finding:
        return Finding(
            ctx.relpath,
            node.lineno,
            node.col_offset,
            self.id,
            self._MESSAGE,
            hint=self._HINT,
        )
