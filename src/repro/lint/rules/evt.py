"""EVT — event-callback hygiene rules.

Callbacks handed to :meth:`repro.eventsim.Simulator.schedule` outlive the
statement that created them.  A lambda that closes over a loop variable sees
the variable's *final* value when the event fires — the classic late-binding
bug, which in a DES silently rewires events to the wrong node/unit.  The
sanctioned idiom binds at definition time: ``lambda n=node: self._fail(n)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.model import Finding
from repro.lint.registry import Rule, register_rule

__all__ = ["LateBindingCallbackRule", "MutableDefaultRule"]

_SCHEDULE_METHODS = frozenset({"schedule", "schedule_at"})


def _lambda_free_names(node: ast.Lambda) -> set[str]:
    params = {a.arg for a in (
        node.args.posonlyargs
        + node.args.args
        + node.args.kwonlyargs
        + ([node.args.vararg] if node.args.vararg else [])
        + ([node.args.kwarg] if node.args.kwarg else [])
    )}
    loads: set[str] = set()
    for sub in ast.walk(node.body):
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
            loads.add(sub.id)
    return loads - params


def _loop_targets(node: ast.expr | ast.stmt) -> set[str]:
    names: set[str] = set()
    targets: list[ast.expr] = []
    if isinstance(node, (ast.For, ast.AsyncFor)):
        targets.append(node.target)
    elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        targets.extend(gen.target for gen in node.generators)
    for target in targets:
        for sub in ast.walk(target):
            if isinstance(sub, ast.Name):
                names.add(sub.id)
    return names


@register_rule
class LateBindingCallbackRule(Rule):
    id = "EVT001"
    summary = "schedule() lambda captures a loop variable without binding it"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._visit(ctx, ctx.tree, frozenset())

    def _visit(
        self, ctx: FileContext, node: ast.AST, loop_vars: frozenset[str]
    ) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            child_vars = loop_vars | frozenset(_loop_targets(child)) if isinstance(
                child,
                (ast.For, ast.AsyncFor, ast.ListComp, ast.SetComp, ast.DictComp,
                 ast.GeneratorExp),
            ) else loop_vars
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr in _SCHEDULE_METHODS
            ):
                for arg in list(child.args) + [kw.value for kw in child.keywords]:
                    if isinstance(arg, ast.Lambda):
                        captured = sorted(_lambda_free_names(arg) & child_vars)
                        for name in captured:
                            yield Finding(
                                ctx.relpath,
                                arg.lineno,
                                arg.col_offset,
                                self.id,
                                f"callback lambda captures loop variable "
                                f"{name!r} by reference (late binding)",
                                hint=f"bind at definition: `lambda {name}={name}: ...`",
                            )
            yield from self._visit(ctx, child, child_vars)


@register_rule
class MutableDefaultRule(Rule):
    id = "EVT002"
    summary = "mutable default argument shared across calls"

    _MUTABLE_CALLS = frozenset({"list", "dict", "set", "bytearray", "defaultdict"})

    def _is_mutable(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            name = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else ""
            )
            return name in self._MUTABLE_CALLS
        return False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    label = getattr(node, "name", "<lambda>")
                    yield Finding(
                        ctx.relpath,
                        default.lineno,
                        default.col_offset,
                        self.id,
                        f"mutable default argument in {label}()",
                        hint="default to None (or field(default_factory=...))",
                    )
