"""SM — state-machine conformance rules.

The pilot/unit lifecycles are defined once, as edge tables in
:mod:`repro.pilot.states`; the paper's overhead decomposition (Fig. 3) hangs
durations off exactly these transitions.  These rules cross-check every
*call site* against those tables statically:

* SM001 — reference to an enum member that does not exist;
* SM002 — a transition provably illegal under the edge table, inferred from
  straight-line consecutive ``advance()`` calls on one receiver or from an
  enclosing ``if x.state is State.Y`` guard;
* SM003 — state assigned directly (``x._state = ...``), bypassing the
  validating ``advance()`` path;
* SM004 — a table state that no scanned call site ever produces (dead state
  or missing lifecycle code), reported once per run.
"""

from __future__ import annotations

import ast
import enum as _enum
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.model import Finding
from repro.lint.registry import Rule, register_rule

__all__ = [
    "STATE_MACHINES",
    "UnknownStateMemberRule",
    "IllegalTransitionRule",
    "DirectStateAssignmentRule",
    "UnproducedStateRule",
]


def _machines() -> dict[str, tuple[type[_enum.Enum], dict]]:
    """Enum-class-name -> (enum, edge table).  Late import: the lint package
    must stay importable even if the runtime layers are being refactored."""
    from repro.pilot.states import _PILOT_EDGES, _UNIT_EDGES, PilotState, UnitState

    return {
        "PilotState": (PilotState, _PILOT_EDGES),
        "UnitState": (UnitState, _UNIT_EDGES),
    }


#: Public alias for docs/tests; resolved lazily by the rules themselves.
STATE_MACHINES = _machines


def _state_ref(node: ast.expr) -> tuple[str, str] | None:
    """``UnitState.DONE`` -> ("UnitState", "DONE")."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _machines()
    ):
        return node.value.id, node.attr
    return None


def _advance_call(node: ast.expr) -> tuple[str, str, str, ast.Call] | None:
    """``recv.advance(UnitState.DONE)`` -> (recv_src, machine, member, call)."""
    if not (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "advance"
        and len(node.args) == 1
    ):
        return None
    ref = _state_ref(node.args[0])
    if ref is None:
        return None
    machine, member = ref
    recv = ast.unparse(node.func.value)
    return recv, machine, member, node


def _mentions_name(stmt: ast.stmt, recv: str) -> bool:
    """Does *stmt* mention the receiver expression's root name at all?"""
    root = recv.split(".", 1)[0].split("[", 1)[0]
    for node in ast.walk(stmt):
        if isinstance(node, ast.Name) and node.id == root:
            return True
    return False


@register_rule
class UnknownStateMemberRule(Rule):
    id = "SM001"
    summary = "reference to a state-enum member that does not exist"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        machines = _machines()
        for node in ast.walk(ctx.tree):
            ref = _state_ref(node) if isinstance(node, ast.Attribute) else None
            if ref is None:
                continue
            machine, member = ref
            enum_cls, _ = machines[machine]
            if not hasattr(enum_cls, member):
                yield Finding(
                    ctx.relpath,
                    node.lineno,
                    node.col_offset,
                    self.id,
                    f"{machine} has no member {member!r}",
                    hint="members: " + ", ".join(m.name for m in enum_cls),
                )


@register_rule
class IllegalTransitionRule(Rule):
    id = "SM002"
    summary = "state transition absent from the legal-edge table"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan_block(ctx, node.body, {})

    # -- block-level dataflow ------------------------------------------------

    def _scan_block(
        self, ctx: FileContext, stmts: list[ast.stmt], known: dict
    ) -> Iterator[Finding]:
        """Track the last known state per receiver through straight-line code.

        *known* maps ``(machine, recv_src)`` to the member name the receiver
        was last proven to be in.  Any statement that mentions a receiver
        without being a recognised advance erases that knowledge (a helper
        call may transition the entity elsewhere).
        """
        machines = _machines()
        for stmt in stmts:
            adv = (
                _advance_call(stmt.value)
                if isinstance(stmt, ast.Expr)
                else None
            )
            if adv is not None:
                recv, machine, member, call = adv
                enum_cls, edges = machines[machine]
                if not hasattr(enum_cls, member):
                    continue  # SM001's finding
                prev = known.get((machine, recv))
                if prev is not None:
                    allowed = edges[enum_cls[prev]]
                    if enum_cls[member] not in allowed:
                        yield Finding(
                            ctx.relpath,
                            call.lineno,
                            call.col_offset,
                            self.id,
                            f"illegal {machine} transition {prev} -> {member}",
                            hint="legal targets: "
                            + (", ".join(sorted(s.name for s in allowed)) or "none (final state)"),
                        )
                known[(machine, recv)] = member
                continue

            if isinstance(stmt, ast.If):
                guard = self._state_guard(stmt.test)
                body_known = dict(known)
                if guard is not None:
                    body_known[(guard[0], guard[1])] = guard[2]
                yield from self._scan_block(ctx, stmt.body, body_known)
                else_known = dict(known)
                if guard is not None:
                    else_known.pop((guard[0], guard[1]), None)
                yield from self._scan_block(ctx, stmt.orelse, else_known)
                known.clear()
                continue

            if isinstance(
                stmt,
                (
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.With,
                    ast.AsyncWith,
                    ast.Try,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                for field_name in ("body", "orelse", "finalbody"):
                    inner = getattr(stmt, field_name, None)
                    if inner:
                        yield from self._scan_block(ctx, inner, {})
                for handler in getattr(stmt, "handlers", []):
                    yield from self._scan_block(ctx, handler.body, {})
                known.clear()
                continue

            # Plain statement: drop knowledge of any receiver it touches.
            for key in list(known):
                if _mentions_name(stmt, key[1]):
                    del known[key]

    @staticmethod
    def _state_guard(test: ast.expr) -> tuple[str, str, str] | None:
        """``recv.state is Machine.MEMBER`` -> (machine, recv_src, member)."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.Eq))
        ):
            return None
        left, right = test.left, test.comparators[0]
        ref = _state_ref(right)
        if ref is None:
            return None
        if not (
            isinstance(left, ast.Attribute)
            and left.attr in ("state", "_state")
        ):
            return None
        machine, member = ref
        enum_cls, _ = _machines()[machine]
        if not hasattr(enum_cls, member):
            return None
        return machine, ast.unparse(left.value), member


@register_rule
class DirectStateAssignmentRule(Rule):
    id = "SM003"
    summary = "state assigned directly instead of through advance()"

    _ALLOWED_FUNCS = frozenset({"advance", "__init__"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.relpath.replace("\\", "/").endswith("pilot/states.py"):
            return
        yield from self._scan(ctx, ctx.tree, in_allowed=False)

    def _scan(self, ctx: FileContext, node: ast.AST, in_allowed: bool) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._scan(
                    ctx, child, in_allowed=child.name in self._ALLOWED_FUNCS
                )
                continue
            if isinstance(child, ast.Assign) and not in_allowed:
                ref = _state_ref(child.value)
                if ref is not None:
                    for target in child.targets:
                        if isinstance(target, ast.Attribute) and target.attr in (
                            "state",
                            "_state",
                        ):
                            yield Finding(
                                ctx.relpath,
                                child.lineno,
                                child.col_offset,
                                self.id,
                                f"direct state assignment to .{target.attr} "
                                f"bypasses advance() validation",
                                hint="call .advance(%s.%s) instead" % ref,
                            )
            yield from self._scan(ctx, child, in_allowed)


@register_rule
class UnproducedStateRule(Rule):
    id = "SM004"
    summary = "edge-table state with no producing call site in scanned paths"

    #: Module defining the edge tables; coverage is only meaningful when a
    #: scan includes it (a partial scan legitimately misses producers).
    _DEFINING_MODULE = "pilot/states.py"

    def __init__(self) -> None:
        self._produced: dict[str, set[str]] = {}
        self._states_module: str | None = None

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.relpath.replace("\\", "/").endswith(self._DEFINING_MODULE):
            self._states_module = ctx.relpath
        for node in ast.walk(ctx.tree):
            adv = _advance_call(node) if isinstance(node, ast.Call) else None
            if adv is not None:
                _, machine, member, _ = adv
                self._note(machine, member, ctx.relpath)
                continue
            if isinstance(node, ast.Assign):
                ref = _state_ref(node.value)
                if ref is not None and any(
                    isinstance(t, ast.Attribute) and t.attr in ("state", "_state")
                    for t in node.targets
                ):
                    self._note(ref[0], ref[1], ctx.relpath)
        return iter(())

    def _note(self, machine: str, member: str, relpath: str) -> None:
        enum_cls, _ = _machines()[machine]
        if hasattr(enum_cls, member):
            self._produced.setdefault(machine, set()).add(member)

    def finalize(self) -> Iterator[Finding]:
        if self._states_module is None:
            # The defining module was outside the scan: coverage cannot be
            # judged from a partial view, stay silent.
            return
        machines = _machines()
        for machine, (enum_cls, edges) in sorted(machines.items()):
            produced = self._produced.get(machine)
            if not produced:
                continue
            reachable = {s.name for targets in edges.values() for s in targets}
            for name in sorted(reachable - produced):
                yield Finding(
                    self._states_module,
                    1,
                    0,
                    self.id,
                    f"{machine}.{name} is reachable in the edge table but no "
                    f"scanned call site produces it",
                    hint="add the missing advance() or prune the table edge",
                )
