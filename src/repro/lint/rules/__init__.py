"""Built-in rule families.

Importing this package registers every rule with
:mod:`repro.lint.registry`.  Families:

* ``DET`` — determinism hazards (wall clock, global RNG, entropy, hash-order
  iteration);
* ``DC``  — dataclass field discipline;
* ``SM``  — state-machine conformance against the edge tables in
  :mod:`repro.pilot.states`;
* ``EVT`` — event-callback hygiene.
"""

from repro.lint.rules import dc, det, evt, sm  # noqa: F401  (register rules)

__all__ = ["dc", "det", "evt", "sm"]
