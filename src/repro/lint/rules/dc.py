"""DC — dataclass field-discipline rules.

PR 1 shipped (and had to hot-fix) a ``FaultModel._rng`` attribute that was
assigned inside methods but never declared as a field: invisible to
``repr``/``eq``, broken under ``frozen=True``, and surprising to every
reader of the class header.  DC001 catches that class of bug statically.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.model import Finding
from repro.lint.registry import Rule, register_rule

__all__ = ["UndeclaredDataclassFieldRule"]


def _is_dataclass_decorator(node: ast.expr) -> bool:
    target = node.func if isinstance(node, ast.Call) else node
    if isinstance(target, ast.Name):
        return target.id == "dataclass"
    if isinstance(target, ast.Attribute):
        return target.attr == "dataclass"
    return False


def _declared_names(cls: ast.ClassDef) -> set[str]:
    """Class-level annotated names (fields and ClassVars) plus plain assigns."""
    names: set[str] = set()
    for stmt in cls.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            names.add(stmt.target.id)
        elif isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _self_name(fn: ast.FunctionDef) -> str | None:
    args = fn.args.posonlyargs + fn.args.args
    if not args:
        return None
    decorators = {
        d.id for d in fn.decorator_list if isinstance(d, ast.Name)
    }
    if "staticmethod" in decorators or "classmethod" in decorators:
        return None
    return args[0].arg


@register_rule
class UndeclaredDataclassFieldRule(Rule):
    id = "DC001"
    summary = "attribute assigned in a @dataclass method but never declared"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            if not any(_is_dataclass_decorator(d) for d in cls.decorator_list):
                continue
            declared = _declared_names(cls)
            reported: set[str] = set()
            for fn in cls.body:
                if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                self_name = _self_name(fn)
                if self_name is None:
                    continue
                for node in ast.walk(fn):
                    target: ast.expr | None = None
                    if isinstance(node, ast.Assign):
                        for t in node.targets:
                            yield from self._check_target(
                                ctx, cls, t, self_name, declared, reported
                            )
                        continue
                    if isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                        target = node.target
                    if target is not None:
                        yield from self._check_target(
                            ctx, cls, target, self_name, declared, reported
                        )

    def _check_target(
        self,
        ctx: FileContext,
        cls: ast.ClassDef,
        target: ast.expr,
        self_name: str,
        declared: set[str],
        reported: set[str],
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                yield from self._check_target(
                    ctx, cls, elt, self_name, declared, reported
                )
            return
        if not (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == self_name
        ):
            return
        attr = target.attr
        if attr in declared or attr in reported or attr.startswith("__"):
            return
        reported.add(attr)
        yield Finding(
            ctx.relpath,
            target.lineno,
            target.col_offset,
            self.id,
            f"dataclass {cls.name} assigns undeclared attribute self.{attr}",
            hint="declare it: `%s: T = field(init=False, ...)`" % attr,
        )
