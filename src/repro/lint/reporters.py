"""Text and JSON renderings of a :class:`~repro.lint.engine.LintResult`."""

from __future__ import annotations

import json
from collections import Counter

from repro.lint.engine import LintResult

__all__ = ["render_text", "render_json"]


def render_text(result: LintResult, *, verbose: bool = False) -> str:
    lines = [finding.render() for finding in result.findings]
    if result.stale_baseline:
        lines.append("")
        lines.append(
            f"note: {sum(result.stale_baseline.values())} stale baseline "
            "allowance(s) — the underlying findings are gone; regenerate "
            "with --write-baseline:"
        )
        lines.extend(f"  {key} (x{count})" for key, count in
                     sorted(result.stale_baseline.items()))
    summary = (
        f"{len(result.findings)} finding(s) in {result.files_scanned} file(s)"
        f" ({len(result.grandfathered)} baselined, {result.suppressed} noqa-suppressed)"
    )
    if lines:
        lines.append("")
    lines.append(summary)
    if verbose and result.findings:
        by_rule = Counter(f.rule_id for f in result.findings)
        lines.append(
            "by rule: "
            + ", ".join(f"{rid}={n}" for rid, n in sorted(by_rule.items()))
        )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "version": 1,
        "files_scanned": result.files_scanned,
        "summary": {
            "new": len(result.findings),
            "baselined": len(result.grandfathered),
            "noqa_suppressed": result.suppressed,
            "stale_baseline": sum(result.stale_baseline.values()),
        },
        "findings": [f.to_dict() for f in result.findings],
    }
    return json.dumps(payload, indent=2)
