"""repro.lint — AST-based determinism & state-machine static analysis.

A from-scratch, stdlib-``ast`` lint framework purpose-built for this
reproduction: the experiments are only trustworthy while the simulator stays
bit-deterministic under a seed and while pilot/unit lifecycles respect the
edge tables in :mod:`repro.pilot.states`.  ``python -m repro lint`` enforces
both statically; see ``docs/static_analysis.md`` for the rule catalogue.

Public surface:

* :class:`~repro.lint.model.Finding` — one diagnostic;
* :func:`~repro.lint.engine.lint_paths` / :func:`~repro.lint.engine.lint_source`
  — run the pipeline over files or an in-memory snippet;
* :class:`~repro.lint.registry.Rule` + :func:`~repro.lint.registry.register_rule`
  — extend with new rules;
* :class:`~repro.lint.baseline.Baseline` — grandfathered-finding store;
* :class:`~repro.lint.config.LintConfig` — ``[tool.repro.lint]`` settings.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, load_config
from repro.lint.engine import LintResult, lint_paths, lint_source
from repro.lint.model import Finding
from repro.lint.registry import Rule, register_rule, rule_catalogue

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "lint_paths",
    "lint_source",
    "load_config",
    "register_rule",
    "rule_catalogue",
]
