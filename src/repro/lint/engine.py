"""The lint engine: file discovery, per-file rule pipeline, suppression.

Execution order is deterministic — files sorted by relative path, findings
sorted by (file, line, col, rule) — so output, baseline matching and CI
behaviour are stable across machines.

Inline suppression: a finding is dropped when its physical line carries
``# repro: noqa`` (all rules) or ``# repro: noqa[SM002]`` /
``# repro: noqa[DET001, DET004]`` (listed rules only).  Suppressions are
meant to carry a justification in a neighbouring comment; the baseline file
(:mod:`repro.lint.baseline`) exists for bulk-grandfathering instead.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.baseline import Baseline, apply_baseline
from repro.lint.config import LintConfig
from repro.lint.context import FileContext, build_context
from repro.lint.model import Finding
from repro.lint.registry import Rule, instantiate_rules

__all__ = ["LintResult", "lint_paths", "lint_source", "iter_python_files"]

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<ids>[A-Za-z0-9_,\s-]+)\])?", re.IGNORECASE
)


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    grandfathered: list[Finding] = field(default_factory=list)
    stale_baseline: dict[str, int] = field(default_factory=dict)
    suppressed: int = 0
    files_scanned: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    #: Every finding before baseline filtering (for --write-baseline).
    def all_findings(self) -> list[Finding]:
        return sorted(self.findings + self.grandfathered)


def iter_python_files(
    paths: list[Path], exclude: list[str], root: Path
) -> list[Path]:
    """Every ``.py`` file under *paths*, deterministically ordered."""
    exclude_norm = [e.rstrip("/") for e in exclude]
    seen: set[Path] = set()
    files: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            candidates = [path]
        else:
            candidates = []
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            rel = _relpath(candidate, root)
            if any(
                rel == e or rel.startswith(e + "/") or f"/{e}/" in f"/{rel}"
                for e in exclude_norm
            ):
                continue
            seen.add(resolved)
            files.append(candidate)
    files.sort(key=lambda p: _relpath(p, root))
    return files


def _relpath(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
    except ValueError:
        rel = path
    return str(rel).replace("\\", "/")


def _suppressed(finding: Finding, ctx: FileContext) -> bool:
    match = _NOQA_RE.search(ctx.line_text(finding.line))
    if match is None:
        return False
    ids = match.group("ids")
    if ids is None:
        return True
    allowed = {part.strip().upper() for part in ids.split(",") if part.strip()}
    return finding.rule_id.upper() in allowed


def _check_file(ctx: FileContext, rules: list[Rule]) -> tuple[list[Finding], int]:
    findings: list[Finding] = []
    suppressed = 0
    for rule in rules:
        for finding in rule.check(ctx):
            if _suppressed(finding, ctx):
                suppressed += 1
            else:
                findings.append(finding)
    return findings, suppressed


def lint_source(
    source: str,
    path: str = "<snippet>",
    select: list[str] | None = None,
) -> list[Finding]:
    """Lint an in-memory snippet (the unit-test entry point)."""
    ctx = build_context(source, Path(path), path)
    rules = instantiate_rules(select)
    findings, _ = _check_file(ctx, rules)
    for rule in rules:
        findings.extend(f for f in rule.finalize() if not _suppressed(f, ctx))
    return sorted(findings)


def lint_paths(
    paths: list[Path],
    config: LintConfig,
    baseline: Baseline | None = None,
) -> LintResult:
    """Run every selected rule over *paths*; apply noqa and baseline."""
    result = LintResult()
    rules = instantiate_rules(config.select)
    raw: list[Finding] = []
    contexts: dict[str, FileContext] = {}
    for file_path in iter_python_files(paths, config.exclude, config.root):
        relpath = _relpath(file_path, config.root)
        try:
            source = file_path.read_text()
            ctx = build_context(source, file_path, relpath)
        except (OSError, SyntaxError, ValueError) as exc:
            raw.append(
                Finding(
                    relpath,
                    getattr(exc, "lineno", 1) or 1,
                    0,
                    "LINT001",
                    f"file cannot be analysed: {exc.__class__.__name__}: {exc}",
                )
            )
            continue
        result.files_scanned += 1
        contexts[relpath] = ctx
        findings, suppressed = _check_file(ctx, rules)
        raw.extend(findings)
        result.suppressed += suppressed

    for rule in rules:
        for finding in rule.finalize():
            ctx = contexts.get(finding.file)
            if ctx is not None and _suppressed(finding, ctx):
                result.suppressed += 1
            else:
                raw.append(finding)

    raw.sort()
    if baseline is None:
        result.findings = raw
    else:
        result.findings, result.grandfathered, result.stale_baseline = apply_baseline(
            raw, baseline
        )
    return result
