"""``python -m repro lint`` — the CLI front end of the analysis pass.

Exit codes: 0 clean (all findings fixed, baselined or suppressed), 1 new
findings, 2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.engine import lint_paths
from repro.lint.registry import rule_catalogue
from repro.lint.reporters import render_json, render_text

__all__ = ["add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to scan (default: [tool.repro.lint] paths)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="RULE",
        help="rule id or family prefix to enable (repeatable; overrides config)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        help="baseline file of grandfathered findings (overrides config)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any configured baseline",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write all current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--no-config",
        action="store_true",
        help="ignore [tool.repro.lint] in pyproject.toml",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="append a per-rule finding count to the text report",
    )


def run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, summary in rule_catalogue():
            print(f"{rule_id:<8} {summary}")
        return 0

    if args.no_config:
        config = LintConfig()
    else:
        try:
            config = load_config(find_pyproject(Path.cwd()))
        except ValueError as exc:
            print(f"repro lint: bad configuration: {exc}", file=sys.stderr)
            return 2
    if args.select:
        config.select = args.select
    if args.baseline:
        config.baseline = args.baseline
        config.root = Path.cwd() if args.no_config else config.root
    if args.no_baseline:
        config.baseline = None

    paths = [Path(p) for p in (args.paths or config.paths)]
    missing = [str(p) for p in paths if not p.exists()]
    if missing:
        print(f"repro lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    baseline_path = config.baseline_path()
    if args.write_baseline:
        if baseline_path is None:
            print(
                "repro lint: --write-baseline needs a baseline path "
                "(--baseline or [tool.repro.lint] baseline)",
                file=sys.stderr,
            )
            return 2
        result = lint_paths(paths, config, baseline=None)
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_path}"
        )
        return 0

    baseline = None
    if baseline_path is not None:
        if not baseline_path.is_file():
            print(
                f"repro lint: baseline file not found: {baseline_path}",
                file=sys.stderr,
            )
            return 2
        try:
            baseline = Baseline.load(baseline_path)
        except (ValueError, OSError) as exc:
            print(f"repro lint: bad baseline: {exc}", file=sys.stderr)
            return 2

    result = lint_paths(paths, config, baseline=baseline)
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 0 if result.ok else 1
