"""Rule registry.

Rules are *classes* registered by id; the engine instantiates a fresh set per
run so rules may accumulate cross-file state for their :meth:`Rule.finalize`
pass (the SM coverage rule does) without leaking between runs.
"""

from __future__ import annotations

import abc
from typing import Iterable, Iterator, Type

from repro.lint.context import FileContext
from repro.lint.model import Finding

__all__ = ["Rule", "register_rule", "all_rule_classes", "instantiate_rules", "rule_catalogue"]

_RULES: dict[str, Type["Rule"]] = {}


class Rule(abc.ABC):
    """One lint rule; subclass, set ``id``/``summary``, implement ``check``."""

    #: Unique id, family prefix + number, e.g. ``"DET001"``.
    id: str = ""
    #: One-line description for ``--list-rules`` and the docs.
    summary: str = ""

    @abc.abstractmethod
    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""

    def finalize(self) -> Iterator[Finding]:
        """Yield project-level findings after every file was checked."""
        return iter(())


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding *cls* to the registry (id must be unique)."""
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in _RULES:
        raise ValueError(f"duplicate rule id {cls.id!r}")
    _RULES[cls.id] = cls
    return cls


def _ensure_loaded() -> None:
    # Importing the rules package registers every built-in rule.
    from repro.lint import rules  # noqa: F401  (import for side effect)


def all_rule_classes() -> dict[str, Type[Rule]]:
    _ensure_loaded()
    return dict(sorted(_RULES.items()))


def instantiate_rules(select: Iterable[str] | None = None) -> list[Rule]:
    """Fresh rule instances whose id matches a *select* prefix.

    ``select`` entries match whole ids (``"DET001"``) or family prefixes
    (``"DET"``).  ``None`` selects everything.
    """
    classes = all_rule_classes()
    chosen = []
    prefixes = list(select) if select is not None else None
    for rule_id, cls in classes.items():
        if prefixes is None or any(rule_id.startswith(p) for p in prefixes):
            chosen.append(cls())
    return chosen


def rule_catalogue() -> list[tuple[str, str]]:
    """(id, summary) for every registered rule, sorted by id."""
    return [(rid, cls.summary) for rid, cls in all_rule_classes().items()]
