"""Experiment runners reproducing every figure of the paper's §IV.

Each ``figN`` module exposes ``run(...) -> ExperimentResult`` plus a
``main()`` that prints the figure's rows; the matching benchmark in
``benchmarks/`` wraps ``run`` and asserts the paper's qualitative claims
(who wins, what stays constant, what scales).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.parallel import RunCache, run_sweep
from repro.experiments import workloads
from repro.experiments import fig3, fig4, fig5, fig6, fig7, fig8, fig9
from repro.experiments import ablations
from repro.experiments import fault_ablation

__all__ = [
    "ExperimentResult",
    "RunCache",
    "run_sweep",
    "workloads",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "ablations",
    "fault_ablation",
]
