"""The workload (pattern) classes used across the paper's experiments.

These are complete, runnable EnTK applications — the same classes serve the
examples, the tests and the benchmark harness.
"""

from __future__ import annotations

from repro.core.kernel_plugin import Kernel
from repro.core.patterns.ensemble_exchange import EnsembleExchange
from repro.core.patterns.pipeline import EnsembleOfPipelines
from repro.core.patterns.simulation_analysis_loop import SimulationAnalysisLoop
from repro.kernels.md import STEPS_PER_PS

__all__ = [
    "CharCountPipeline",
    "CharCountSAL",
    "CharCountEE",
    "GromacsLSDMapSAL",
    "AmberTemperatureREMD",
    "AmberCoCoSAL",
]

#: File size of the characterization workload (paper §IV.A).
CHARCOUNT_SIZE = 1000


def _mkfile_kernel() -> Kernel:
    kernel = Kernel(name="misc.mkfile")
    kernel.arguments = [f"--size={CHARCOUNT_SIZE}", "--filename=output.txt"]
    return kernel


def _ccount_kernel(source_token: str) -> Kernel:
    kernel = Kernel(name="misc.ccount")
    kernel.arguments = ["--inputfile=input.txt", "--outputfile=ccount.txt"]
    kernel.link_input_data = [f"{source_token}/output.txt > input.txt"]
    return kernel


class CharCountPipeline(EnsembleOfPipelines):
    """The paper's two-stage character-count app as an ensemble of pipelines."""

    def __init__(self, ensemble_size: int) -> None:
        super().__init__(ensemble_size=ensemble_size, pipeline_size=2)

    def stage_1(self, instance: int) -> Kernel:
        return _mkfile_kernel()

    def stage_2(self, instance: int) -> Kernel:
        return _ccount_kernel("$STAGE_1")


class CharCountSAL(SimulationAnalysisLoop):
    """The character-count app mapped onto the SAL pattern.

    Stage 1 (simulation): mkfile per instance; stage 2 (analysis): ccount
    per instance over the matching simulation's file.  One iteration.
    """

    def __init__(self, instances: int) -> None:
        super().__init__(
            iterations=1,
            simulation_instances=instances,
            analysis_instances=instances,
        )

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        return _mkfile_kernel()

    def analysis_stage(self, iteration: int, instance: int) -> Kernel:
        return _ccount_kernel(f"$SIMULATION_{iteration}_{instance}")


class CharCountEE(EnsembleExchange):
    """The character-count app mapped onto the EE pattern.

    Simulation stage: mkfile per member; exchange stage: ccount over the
    pair's files (pairwise, temporally unsynchronized — members count as
    soon as a partner is ready).  One iteration.
    """

    def __init__(self, ensemble_size: int) -> None:
        super().__init__(
            ensemble_size=ensemble_size, iterations=1, exchange_mode="pairwise"
        )

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        return _mkfile_kernel()

    def exchange_stage(self, iteration: int, instances) -> Kernel:
        first = instances[0]
        return _ccount_kernel(f"$REPLICA_{first}")


class GromacsLSDMapSAL(SimulationAnalysisLoop):
    """The paper's Fig. 4 workload: Gromacs simulations + LSDMap analysis."""

    def __init__(
        self,
        instances: int,
        iterations: int = 1,
        nsteps: int = 300,
        stride: int = 10,
    ) -> None:
        super().__init__(
            iterations=iterations,
            simulation_instances=instances,
            analysis_instances=1,
        )
        self.nsteps = nsteps
        self.stride = stride

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="md.gromacs")
        kernel.arguments = [
            f"--nsteps={self.nsteps}",
            f"--stride={self.stride}",
            "--system=ala2-2d",
            "--outfile=trajectory.npz",
            f"--seed={1000 * iteration + instance}",
        ]
        if iteration > 1:
            kernel.arguments.append("--startfile=previous.npz")
            kernel.link_input_data = [
                f"$SIMULATION_{iteration - 1}_{instance}/trajectory.npz > previous.npz"
            ]
        return kernel

    def analysis_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="analysis.lsdmap")
        total_frames = self.simulation_instances * (self.nsteps // self.stride)
        kernel.arguments = [
            "--pattern=traj_*.npz",
            "--outfile=lsdmap.npz",
            f"--nframes={total_frames}",
        ]
        kernel.link_input_data = [
            f"$SIMULATION_{iteration}_{i}/trajectory.npz > traj_{i:04d}.npz"
            for i in range(1, self.simulation_instances + 1)
        ]
        return kernel


class AmberTemperatureREMD(EnsembleExchange):
    """The paper's Fig. 5/6 workload: Amber + temperature exchange.

    2881-atom alanine dipeptide (toy-MD backed), each replica simulated
    ``duration_ps`` on one core, then a global temperature exchange whose
    serial cost grows with the replica count.
    """

    def __init__(
        self,
        replicas: int,
        iterations: int = 1,
        duration_ps: float = 6.0,
        t_min: float = 1.0,
        t_max: float = 4.0,
    ) -> None:
        super().__init__(
            ensemble_size=replicas, iterations=iterations, exchange_mode="global"
        )
        self.duration_ps = duration_ps
        self.t_min = t_min
        self.t_max = t_max

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="md.amber")
        kernel.arguments = [
            f"--duration-ps={self.duration_ps}",
            "--system=ala2-2d",
            "--outfile=replica.npz",
            f"--seed={1000 * iteration + instance}",
        ]
        if iteration > 1:
            kernel.arguments.append("--startfile=previous.npz")
            kernel.link_input_data = [
                "$PREV_SIMULATION/replica.npz > previous.npz"
            ]
        return kernel

    def exchange_stage(self, iteration: int, instances) -> Kernel:
        kernel = Kernel(name="exchange.temperature")
        kernel.arguments = [
            "--mode=global",
            "--pattern=replica_*.npz",
            f"--tmin={self.t_min}",
            f"--tmax={self.t_max}",
            f"--phase={iteration % 2}",
            "--outfile=exchange.npz",
            f"--nreplicas={len(instances)}",
        ]
        kernel.link_input_data = [
            f"$REPLICA_{i}/replica.npz > replica_{i:05d}.npz" for i in instances
        ]
        return kernel


class AmberCoCoSAL(SimulationAnalysisLoop):
    """The paper's Fig. 7/8/9 workload: Amber simulations + serial CoCo.

    ``cores_per_simulation > 1`` turns the simulations into MPI units
    (Fig. 9's capability demonstration).
    """

    def __init__(
        self,
        instances: int,
        iterations: int = 1,
        duration_ps: float = 0.6,
        cores_per_simulation: int = 1,
        stride: int = 10,
    ) -> None:
        super().__init__(
            iterations=iterations,
            simulation_instances=instances,
            analysis_instances=1,
        )
        self.duration_ps = duration_ps
        self.cores_per_simulation = cores_per_simulation
        self.stride = stride

    @property
    def nsteps(self) -> int:
        return max(int(self.duration_ps * STEPS_PER_PS), 1)

    def simulation_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="md.amber")
        kernel.arguments = [
            f"--nsteps={self.nsteps}",
            f"--stride={self.stride}",
            "--system=ala2-2d",
            "--outfile=trajectory.npz",
            f"--seed={1000 * iteration + instance}",
        ]
        kernel.cores = self.cores_per_simulation
        kernel.uses_mpi = self.cores_per_simulation > 1
        if iteration > 1:
            kernel.arguments += [
                "--startfile=coco.npz",
                f"--startindex={instance - 1}",
            ]
            kernel.link_input_data = ["$PREV_ANALYSIS/coco.npz"]
        return kernel

    def analysis_stage(self, iteration: int, instance: int) -> Kernel:
        kernel = Kernel(name="analysis.coco")
        total_frames = self.simulation_instances * max(self.nsteps // self.stride, 1)
        kernel.arguments = [
            "--pattern=traj_*.npz",
            "--outfile=coco.npz",
            f"--npoints={self.simulation_instances}",
            f"--nframes={total_frames}",
        ]
        kernel.link_input_data = [
            f"$SIMULATION_{iteration}_{i}/trajectory.npz > traj_{i:05d}.npz"
            for i in range(1, self.simulation_instances + 1)
        ]
        return kernel
