"""Fig. 3 — characterization of the three execution patterns (paper §IV.A).

The two-stage character-count application (mkfile -> ccount) is run with
all three patterns on (simulated) XSEDE Comet, with tasks = cores in
{24, 48, 96, 192}.  The paper's observations to reproduce:

1. application execution times are similar across patterns and roughly
   constant across configurations (all tasks run concurrently),
2. the EnTK *core overhead* is constant (independent of pattern/scale),
3. the EnTK *pattern overhead* grows with the number of tasks.
"""

from __future__ import annotations

from repro.analytics.tables import Series
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import run_on_sim
from repro.experiments.workloads import (
    CharCountEE,
    CharCountPipeline,
    CharCountSAL,
)

__all__ = ["run", "main", "TASK_COUNTS", "RESOURCE"]

TASK_COUNTS = (24, 48, 96, 192)
RESOURCE = "xsede.comet"

_PATTERNS = {
    "pipeline": CharCountPipeline,
    "sal": CharCountSAL,
    "ee": CharCountEE,
}


def run(task_counts=TASK_COUNTS, resource=RESOURCE, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig3",
        description="char-count app under pipeline/SAL/EE patterns, "
        f"tasks=cores in {tuple(task_counts)} on {resource}",
    )
    exec_series = {
        name: result.add_series(
            Series(name=f"exec:{name}", x_label="tasks", y_label="exec_s",
                   expectation="similar across patterns, ~constant")
        )
        for name in _PATTERNS
    }
    core_series = result.add_series(
        Series(name="core_overhead", x_label="tasks", y_label="core_s",
               expectation="constant")
    )
    pattern_series = {
        name: result.add_series(
            Series(name=f"pattern_overhead:{name}", x_label="tasks",
                   y_label="overhead_s", expectation="grows with tasks")
        )
        for name in _PATTERNS
    }

    for n in task_counts:
        for name, pattern_cls in _PATTERNS.items():
            pattern = pattern_cls(n)
            _, _, breakdown = run_on_sim(
                pattern, resource=resource, cores=n, seed=seed
            )
            exec_series[name].append(n, breakdown.execution_time)
            pattern_series[name].append(n, breakdown.pattern_overhead)
            if name == "pipeline":
                core_series.append(n, breakdown.core_overhead)
            result.rows.append(
                {
                    "pattern": name,
                    "tasks": n,
                    "cores": n,
                    "exec_s": breakdown.execution_time,
                    "core_overhead_s": breakdown.core_overhead,
                    "pattern_overhead_s": breakdown.pattern_overhead,
                    "ttc_s": breakdown.ttc,
                }
            )

    # -- the paper's claims ------------------------------------------------------
    for name, series in exec_series.items():
        result.claim(
            f"execution time of {name} is ~constant across configurations",
            series.is_constant(tolerance=0.35),
        )
    means = [sum(s.y) / len(s.y) for s in exec_series.values()]
    result.claim(
        "execution times are similar across the three patterns",
        max(means) <= 1.6 * min(means),
    )
    result.claim("EnTK core overhead is constant", core_series.is_constant(0.05))
    for name, series in pattern_series.items():
        result.claim(
            f"EnTK pattern overhead of {name} grows with the task count",
            series.is_increasing(),
        )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
