"""Fig. 8 — weak scaling of the SAL pattern (paper §IV.C.2).

Amber + CoCo on (simulated) Stampede with simulations = cores swept
64..4096, one iteration.  The paper observes:

1. simulation time is constant (one core per simulation at every scale),
2. analysis time increases with the simulation count (serial CoCo).

The paper adds that the analysis kernel's absolute performance is
"unrelated to the scalability of Ensemble toolkit" — the toolkit's own
overheads stay proportional to task count regardless.
"""

from __future__ import annotations

from repro.analytics.tables import Series
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import kernel_phase_times, run_on_sim
from repro.experiments.workloads import AmberCoCoSAL

__all__ = ["run", "main", "SIM_COUNTS", "RESOURCE"]

SIM_COUNTS = (64, 128, 256, 512, 1024, 2048, 4096)
RESOURCE = "xsede.stampede"


def run(
    sim_counts=SIM_COUNTS,
    resource: str = RESOURCE,
    duration_ps: float = 0.6,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig8",
        description=f"SAL weak scaling: sims = cores in {tuple(sim_counts)} "
        f"on {resource}",
    )
    sim_series = result.add_series(
        Series(name="simulation", x_label="simulations", y_label="sim_s",
               expectation="constant (fixed problem size per core)")
    )
    analysis_series = result.add_series(
        Series(name="analysis", x_label="simulations", y_label="analysis_s",
               expectation="grows with the simulation count")
    )

    for sims in sim_counts:
        pattern = AmberCoCoSAL(
            instances=sims, iterations=1, duration_ps=duration_ps
        )
        _, _, _breakdown = run_on_sim(
            pattern,
            resource=resource,
            cores=sims,
            walltime_minutes=12 * 60.0,
            seed=seed,
        )
        phases = kernel_phase_times(pattern)
        sim_time = phases.get("md.amber", 0.0)
        analysis_time = phases.get("analysis.coco", 0.0)
        sim_series.append(sims, sim_time)
        analysis_series.append(sims, analysis_time)
        result.rows.append(
            {
                "simulations": sims,
                "cores": sims,
                "sim_s": sim_time,
                "analysis_s": analysis_time,
            }
        )

    result.claim(
        "simulation time is constant (linear weak scaling)",
        sim_series.is_constant(tolerance=0.1),
    )
    result.claim(
        "analysis time grows with the simulation count",
        analysis_series.is_increasing() and analysis_series.grows_linearly(),
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
