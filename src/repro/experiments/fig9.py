"""Fig. 9 — MPI capability of Ensemble toolkit (paper §IV.C.3).

Amber-CoCo via SAL on (simulated) Stampede with 64 concurrent simulations
of 6 ps each, varying the cores *per simulation* through {1, 16, 32, 64}
(total cores 64..4096).  The paper observes that simulation execution time
drops linearly with the per-simulation core count — i.e. multi-core (MPI)
units are first-class and the toolkit's overheads depend on task *count*,
not task *size*.
"""

from __future__ import annotations

from repro.analytics.tables import Series
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import kernel_phase_times, run_on_sim
from repro.experiments.workloads import AmberCoCoSAL

__all__ = ["run", "main", "CORES_PER_SIM", "SIMULATIONS", "RESOURCE"]

SIMULATIONS = 64
CORES_PER_SIM = (1, 16, 32, 64)
RESOURCE = "xsede.stampede"


def run(
    simulations: int = SIMULATIONS,
    cores_per_sim=CORES_PER_SIM,
    resource: str = RESOURCE,
    duration_ps: float = 6.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig9",
        description=f"MPI capability: {simulations} sims of {duration_ps} ps, "
        f"cores/sim in {tuple(cores_per_sim)} on {resource}",
    )
    sim_series = result.add_series(
        Series(name="simulation", x_label="cores_per_sim", y_label="sim_s",
               expectation="drops linearly with cores per simulation")
    )

    for k in cores_per_sim:
        pattern = AmberCoCoSAL(
            instances=simulations,
            iterations=1,
            duration_ps=duration_ps,
            cores_per_simulation=k,
        )
        total_cores = simulations * k
        _, _, _breakdown = run_on_sim(
            pattern,
            resource=resource,
            cores=total_cores,
            walltime_minutes=12 * 60.0,
            seed=seed,
        )
        phases = kernel_phase_times(pattern)
        sim_time = phases.get("md.amber", 0.0)
        sim_series.append(k, sim_time)
        result.rows.append(
            {
                "simulations": simulations,
                "cores_per_sim": k,
                "total_cores": total_cores,
                "sim_s": sim_time,
            }
        )

    result.claim(
        "simulation time drops linearly with cores per simulation",
        sim_series.halves_per_doubling(tolerance=0.25),
    )
    result.claim(
        "every MPI width executed successfully at O(1000) total cores",
        len(sim_series) == len(tuple(cores_per_sim)),
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
