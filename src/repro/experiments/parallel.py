"""Parallel sweep runner and on-disk run cache for the figure experiments.

The figure reproductions and the §V scale envelope all have the same
shape: a *sweep* over independent configuration points (core counts,
task counts, replica counts), each point one self-contained simulated
run.  Points share no state — every run seeds its own RNG streams from
the point's ``seed`` — so they can execute in worker processes, and a
finished point can be reused verbatim by later sweeps.

Two pieces implement that:

* :func:`run_sweep` maps a *point function* over a list of points,
  serially or across a :mod:`multiprocessing` pool (``parallel=N``).
  The point function must be a **module-level callable** (so it can be
  pickled for workers) and a **pure function of its point**: the record
  it returns may depend only on the point's fields, never on process
  state such as id counters.  Under that contract a parallel sweep is
  record-for-record identical to a serial one, which the test suite
  asserts.
* :class:`RunCache` persists one JSON file per finished point, keyed by
  the SHA-256 of the point's canonical JSON — i.e. by
  ``(resource, cores, pattern config, seed)`` and whatever else the
  caller puts in the point dict.  Repeated sweeps (re-running a figure
  while iterating on plots, overlapping core grids across figures)
  skip every point they have seen before.

Points must be JSON-serializable dicts; records must be picklable (and
JSON-serializable when a cache is used).  Keep both to plain scalars,
lists and dicts.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
from pathlib import Path
from typing import Any, Callable, Iterable, Sequence

__all__ = ["RunCache", "run_sweep"]

#: A sweep point: one JSON-serializable configuration dict.
Point = dict
#: What a point function returns: one picklable record.
Record = Any


def _canonical(point: Point) -> str:
    """The canonical JSON form of *point* (also the cache identity)."""
    return json.dumps(point, sort_keys=True, separators=(",", ":"))


class RunCache:
    """On-disk cache of finished sweep points.

    One file per point, named by the SHA-256 of the point's canonical
    JSON, holding ``{"point": <canonical dict>, "record": <record>}``.
    The stored point is compared on read, so a (vanishingly unlikely)
    hash collision or a truncated file degrades to a cache miss, never
    to a wrong record.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def key(self, point: Point) -> str:
        return hashlib.sha256(_canonical(point).encode()).hexdigest()

    def path(self, point: Point) -> Path:
        return self.directory / f"{self.key(point)}.json"

    def get(self, point: Point) -> Record | None:
        """The cached record for *point*, or ``None`` on any miss.

        Any defect in the cached file — unreadable, truncated mid-write,
        binary garbage, valid JSON of the wrong shape, or a stored point
        that does not match — degrades to a miss; the caller recomputes
        and :meth:`put` overwrites the bad file.
        """
        try:
            data = json.loads(self.path(point).read_text())
            if not isinstance(data, dict):
                return None
            stored = data.get("point")
            if stored is None or _canonical(stored) != _canonical(
                json.loads(_canonical(point))
            ):
                return None
            return data.get("record")
        except (OSError, TypeError, ValueError):
            return None

    def put(self, point: Point, record: Record) -> Path:
        """Persist *record* for *point* (atomic: write temp, rename)."""
        path = self.path(point)
        payload = json.dumps(
            {"point": json.loads(_canonical(point)), "record": record},
            sort_keys=True,
        )
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(payload + "\n")
        tmp.replace(path)
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))


def _call_point(job: tuple[Callable[[Point], Record], Point]) -> Record:
    point_fn, point = job
    return point_fn(point)


def run_sweep(
    point_fn: Callable[[Point], Record],
    points: Iterable[Point],
    *,
    parallel: int = 0,
    cache: RunCache | None = None,
) -> list[Record]:
    """Evaluate ``point_fn`` over *points*; records in point order.

    ``parallel <= 1`` runs serially in-process (identical to the plain
    loop the figure runners used to contain).  ``parallel = N`` fans
    uncached points out over ``N`` worker processes, one point per task.
    With a *cache*, hits are returned without evaluation and misses are
    persisted after evaluation.
    """
    point_list: Sequence[Point] = list(points)
    records: list[Record] = [None] * len(point_list)
    if cache is not None:
        pending = []
        for index, point in enumerate(point_list):
            hit = cache.get(point)
            if hit is not None:
                records[index] = hit
            else:
                pending.append((index, point))
    else:
        pending = list(enumerate(point_list))

    if pending:
        jobs = [(point_fn, point) for _, point in pending]
        if parallel > 1 and len(pending) > 1:
            with multiprocessing.Pool(min(parallel, len(pending))) as pool:
                fresh = pool.map(_call_point, jobs, chunksize=1)
        else:
            fresh = [_call_point(job) for job in jobs]
        for (index, point), record in zip(pending, fresh):
            records[index] = record
            if cache is not None:
                cache.put(point, record)
    return records
