"""Helpers shared by the figure runners."""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.analytics.metrics import group_units, phase_execution_time
from repro.core.profiler import OverheadBreakdown, breakdown_from_profile
from repro.core.resource_handle import ResourceHandle

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.execution_pattern import ExecutionPattern

__all__ = [
    "run_on_sim", "kernel_phase_times", "run_on_local", "set_trace_out",
    "set_spool_dir",
]

#: When set (``--trace-out DIR`` on the figure CLI, or
#: :func:`set_trace_out`), every run dumps a Chrome trace of its full
#: session next to the figure's result artifacts: ``<uid>.trace.json``.
_TRACE_OUT: Path | None = None

#: When set (``--spool DIR`` on the figure CLI, or :func:`set_spool_dir`),
#: every run streams its event trace to an NDJSON spool file under the
#: directory instead of keeping it resident (see
#: :mod:`repro.telemetry.sink`).  Trace content is identical either way.
_SPOOL_DIR: Path | None = None


def set_trace_out(directory: str | Path | None) -> None:
    """Dump a Chrome trace per run into *directory* (``None`` disables)."""
    global _TRACE_OUT
    _TRACE_OUT = None if directory is None else Path(directory)


def set_spool_dir(directory: str | Path | None) -> None:
    """Stream run traces to spool files in *directory* (``None`` disables)."""
    global _SPOOL_DIR
    _SPOOL_DIR = None if directory is None else Path(directory)


def _dump_trace(pattern: "ExecutionPattern", handle: ResourceHandle,
                trace_out: str | Path | None) -> None:
    directory = Path(trace_out) if trace_out is not None else _TRACE_OUT
    if directory is None:
        return
    from repro.telemetry.export import write_chrome_trace

    directory.mkdir(parents=True, exist_ok=True)
    write_chrome_trace(
        list(handle.profile), directory / f"{pattern.uid}.trace.json"
    )


def run_on_sim(
    pattern: "ExecutionPattern",
    resource: str,
    cores: int,
    walltime_minutes: float = 24 * 60.0,
    seed: int = 0,
    trace_out: str | Path | None = None,
    **handle_kwargs,
) -> tuple["ExecutionPattern", ResourceHandle, OverheadBreakdown]:
    """Run *pattern* on a simulated platform; return it with its breakdown."""
    if _SPOOL_DIR is not None:
        handle_kwargs.setdefault("spool_dir", _SPOOL_DIR)
    handle = ResourceHandle(
        resource=resource,
        cores=cores,
        walltime=walltime_minutes,
        mode="sim",
        seed=seed,
        **handle_kwargs,
    )
    handle.allocate()
    try:
        handle.run(pattern)
    finally:
        handle.deallocate()
    breakdown = breakdown_from_profile(handle.profile, pattern)
    _dump_trace(pattern, handle, trace_out)
    return pattern, handle, breakdown


def run_on_local(
    pattern: "ExecutionPattern",
    cores: int = 4,
    walltime_minutes: float = 30.0,
    trace_out: str | Path | None = None,
    **handle_kwargs,
) -> tuple["ExecutionPattern", ResourceHandle, OverheadBreakdown]:
    """Run *pattern* for real on this machine (examples and validation)."""
    handle = ResourceHandle(
        resource="local.localhost",
        cores=cores,
        walltime=walltime_minutes,
        mode="local",
        **handle_kwargs,
    )
    handle.allocate()
    try:
        handle.run(pattern)
    finally:
        handle.deallocate()
    breakdown = breakdown_from_profile(handle.profile, pattern)
    _dump_trace(pattern, handle, trace_out)
    return pattern, handle, breakdown


def kernel_phase_times(pattern: "ExecutionPattern") -> dict[str, float]:
    """Wall time of each kernel-named phase of an executed pattern.

    Groups the pattern's units by kernel name and takes the union length of
    each group's EXECUTING intervals — the paper's per-phase metric
    ("simulation time", "exchange time", "analysis time").
    """
    groups = group_units(pattern.units, lambda u: u.description.name)
    return {name: phase_execution_time(units) for name, units in groups.items()}
