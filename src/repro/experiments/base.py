"""Shared infrastructure of the experiment runners."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.analytics.tables import Series, format_table

__all__ = ["ExperimentResult"]


@dataclass
class ExperimentResult:
    """Everything one figure reproduction produced.

    ``rows`` is the tabular view (one dict per configuration), ``series``
    the per-curve view keyed by curve name.  ``claims`` maps each paper
    claim (a short sentence) to whether the reproduction upholds it —
    benchmarks assert on these, and EXPERIMENTS.md reports them.
    """

    figure: str
    description: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    series: dict[str, Series] = field(default_factory=dict)
    claims: dict[str, bool] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_series(self, series: Series) -> Series:
        self.series[series.name] = series
        return series

    def claim(self, statement: str, holds: bool) -> bool:
        self.claims[statement] = bool(holds)
        return bool(holds)

    @property
    def all_claims_hold(self) -> bool:
        return all(self.claims.values())

    def report(self, precision: int = 2) -> str:
        lines = [f"== {self.figure}: {self.description} =="]
        if self.rows:
            lines.append(format_table(self.rows, precision=precision))
        for name, series in self.series.items():
            if series.expectation:
                lines.append(f"  series {name!r}: expected {series.expectation}")
        for statement, holds in self.claims.items():
            marker = "OK " if holds else "FAIL"
            lines.append(f"  [{marker}] {statement}")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

    def print_report(self, precision: int = 2) -> None:
        print(self.report(precision=precision))
