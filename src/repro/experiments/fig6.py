"""Fig. 6 — weak scaling of the EE pattern (paper §IV.C.1).

Same Amber temperature-exchange workload on SuperMIC, now with the
problem size per core fixed: replicas = cores, swept 20..2560.  The paper
observes:

1. simulation time is constant (every replica always has its own core),
2. exchange time increases with the replica count (serial global step).
"""

from __future__ import annotations

from repro.analytics.tables import Series
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import kernel_phase_times, run_on_sim
from repro.experiments.workloads import AmberTemperatureREMD

__all__ = ["run", "main", "REPLICA_COUNTS", "RESOURCE"]

REPLICA_COUNTS = (20, 40, 80, 160, 320, 640, 1280, 2560)
RESOURCE = "xsede.supermic"


def run(
    replica_counts=REPLICA_COUNTS,
    resource: str = RESOURCE,
    duration_ps: float = 6.0,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig6",
        description=f"EE weak scaling: replicas = cores in "
        f"{tuple(replica_counts)} on {resource}",
    )
    sim_series = result.add_series(
        Series(name="simulation", x_label="replicas", y_label="sim_s",
               expectation="constant (fixed problem size per core)")
    )
    exchange_series = result.add_series(
        Series(name="exchange", x_label="replicas", y_label="exchange_s",
               expectation="grows with the replica count")
    )

    for replicas in replica_counts:
        pattern = AmberTemperatureREMD(
            replicas=replicas, iterations=1, duration_ps=duration_ps
        )
        _, _, _breakdown = run_on_sim(
            pattern,
            resource=resource,
            cores=replicas,
            walltime_minutes=12 * 60.0,
            seed=seed,
        )
        phases = kernel_phase_times(pattern)
        sim_time = phases.get("md.amber", 0.0)
        exchange_time = phases.get("exchange.temperature", 0.0)
        sim_series.append(replicas, sim_time)
        exchange_series.append(replicas, exchange_time)
        result.rows.append(
            {
                "replicas": replicas,
                "cores": replicas,
                "sim_s": sim_time,
                "exchange_s": exchange_time,
            }
        )

    result.claim(
        "simulation time is constant (linear weak scaling)",
        sim_series.is_constant(tolerance=0.1),
    )
    result.claim(
        "exchange time grows with the replica count",
        exchange_series.is_increasing(),
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
