"""Fig. 5 — strong scaling of the EE pattern (paper §IV.C.1).

Amber + temperature exchange on (simulated) SuperMIC: 2560 replicas of
solvated alanine dipeptide, 6 ps per replica on one core each, with the
core count swept 20..2560.  The paper observes:

1. simulation time halves when the core count doubles (waves of
   concurrent replicas),
2. exchange time is constant — it depends on the replica count, which is
   fixed here.
"""

from __future__ import annotations

from pathlib import Path

from repro.analytics.tables import Series
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import kernel_phase_times, run_on_sim
from repro.experiments.parallel import RunCache, run_sweep
from repro.experiments.workloads import AmberTemperatureREMD

__all__ = ["run", "main", "CORE_COUNTS", "REPLICAS", "RESOURCE"]

REPLICAS = 2560
CORE_COUNTS = (20, 40, 80, 160, 320, 640, 1280, 2560)
RESOURCE = "xsede.supermic"


def _point(point: dict) -> dict:
    """One sweep point: run the REMD workload at ``point["cores"]``.

    Module-level and a pure function of *point*, as
    :func:`repro.experiments.parallel.run_sweep` requires.
    """
    pattern = AmberTemperatureREMD(
        replicas=point["replicas"],
        iterations=point["iterations"],
        duration_ps=point["duration_ps"],
    )
    run_on_sim(
        pattern,
        resource=point["resource"],
        cores=point["cores"],
        walltime_minutes=47 * 60.0,
        seed=point["seed"],
    )
    phases = kernel_phase_times(pattern)
    return {
        "replicas": point["replicas"],
        "cores": point["cores"],
        "sim_s": phases.get("md.amber", 0.0),
        "exchange_s": phases.get("exchange.temperature", 0.0),
    }


def run(
    replicas: int = REPLICAS,
    core_counts=CORE_COUNTS,
    resource: str = RESOURCE,
    duration_ps: float = 6.0,
    seed: int = 0,
    parallel: int = 0,
    cache_dir: str | Path | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig5",
        description=f"EE strong scaling: {replicas} replicas, cores in "
        f"{tuple(core_counts)} on {resource}",
    )
    sim_series = result.add_series(
        Series(name="simulation", x_label="cores", y_label="sim_s",
               expectation="halves per core doubling")
    )
    exchange_series = result.add_series(
        Series(name="exchange", x_label="cores", y_label="exchange_s",
               expectation="constant (depends on replica count only)")
    )

    points = [
        {
            "figure": "fig5",
            "pattern": "AmberTemperatureREMD",
            "resource": resource,
            "cores": cores,
            "replicas": replicas,
            "iterations": 1,
            "duration_ps": duration_ps,
            "seed": seed,
        }
        for cores in core_counts
    ]
    cache = RunCache(cache_dir) if cache_dir is not None else None
    for row in run_sweep(_point, points, parallel=parallel, cache=cache):
        sim_series.append(row["cores"], row["sim_s"])
        exchange_series.append(row["cores"], row["exchange_s"])
        result.rows.append(row)

    result.claim(
        "simulation time halves when cores double (linear strong scaling)",
        sim_series.halves_per_doubling(tolerance=0.2),
    )
    result.claim(
        "exchange time is constant across core counts",
        exchange_series.is_constant(tolerance=0.15),
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
