"""Fig. 7 — strong scaling of the SAL pattern (paper §IV.C.2).

Amber + CoCo (iterative collective coordinates) on (simulated) Stampede:
1024 simulations of 0.6 ps each on one core, cores swept 64..1024, one
SAL iteration.  The paper observes:

1. simulation time decreases linearly with the core count,
2. analysis (serial CoCo over all simulations) time is constant — it
   depends on the simulation count, which is fixed.
"""

from __future__ import annotations

from repro.analytics.tables import Series
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import kernel_phase_times, run_on_sim
from repro.experiments.workloads import AmberCoCoSAL

__all__ = ["run", "main", "CORE_COUNTS", "SIMULATIONS", "RESOURCE"]

SIMULATIONS = 1024
CORE_COUNTS = (64, 128, 256, 512, 1024)
RESOURCE = "xsede.stampede"


def run(
    simulations: int = SIMULATIONS,
    core_counts=CORE_COUNTS,
    resource: str = RESOURCE,
    duration_ps: float = 0.6,
    seed: int = 0,
) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig7",
        description=f"SAL strong scaling: {simulations} Amber-CoCo sims, "
        f"cores in {tuple(core_counts)} on {resource}",
    )
    sim_series = result.add_series(
        Series(name="simulation", x_label="cores", y_label="sim_s",
               expectation="decreases linearly with cores")
    )
    analysis_series = result.add_series(
        Series(name="analysis", x_label="cores", y_label="analysis_s",
               expectation="constant (serial, depends on sim count)")
    )

    for cores in core_counts:
        pattern = AmberCoCoSAL(
            instances=simulations, iterations=1, duration_ps=duration_ps
        )
        _, _, _breakdown = run_on_sim(
            pattern,
            resource=resource,
            cores=cores,
            walltime_minutes=12 * 60.0,
            seed=seed,
        )
        phases = kernel_phase_times(pattern)
        sim_time = phases.get("md.amber", 0.0)
        analysis_time = phases.get("analysis.coco", 0.0)
        sim_series.append(cores, sim_time)
        analysis_series.append(cores, analysis_time)
        result.rows.append(
            {
                "simulations": simulations,
                "cores": cores,
                "sim_s": sim_time,
                "analysis_s": analysis_time,
            }
        )

    result.claim(
        "simulation time decreases linearly with the core count",
        sim_series.halves_per_doubling(tolerance=0.2),
    )
    result.claim(
        "analysis time is constant across core counts",
        analysis_series.is_constant(tolerance=0.1),
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
