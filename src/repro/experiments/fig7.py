"""Fig. 7 — strong scaling of the SAL pattern (paper §IV.C.2).

Amber + CoCo (iterative collective coordinates) on (simulated) Stampede:
1024 simulations of 0.6 ps each on one core, cores swept 64..1024, one
SAL iteration.  The paper observes:

1. simulation time decreases linearly with the core count,
2. analysis (serial CoCo over all simulations) time is constant — it
   depends on the simulation count, which is fixed.
"""

from __future__ import annotations

from pathlib import Path

from repro.analytics.tables import Series
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import kernel_phase_times, run_on_sim
from repro.experiments.parallel import RunCache, run_sweep
from repro.experiments.workloads import AmberCoCoSAL

__all__ = ["run", "main", "CORE_COUNTS", "SIMULATIONS", "RESOURCE"]

SIMULATIONS = 1024
CORE_COUNTS = (64, 128, 256, 512, 1024)
RESOURCE = "xsede.stampede"


def _point(point: dict) -> dict:
    """One sweep point: run the SAL workload at ``point["cores"]``.

    Module-level and a pure function of *point*, as
    :func:`repro.experiments.parallel.run_sweep` requires.
    """
    pattern = AmberCoCoSAL(
        instances=point["simulations"],
        iterations=point["iterations"],
        duration_ps=point["duration_ps"],
    )
    run_on_sim(
        pattern,
        resource=point["resource"],
        cores=point["cores"],
        walltime_minutes=12 * 60.0,
        seed=point["seed"],
    )
    phases = kernel_phase_times(pattern)
    return {
        "simulations": point["simulations"],
        "cores": point["cores"],
        "sim_s": phases.get("md.amber", 0.0),
        "analysis_s": phases.get("analysis.coco", 0.0),
    }


def run(
    simulations: int = SIMULATIONS,
    core_counts=CORE_COUNTS,
    resource: str = RESOURCE,
    duration_ps: float = 0.6,
    seed: int = 0,
    parallel: int = 0,
    cache_dir: str | Path | None = None,
) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig7",
        description=f"SAL strong scaling: {simulations} Amber-CoCo sims, "
        f"cores in {tuple(core_counts)} on {resource}",
    )
    sim_series = result.add_series(
        Series(name="simulation", x_label="cores", y_label="sim_s",
               expectation="decreases linearly with cores")
    )
    analysis_series = result.add_series(
        Series(name="analysis", x_label="cores", y_label="analysis_s",
               expectation="constant (serial, depends on sim count)")
    )

    points = [
        {
            "figure": "fig7",
            "pattern": "AmberCoCoSAL",
            "resource": resource,
            "cores": cores,
            "simulations": simulations,
            "iterations": 1,
            "duration_ps": duration_ps,
            "seed": seed,
        }
        for cores in core_counts
    ]
    cache = RunCache(cache_dir) if cache_dir is not None else None
    for row in run_sweep(_point, points, parallel=parallel, cache=cache):
        sim_series.append(row["cores"], row["sim_s"])
        analysis_series.append(row["cores"], row["analysis_s"])
        result.rows.append(row)

    result.claim(
        "simulation time decreases linearly with the core count",
        sim_series.halves_per_doubling(tolerance=0.2),
    )
    result.claim(
        "analysis time is constant across core counts",
        analysis_series.is_constant(tolerance=0.1),
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
