"""Synthetic ensemble-workload generation.

The paper's workloads are homogeneous (every member runs the same kernel
for the same duration).  Real ensembles — especially adaptive ones — are
not: task durations spread, widths mix, stragglers appear.  This module
generates parameterized synthetic ensembles so the harness can sweep
*heterogeneity* as an axis, which is where scheduling policy actually
starts to matter (see :func:`repro.experiments.ablations.scheduler_policy`
and the heterogeneity ablation).

Durations are drawn from a lognormal with a chosen coefficient of
variation (CV); CV 0 is the paper's homogeneous case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.kernel_plugin import Kernel
from repro.core.patterns.bag_of_tasks import BagOfTasks
from repro.exceptions import ConfigurationError

__all__ = ["WorkloadSpec", "SyntheticBag", "generate_durations"]


def generate_durations(
    n: int,
    mean: float,
    cv: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw *n* lognormal durations with the given mean and CV.

    For a lognormal, ``sigma^2 = ln(1 + cv^2)`` and
    ``mu = ln(mean) - sigma^2 / 2`` reproduce the requested moments
    exactly.  CV 0 returns the constant vector.
    """
    if n < 1:
        raise ConfigurationError("n must be >= 1")
    if mean <= 0:
        raise ConfigurationError("mean duration must be positive")
    if cv < 0:
        raise ConfigurationError("cv must be non-negative")
    if cv == 0:
        return np.full(n, float(mean))
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - sigma2 / 2.0
    return rng.lognormal(mean=mu, sigma=math.sqrt(sigma2), size=n)


@dataclass
class WorkloadSpec:
    """Shape of one synthetic ensemble.

    ``wide_fraction`` of the tasks are MPI units of ``wide_cores`` cores;
    the rest are single-core.  Durations share one distribution regardless
    of width (an MPI task occupying more cores for the same time is the
    worst case for fragmentation).
    """

    ntasks: int
    mean_duration: float = 100.0
    duration_cv: float = 0.0
    wide_fraction: float = 0.0
    wide_cores: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ntasks < 1:
            raise ConfigurationError("ntasks must be >= 1")
        if not 0.0 <= self.wide_fraction <= 1.0:
            raise ConfigurationError("wide_fraction must be in [0, 1]")
        if self.wide_cores < 2:
            raise ConfigurationError("wide_cores must be >= 2")

    def realize(self) -> list[tuple[int, float]]:
        """Return the concrete ``(cores, duration)`` list, deterministically."""
        rng = np.random.default_rng(self.seed)
        durations = generate_durations(
            self.ntasks, self.mean_duration, self.duration_cv, rng
        )
        n_wide = int(round(self.wide_fraction * self.ntasks))
        # Spread wide tasks evenly through the submission order, the
        # adversarial interleaving for FIFO agents.
        wide_positions = set(
            np.linspace(0, self.ntasks - 1, n_wide).astype(int).tolist()
            if n_wide
            else []
        )
        return [
            (self.wide_cores if i in wide_positions else 1, float(durations[i]))
            for i in range(self.ntasks)
        ]

    @property
    def total_core_seconds(self) -> float:
        return sum(c * d for c, d in self.realize())


class SyntheticBag(BagOfTasks):
    """A bag of tasks realized from a :class:`WorkloadSpec`."""

    def __init__(self, spec: WorkloadSpec) -> None:
        super().__init__(size=spec.ntasks)
        self.spec = spec
        self._shapes = spec.realize()

    def task(self, instance: int) -> Kernel:
        cores, duration = self._shapes[instance - 1]
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={duration}"]
        kernel.cores = cores
        kernel.uses_mpi = cores > 1
        return kernel
