"""Fig. 4 — kernel-plugin validation (paper §IV.B).

The SAL pattern with real science kernels — Gromacs simulations and an
LSDMap analysis — over the same 24..192 task/core range on Comet.  The
claim: the toolkit's overheads are unchanged by the switch from utility
kernels (Fig. 3) to MD kernels, i.e. the kernel-plugin abstraction does
not leak workload cost into toolkit cost.
"""

from __future__ import annotations

from repro.analytics.tables import Series
from repro.experiments import fig3
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import run_on_sim
from repro.experiments.workloads import CharCountSAL, GromacsLSDMapSAL

__all__ = ["run", "main", "TASK_COUNTS", "RESOURCE"]

TASK_COUNTS = (24, 48, 96, 192)
RESOURCE = "xsede.comet"


def run(task_counts=TASK_COUNTS, resource=RESOURCE, seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        figure="fig4",
        description="Gromacs-LSDMap via SAL, tasks=cores in "
        f"{tuple(task_counts)} on {resource}: overheads vs. Fig. 3",
    )
    core_series = result.add_series(
        Series(name="core_overhead", x_label="tasks", y_label="core_s",
               expectation="constant, equal to fig3's")
    )
    pattern_series = result.add_series(
        Series(name="pattern_overhead", x_label="tasks", y_label="overhead_s",
               expectation="grows with tasks, equal to fig3's")
    )
    # Kernel invariance is judged on *per-unit* overhead: the MD workload
    # has n+1 units per configuration (n sims + 1 global analysis) while
    # the utility reference has 2n, so absolute overheads differ by design.
    md_per_unit: list[float] = []
    reference_per_unit: list[float] = []

    for n in task_counts:
        pattern = GromacsLSDMapSAL(instances=n)
        _, _, breakdown = run_on_sim(pattern, resource=resource, cores=n, seed=seed)
        core_series.append(n, breakdown.core_overhead)
        pattern_series.append(n, breakdown.pattern_overhead)
        md_per_unit.append(breakdown.pattern_overhead / breakdown.ntasks)
        result.rows.append(
            {
                "workload": "gromacs-lsdmap",
                "tasks": n,
                "exec_s": breakdown.execution_time,
                "core_overhead_s": breakdown.core_overhead,
                "pattern_overhead_s": breakdown.pattern_overhead,
                "ttc_s": breakdown.ttc,
            }
        )
        reference = CharCountSAL(n)
        _, _, ref_breakdown = run_on_sim(reference, resource=resource, cores=n, seed=seed)
        reference_per_unit.append(
            ref_breakdown.pattern_overhead / ref_breakdown.ntasks
        )
        result.rows.append(
            {
                "workload": "charcount-reference",
                "tasks": n,
                "exec_s": ref_breakdown.execution_time,
                "core_overhead_s": ref_breakdown.core_overhead,
                "pattern_overhead_s": ref_breakdown.pattern_overhead,
                "ttc_s": ref_breakdown.ttc,
            }
        )

    result.claim("EnTK core overhead is constant", core_series.is_constant(0.05))
    result.claim(
        "pattern overhead grows with the task count", pattern_series.is_increasing()
    )
    invariant = all(
        abs(md - ref) <= 0.35 * max(ref, 1e-9)
        for md, ref in zip(md_per_unit, reference_per_unit)
    )
    result.claim(
        "changing kernels does not change EnTK per-task overheads "
        "(Fig. 3 vs Fig. 4)",
        invariant,
    )
    result.notes.append(
        "fig3 companion available via repro.experiments.fig3.run() "
        f"(same machine, sizes {fig3.TASK_COUNTS})"
    )
    return result


def main() -> ExperimentResult:  # pragma: no cover - CLI convenience
    result = run()
    result.print_report()
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
