"""Fault-injection ablation: TTC inflation under node failures × retry policy.

The paper's §I motivates EnTK with "fault-tolerant execution of large
ensembles"; the task-level ablation (:func:`~repro.experiments.ablations
.fault_resilience`) quantifies that for process deaths.  This sweep probes
the *node*-level failure domain added by :mod:`repro.cluster.faults`: whole
nodes crash with an exponential MTBF, every resident unit is killed and
requeued under a :class:`~repro.pilot.retry.RetryPolicy`, and the node
stays out of service for a repair interval.

For each (node MTBF, retry policy) cell the sweep reports time to
completion, its inflation over the fault-free baseline, and the
fault-recovery overhead decomposition (wasted execution, backoff delay)
from :func:`repro.analytics.faults.fault_recovery_summary` — the
fault-domain analogue of the paper's Fig. 3 overhead decomposition.
"""

from __future__ import annotations

from repro.analytics.faults import fault_recovery_summary
from repro.analytics.tables import Series
from repro.core.kernel_plugin import Kernel
from repro.core.patterns.bag_of_tasks import BagOfTasks
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import run_on_sim
from repro.pilot.retry import RetryPolicy

__all__ = ["DEFAULT_POLICIES", "fault_ablation", "main"]


class _SleepBag(BagOfTasks):
    """N identical fixed-duration tasks."""

    def __init__(self, size: int, duration: float) -> None:
        super().__init__(size=size)
        self.duration = duration

    def task(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={self.duration}"]
        return kernel


#: The two recovery strategies the sweep contrasts: resubmit immediately
#: vs. exponential backoff.  Failed-node exclusion is off so neither can
#: run out of placeable nodes on a small pilot (exclusion is exercised by
#: the unit tests instead).
DEFAULT_POLICIES: dict[str, RetryPolicy] = {
    "eager": RetryPolicy(
        max_attempts=8, backoff_base=0.0, exclude_failed_nodes=False
    ),
    "backoff": RetryPolicy(
        max_attempts=8,
        backoff_base=5.0,
        backoff_factor=2.0,
        backoff_cap=120.0,
        exclude_failed_nodes=False,
    ),
}


def fault_ablation(
    node_mtbfs=(0.0, 150.0, 120.0),
    policies: dict[str, RetryPolicy] | None = None,
    ntasks: int = 64,
    task_duration: float = 100.0,
    repair_time: float = 120.0,
    resource: str = "xsede.comet",
    cores: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """Sweep node fault rate × retry policy; report TTC inflation.

    ``node_mtbfs`` are per-node mean seconds between failures (0 is the
    fault-free baseline, run once).  Every run must still complete all
    *ntasks* tasks — that is the fault-tolerance claim under test; the
    price of the faults shows up as TTC inflation and a nonzero
    fault-recovery overhead column.
    """
    policies = policies if policies is not None else DEFAULT_POLICIES
    result = ExperimentResult(
        figure="ablation:node-faults",
        description=(
            f"{ntasks} x {task_duration}s tasks on a {cores}-core pilot "
            f"({resource}); node MTBF in {tuple(node_mtbfs)}s x retry "
            f"policies {tuple(policies)}"
        ),
    )

    def one_run(mtbf: float, policy: RetryPolicy | None):
        pattern = _SleepBag(ntasks, task_duration)
        _, handle, breakdown = run_on_sim(
            pattern,
            resource=resource,
            cores=cores,
            seed=seed,
            node_mtbf=mtbf,
            node_repair_time=repair_time,
            retry_policy=policy,
        )
        summary = fault_recovery_summary(handle.profile)
        done = sum(u.state.value == "DONE" for u in pattern.units)
        return breakdown, summary, done

    # Fault-free baseline (policy is irrelevant without faults: with no
    # kills there is nothing to retry).
    clean_breakdown, clean_summary, clean_done = one_run(0.0, None)
    clean_ttc = clean_breakdown.ttc
    result.rows.append(
        {
            "policy": "-",
            "node_mtbf_s": 0.0,
            "ttc_s": clean_ttc,
            "inflation": 1.0,
            "node_failures": clean_summary.node_failures,
            "units_killed": clean_summary.units_killed,
            "requeues": clean_summary.unit_requeues,
            "fault_overhead_s": clean_breakdown.fault_overhead,
            "completed": clean_done,
        }
    )

    inflation_series: dict[str, Series] = {}
    for name in policies:
        inflation_series[name] = result.add_series(
            Series(
                name=f"inflation[{name}]",
                x_label="fault_rate_per_node_hour",
                y_label="ttc_inflation",
                expectation="grows with the node fault rate",
            )
        )

    for name, policy in policies.items():
        for mtbf in node_mtbfs:
            if mtbf <= 0:
                continue
            breakdown, summary, done = one_run(mtbf, policy)
            inflation = breakdown.ttc / clean_ttc if clean_ttc > 0 else 1.0
            inflation_series[name].append(3600.0 / mtbf, inflation)
            result.rows.append(
                {
                    "policy": name,
                    "node_mtbf_s": mtbf,
                    "ttc_s": breakdown.ttc,
                    "inflation": inflation,
                    "node_failures": summary.node_failures,
                    "units_killed": summary.units_killed,
                    "requeues": summary.unit_requeues,
                    "fault_overhead_s": breakdown.fault_overhead,
                    "completed": done,
                }
            )

    faulted = [row for row in result.rows if row["node_mtbf_s"] > 0]
    result.claim(
        "the fault-free baseline pays zero fault-recovery overhead",
        clean_breakdown.fault_overhead == 0.0 and clean_summary.overhead == 0.0,
    )
    result.claim(
        "every run completes all tasks despite node failures",
        all(row["completed"] == ntasks for row in result.rows),
    )
    result.claim(
        "node failures occur and units are requeued in every faulted run",
        bool(faulted)
        and all(
            row["node_failures"] > 0 and row["requeues"] > 0 for row in faulted
        ),
    )
    result.claim(
        "faulted runs report nonzero fault-recovery overhead",
        all(row["fault_overhead_s"] > 0 for row in faulted),
    )
    result.claim(
        "faults never make the ensemble faster (TTC inflation >= 1)",
        all(row["inflation"] >= 0.999 for row in faulted),
    )
    result.notes.append(
        "inflation = TTC / fault-free TTC at the same seed; "
        "fault_overhead_s = wasted execution + retry backoff "
        "(+ pilot resubmission downtime, not exercised here)"
    )
    return result


def main() -> None:  # pragma: no cover - convenience runner
    print(fault_ablation().report())


if __name__ == "__main__":  # pragma: no cover
    main()
