"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's figures and probe *why* the design works:

* ``pilot_vs_batch``  — the pilot abstraction against the "scripting"
  baseline the paper's introduction argues against: one batch job per task,
  each paying its own queue wait.
* ``scheduler_policy`` — the agent's backfill queue against strict FIFO
  under heterogeneous task sizes.
* ``overhead_scaling`` — EnTK pattern overhead vs. task count with
  everything else held fixed (isolates the ∝-tasks claim of Fig. 3).
"""

from __future__ import annotations

from repro.analytics.metrics import phase_execution_time
from repro.analytics.tables import Series
from repro.cluster.job import BatchJob
from repro.cluster.platforms import get_platform
from repro.core.kernel_plugin import Kernel
from repro.core.patterns.bag_of_tasks import BagOfTasks
from repro.experiments.base import ExperimentResult
from repro.experiments.harness import run_on_sim
from repro.experiments.workloads import CharCountPipeline
from repro.saga.adaptors.sim import SimContext

__all__ = [
    "pilot_vs_batch",
    "scheduler_policy",
    "overhead_scaling",
    "fault_resilience",
    "heterogeneity_utilization",
    "patterns_vs_dag",
]


class _SleepBag(BagOfTasks):
    """N identical fixed-duration tasks."""

    def __init__(self, size: int, duration: float) -> None:
        super().__init__(size=size)
        self.duration = duration

    def task(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={self.duration}"]
        return kernel


class _MixedBag(BagOfTasks):
    """Alternating wide (mpi) and narrow tasks — a fragmentation stressor."""

    def __init__(self, size: int, duration: float, wide_cores: int) -> None:
        super().__init__(size=size)
        self.duration = duration
        self.wide_cores = wide_cores

    def task(self, instance: int) -> Kernel:
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={self.duration}"]
        if instance % 2 == 0:
            kernel.cores = self.wide_cores
            kernel.uses_mpi = True
        return kernel


def pilot_vs_batch(
    ntasks: int = 64,
    task_duration: float = 120.0,
    resource: str = "xsede.comet",
    cores: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """TTC of one pilot vs. one batch job per task, with queue waits on."""
    result = ExperimentResult(
        figure="ablation:pilot-vs-batch",
        description=f"{ntasks} x {task_duration}s tasks on {resource} "
        f"({cores} cores): pilot vs. per-task batch submission",
    )
    # --- pilot: one container job, agent schedules all tasks -----------------
    pattern = _SleepBag(ntasks, task_duration)
    _, handle, breakdown = run_on_sim(
        pattern,
        resource=resource,
        cores=cores,
        seed=seed,
        model_queue_wait=True,
    )
    pilot_ttc = breakdown.ttc
    queue_wait = handle.pilot.saga_job.timestamps.get("RUNNING", 0.0)
    result.rows.append(
        {"strategy": "pilot", "ttc_s": pilot_ttc, "exec_s": breakdown.execution_time,
         "pilot_queue_wait_s": queue_wait}
    )

    # --- baseline: every task is its own batch job ----------------------------
    platform = get_platform(resource)
    context = SimContext(platform=platform, model_queue_wait=True)
    done_times: list[float] = []

    def on_end(job: BatchJob, state) -> None:
        done_times.append(context.sim.now)

    for _ in range(ntasks):
        context.batch.submit(
            BatchJob(nodes=1, walltime=3600.0, duration=task_duration,
                     on_end=on_end)
        )
    context.sim.run()
    batch_ttc = max(done_times) if done_times else 0.0
    result.rows.append({"strategy": "per-task batch", "ttc_s": batch_ttc,
                        "exec_s": float(task_duration), "pilot_queue_wait_s": 0.0})

    result.claim(
        "the pilot completes the ensemble faster than per-task batch jobs",
        pilot_ttc < batch_ttc,
    )
    result.claim(
        "per-task batch pays queue wait per task (TTC >> task duration)",
        batch_ttc > 2 * task_duration,
    )
    result.notes.append(
        f"speedup pilot vs batch: {batch_ttc / pilot_ttc:.2f}x"
        if pilot_ttc > 0
        else "n/a"
    )
    return result


def scheduler_policy(
    ntasks: int = 32,
    duration: float = 60.0,
    wide_cores: int = 12,
    resource: str = "xsede.comet",
    cores: int = 24,
    seed: int = 0,
) -> ExperimentResult:
    """Agent backfill vs. strict FIFO on a mixed-width bag of tasks."""
    result = ExperimentResult(
        figure="ablation:scheduler-policy",
        description=f"{ntasks} mixed-width tasks ({wide_cores}-core MPI "
        f"alternating with 1-core) on a {cores}-core pilot",
    )
    ttcs = {}
    for policy in ("backfill", "fifo"):
        pattern = _MixedBag(ntasks, duration, wide_cores)
        _, _, breakdown = run_on_sim(
            pattern,
            resource=resource,
            cores=cores,
            seed=seed,
            agent_policy=policy,
        )
        ttcs[policy] = breakdown.ttc
        result.rows.append(
            {"policy": policy, "ttc_s": breakdown.ttc,
             "exec_s": breakdown.execution_time}
        )
    result.claim(
        "backfill is no slower than FIFO on heterogeneous widths",
        ttcs["backfill"] <= ttcs["fifo"] * 1.001,
    )
    result.notes.append(
        f"fifo/backfill TTC ratio: {ttcs['fifo'] / ttcs['backfill']:.2f}"
    )
    return result


def overhead_scaling(
    task_counts=(16, 64, 256, 1024),
    resource: str = "xsede.comet",
    cores: int = 256,
    seed: int = 0,
) -> ExperimentResult:
    """EnTK pattern overhead vs. task count at fixed pilot size."""
    result = ExperimentResult(
        figure="ablation:overhead-scaling",
        description=f"pattern overhead vs tasks in {tuple(task_counts)} "
        f"(pipeline pattern, fixed {cores}-core pilot on {resource})",
    )
    overhead_series = result.add_series(
        Series(name="pattern_overhead", x_label="tasks", y_label="overhead_s",
               expectation="proportional to the task count")
    )
    for n in task_counts:
        pattern = CharCountPipeline(n)
        _, _, breakdown = run_on_sim(pattern, resource=resource, cores=cores, seed=seed)
        overhead_series.append(n, breakdown.pattern_overhead)
        result.rows.append(
            {"tasks": n, "pattern_overhead_s": breakdown.pattern_overhead,
             "per_task_ms": 1000.0 * breakdown.pattern_overhead / (2 * n)}
        )
    result.claim(
        "pattern overhead grows with the task count",
        overhead_series.is_increasing(),
    )
    # Proportionality: the model is affine (per-batch constant + per-task
    # cost), so judge the *marginal* per-task cost between consecutive
    # sizes — it must be roughly constant.
    slopes = [
        (overhead_series.y[i + 1] - overhead_series.y[i])
        / (overhead_series.x[i + 1] - overhead_series.x[i])
        for i in range(len(overhead_series.x) - 1)
    ]
    result.claim(
        "marginal per-task overhead is roughly constant (true proportionality)",
        max(slopes) <= 1.5 * min(slopes),
    )
    return result


def fault_resilience(
    fault_rates=(0.0, 0.1, 0.2, 0.4),
    ntasks: int = 64,
    task_duration: float = 100.0,
    retries: int = 10,
    resource: str = "xsede.comet",
    cores: int = 64,
    seed: int = 0,
) -> ExperimentResult:
    """TTC and completion under injected task faults, with retries on.

    Quantifies the paper's fault-tolerance requirement (§I): retried
    ensembles always complete, and the TTC penalty grows with the fault
    rate but stays bounded (a failed task wastes at most one partial
    execution per attempt).
    """
    result = ExperimentResult(
        figure="ablation:fault-resilience",
        description=f"{ntasks} x {task_duration}s tasks, fault rates "
        f"{tuple(fault_rates)}, {retries} retries, {cores}-core pilot",
    )
    ttc_series = result.add_series(
        Series(name="ttc", x_label="fault_rate", y_label="ttc_s",
               expectation="grows with the fault rate, bounded")
    )
    for rate in fault_rates:

        class _Bag(_SleepBag):
            max_task_retries = retries

        pattern = _Bag(ntasks, task_duration)
        _, handle, breakdown = run_on_sim(
            pattern,
            resource=resource,
            cores=cores,
            seed=seed,
            fault_rate=rate,
        )
        faults = len(handle.profile.events("task_fault"))
        done = sum(u.state.value == "DONE" for u in pattern.units)
        ttc_series.append(rate, breakdown.ttc)
        result.rows.append(
            {
                "fault_rate": rate,
                "ttc_s": breakdown.ttc,
                "faults": faults,
                "attempts": len(pattern.units),
                "completed": done,
            }
        )
    result.claim(
        "every ensemble completes despite faults (retry absorbs them)",
        all(row["completed"] == ntasks for row in result.rows),
    )
    result.claim(
        "TTC grows with the fault rate",
        ttc_series.y[-1] > ttc_series.y[0],
    )
    result.claim(
        "the worst-case TTC stays within 4x of the clean run (bounded cost)",
        ttc_series.y[-1] <= 4.0 * ttc_series.y[0],
    )
    return result


def heterogeneity_utilization(
    cvs=(0.0, 0.5, 1.0, 2.0),
    ntasks: int = 128,
    mean_duration: float = 100.0,
    wide_fraction: float = 0.25,
    wide_cores: int = 8,
    resource: str = "xsede.comet",
    cores: int = 48,
    seed: int = 0,
) -> ExperimentResult:
    """Pilot utilization vs. task-duration heterogeneity (lognormal CV).

    The paper's experiments are homogeneous; real (and adaptive) ensembles
    are not.  This ablation sweeps the duration CV of a mixed-width
    synthetic ensemble and reports TTC and core utilization for the
    backfilling agent, plus the FIFO comparison at the highest CV.
    """
    from repro.analytics.metrics import utilization
    from repro.experiments.generator import SyntheticBag, WorkloadSpec

    result = ExperimentResult(
        figure="ablation:heterogeneity",
        description=f"{ntasks} mixed tasks ({wide_fraction:.0%} x "
        f"{wide_cores}-core), duration CV in {tuple(cvs)}, "
        f"{cores}-core pilot",
    )
    util_series = result.add_series(
        Series(name="utilization", x_label="cv", y_label="fraction",
               expectation="degrades as heterogeneity grows (stragglers)")
    )
    for cv in cvs:
        spec = WorkloadSpec(
            ntasks=ntasks,
            mean_duration=mean_duration,
            duration_cv=cv,
            wide_fraction=wide_fraction,
            wide_cores=wide_cores,
            seed=seed,
        )
        pattern = SyntheticBag(spec)
        _, _, breakdown = run_on_sim(
            pattern, resource=resource, cores=cores, seed=seed
        )
        util = utilization(
            pattern.units, total_cores=cores, span=breakdown.execution_time
        )
        util_series.append(cv, util)
        result.rows.append(
            {
                "cv": cv,
                "ttc_s": breakdown.ttc,
                "exec_s": breakdown.execution_time,
                "utilization": util,
            }
        )

    # FIFO comparison at the highest heterogeneity.
    spec = WorkloadSpec(
        ntasks=ntasks, mean_duration=mean_duration, duration_cv=cvs[-1],
        wide_fraction=wide_fraction, wide_cores=wide_cores, seed=seed,
    )
    pattern = SyntheticBag(spec)
    _, _, fifo_breakdown = run_on_sim(
        pattern, resource=resource, cores=cores, seed=seed,
        agent_policy="fifo",
    )
    backfill_ttc = result.rows[-1]["ttc_s"]
    result.rows.append(
        {
            "cv": cvs[-1],
            "ttc_s": fifo_breakdown.ttc,
            "exec_s": fifo_breakdown.execution_time,
            "utilization": float("nan"),
        }
    )
    result.notes.append(
        f"FIFO at cv={cvs[-1]}: TTC {fifo_breakdown.ttc:.1f}s vs backfill "
        f"{backfill_ttc:.1f}s "
        f"({fifo_breakdown.ttc / backfill_ttc:.2f}x)"
    )
    result.claim(
        "utilization degrades with heterogeneity",
        util_series.y[-1] < util_series.y[0],
    )
    result.claim(
        "backfill beats (or ties) FIFO under heterogeneity",
        backfill_ttc <= fifo_breakdown.ttc * 1.001,
    )
    return result


def patterns_vs_dag(
    sizes=(8, 32, 128),
    resource: str = "xsede.comet",
    seed: int = 0,
) -> ExperimentResult:
    """EnTK patterns vs. the generic-DAG programming model (paper §II).

    The char-count workload is run twice per size: as an
    :class:`EnsembleOfPipelines` (the user writes two stage methods) and
    as a mechanically-translated explicit DAG (the DAGMan/Pegasus model:
    the user owns every task and every precedence edge).  Execution is on
    the same runtime, so TTC parity shows the *pattern* costs nothing at
    run time — while the edge counts quantify the expression burden the
    paper's special-purpose design removes.
    """
    from repro.baselines.dag import express_eop_as_dag

    result = ExperimentResult(
        figure="ablation:patterns-vs-dag",
        description=f"char-count pipelines as EnTK pattern vs explicit DAG, "
        f"sizes {tuple(sizes)} on {resource}",
    )
    parity = True
    for n in sizes:
        pattern = CharCountPipeline(n)
        _, _, pattern_breakdown = run_on_sim(
            pattern, resource=resource, cores=n, seed=seed
        )
        dag = express_eop_as_dag(CharCountPipeline(n))
        tasks, edges = dag.task_count, dag.edge_count
        _, _, dag_breakdown = run_on_sim(
            dag, resource=resource, cores=n, seed=seed
        )
        parity &= (
            abs(dag_breakdown.execution_time - pattern_breakdown.execution_time)
            <= 0.15 * pattern_breakdown.execution_time
        )
        result.rows.append(
            {
                "size": n,
                "model": "entk-pattern",
                "user_edges": 0,
                "tasks": len(pattern.units),
                "exec_s": pattern_breakdown.execution_time,
                "ttc_s": pattern_breakdown.ttc,
            }
        )
        result.rows.append(
            {
                "size": n,
                "model": "explicit-dag",
                "user_edges": edges,
                "tasks": tasks,
                "exec_s": dag_breakdown.execution_time,
                "ttc_s": dag_breakdown.ttc,
            }
        )
    result.claim(
        "execution parity: the pattern abstraction costs nothing at run time",
        parity,
    )
    result.claim(
        "the DAG model's user-owned edges grow with the ensemble size",
        all(
            row["user_edges"] == row["size"]
            for row in result.rows
            if row["model"] == "explicit-dag"
        ),
    )
    return result
