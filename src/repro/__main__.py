"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``platforms``            list the simulated platform profiles
``kernels``              list the registered kernel plugins
``figure FIG``           rerun one paper figure (fig3..fig9); ``--small``
                         uses a reduced parameter set for a quick look
``ablation NAME``        run one ablation (pilot_vs_batch,
                         scheduler_policy, overhead_scaling,
                         fault_resilience, fault_ablation)
``plan``                 ask the execution-strategy layer where to run a
                         workload (``--ntasks --seconds --objective``)
``lint``                 run the repro.lint static-analysis pass
                         (determinism, dataclass, state-machine, event rules)
``trace``                inspect a JSONL trace dump: summarize, export
                         Chrome trace JSON (Perfetto), critical-path
"""

from __future__ import annotations

import argparse
import inspect
import sys


def cmd_platforms(_args) -> int:
    from repro.cluster.platforms import get_platform, list_platforms

    for name in list_platforms():
        platform = get_platform(name)
        print(
            f"{name:<18} {platform.nodes:>6} nodes x {platform.cores_per_node:>3} "
            f"cores, {platform.node.memory_gb:>6.0f} GB/node  {platform.description}"
        )
    return 0


def cmd_kernels(_args) -> int:
    from repro.core.kernel_registry import get_kernel_plugin, list_kernel_plugins

    for name in list_kernel_plugins():
        plugin = get_kernel_plugin(name)
        print(f"{name:<24} {plugin.description}")
    return 0


_SMALL_FIGURE_KWARGS = {
    "fig3": {"task_counts": (8, 16, 32)},
    "fig4": {"task_counts": (8, 16)},
    "fig5": {"replicas": 64, "core_counts": (8, 16, 32, 64)},
    "fig6": {"replica_counts": (8, 16, 32, 64)},
    "fig7": {"simulations": 64, "core_counts": (8, 16, 32, 64)},
    "fig8": {"sim_counts": (8, 16, 32, 64)},
    "fig9": {"simulations": 8, "cores_per_sim": (1, 4, 8)},
}


def cmd_figure(args) -> int:
    from repro import experiments
    from repro.experiments import harness

    name = args.figure
    if name not in _SMALL_FIGURE_KWARGS:
        print(f"unknown figure {name!r}; pick one of "
              f"{sorted(_SMALL_FIGURE_KWARGS)}", file=sys.stderr)
        return 2
    module = getattr(experiments, name)
    kwargs = dict(_SMALL_FIGURE_KWARGS[name]) if args.small else {}
    accepts = inspect.signature(module.run).parameters
    for option, flag, value in (("parallel", "--parallel", args.parallel),
                                ("cache_dir", "--cache", args.cache)):
        if not value:
            continue
        if option in accepts:
            kwargs[option] = value
        else:
            print(f"note: {name} does not support {flag}; ignoring it",
                  file=sys.stderr)
    if args.trace_out:
        harness.set_trace_out(args.trace_out)
    if args.spool:
        harness.set_spool_dir(args.spool)
    try:
        result = module.run(**kwargs)
    finally:
        harness.set_trace_out(None)
        harness.set_spool_dir(None)
    result.print_report()
    return 0 if result.all_claims_hold else 1


def cmd_ablation(args) -> int:
    from repro.experiments import ablations
    from repro.experiments.fault_ablation import fault_ablation

    known = list(ablations.__all__) + ["fault_ablation"]
    runner = getattr(ablations, args.name, None)
    if args.name == "fault_ablation":
        runner = fault_ablation
    if runner is None or args.name.startswith("_"):
        print(f"unknown ablation {args.name!r}; pick one of "
              f"{known}", file=sys.stderr)
        return 2
    result = runner()
    result.print_report()
    return 0 if result.all_claims_hold else 1


def cmd_plan(args) -> int:
    from repro.core.strategy import WorkloadEstimate, select_resource

    workload = WorkloadEstimate(
        ntasks=args.ntasks,
        task_seconds=args.seconds,
        cores_per_task=args.cores_per_task,
        stages=args.stages,
    )
    plan = select_resource(workload, args.resources, objective=args.objective)
    print(f"resource : {plan.resource}")
    print(f"cores    : {plan.cores}")
    print(f"TTC est. : {plan.estimated_ttc:.1f} s "
          f"(queue wait {plan.estimated_queue_wait:.1f} s)")
    print(f"cost est.: {plan.estimated_cost_core_hours:.1f} core-hours")
    return 0


def cmd_lint(args) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args)


def cmd_trace(args) -> int:
    from repro.telemetry.cli import run_trace

    return run_trace(args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ensemble Toolkit reproduction CLI",
        epilog="run `repro <command> --help` for per-command options",
    )
    sub = parser.add_subparsers(
        dest="command", required=True, metavar="command",
        title="commands",
    )

    sub.add_parser(
        "platforms", help="list the simulated platform profiles"
    ).set_defaults(fn=cmd_platforms)
    sub.add_parser(
        "kernels", help="list the registered kernel plugins"
    ).set_defaults(fn=cmd_kernels)

    figure = sub.add_parser(
        "figure", help="rerun one paper figure (fig3 .. fig9)"
    )
    figure.add_argument("figure", help="fig3 .. fig9")
    figure.add_argument("--small", action="store_true",
                        help="reduced parameters for a quick run")
    figure.add_argument("--trace-out", metavar="DIR", default=None,
                        help="dump a Chrome trace per run into DIR")
    figure.add_argument("--spool", metavar="DIR", default=None,
                        help="stream run traces to NDJSON spool files in "
                             "DIR instead of keeping them in memory "
                             "(bounded-memory runs; identical content)")
    figure.add_argument("--parallel", type=int, default=0, metavar="N",
                        help="run sweep points across N worker processes "
                             "(figures built on the sweep runner)")
    figure.add_argument("--cache", metavar="DIR", default=None,
                        help="reuse finished sweep points from this run "
                             "cache directory")
    figure.set_defaults(fn=cmd_figure)

    ablation = sub.add_parser(
        "ablation",
        help="run one ablation (pilot_vs_batch, scheduler_policy, "
             "overhead_scaling, fault_resilience, fault_ablation)",
    )
    ablation.add_argument("name")
    ablation.set_defaults(fn=cmd_ablation)

    lint = sub.add_parser(
        "lint",
        help="static analysis: determinism (DET), dataclass (DC), "
             "state-machine (SM) and event-callback (EVT) rules",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(fn=cmd_lint)

    trace = sub.add_parser(
        "trace",
        help="inspect a JSONL trace dump: summarize / export (Chrome "
             "trace JSON for Perfetto) / critical-path",
    )
    from repro.telemetry.cli import add_trace_arguments

    add_trace_arguments(trace)
    trace.set_defaults(fn=cmd_trace)

    plan = sub.add_parser(
        "plan", help="resource selection for a workload (execution strategy)"
    )
    plan.add_argument("--ntasks", type=int, required=True)
    plan.add_argument("--seconds", type=float, required=True,
                      help="single-core seconds per task")
    plan.add_argument("--cores-per-task", type=int, default=1)
    plan.add_argument("--stages", type=int, default=1)
    plan.add_argument("--objective", choices=("ttc", "cost"), default="ttc")
    plan.add_argument(
        "--resources",
        nargs="+",
        default=["xsede.comet", "xsede.stampede", "xsede.supermic"],
    )
    plan.set_defaults(fn=cmd_plan)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
