"""A small discrete-event simulation (DES) engine.

The engine drives every simulated-platform experiment in this package: the
batch queue of a cluster, the pilot agent's scheduling loop and the modelled
execution of compute units are all expressed as timestamped events on one
:class:`Simulator`.

Design notes
------------
* Events are ``(time, priority, seq, callback)`` tuples on a heap; ``seq`` is
  a monotonically increasing tie-breaker, so the engine is deterministic:
  same seed, same event insertion order => identical trajectories.
* Components never advance the clock themselves.  They read it through the
  simulator's :class:`~repro.utils.timing.VirtualClock` and schedule future
  callbacks with :meth:`Simulator.schedule`.
* Randomness is drawn from named :class:`RandomStreams` so adding a new
  stochastic component cannot perturb the draws of existing ones.
"""

from repro.eventsim.simulator import Event, Simulator
from repro.eventsim.random import RandomStreams

__all__ = ["Event", "Simulator", "RandomStreams"]
