"""The discrete-event simulator core."""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable

from repro.exceptions import SimulationError
from repro.utils.logger import get_logger
from repro.utils.timing import VirtualClock

__all__ = ["Event", "Simulator"]

log = get_logger("eventsim")

#: Event lifecycle markers (kept as plain ints for speed).
_PENDING, _EXECUTED, _CANCELLED = 0, 1, 2

#: Purge the cancelled bookkeeping once this many tombstones accumulate
#: *and* they outnumber the live events (see :meth:`Simulator._purge`).
_PURGE_THRESHOLD = 512


class Event:
    """A scheduled callback.

    Ordering on the heap is by ``(time, priority, seq)``; *priority*
    breaks same-time ties deterministically (lower runs first) and *seq*
    preserves insertion order among equal priorities.  The heap stores
    keyed tuples — events themselves are never compared, so scheduling
    pays no dataclass ``__lt__`` overhead.
    """

    __slots__ = ("time", "priority", "seq", "callback", "label", "_status")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[[], Any],
        label: str = "",
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.label = label
        self._status = _PENDING

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = ("pending", "executed", "cancelled")[self._status]
        return (
            f"<Event t={self.time} prio={self.priority} seq={self.seq} "
            f"label={self.label!r} {status}>"
        )


class Simulator:
    """A deterministic event-driven virtual-time executor.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(2.0, lambda: out.append("b"))
    >>> _ = sim.schedule(1.0, lambda: out.append("a"))
    >>> sim.run()
    >>> out, sim.now
    (['a', 'b'], 2.0)
    """

    def __init__(self, start: float = 0.0) -> None:
        self.clock = VirtualClock(start)
        self._heap: list[tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self._events_processed = 0
        self._running = False

    # -- introspection -----------------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self.clock.now()

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (cancelled events excluded)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap) - len(self._cancelled)

    # -- scheduling --------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule *callback* to run ``delay`` seconds from now.

        Returns the :class:`Event`, which can be passed to :meth:`cancel`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.clock.now() + delay
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, label)
        heapq.heappush(self._heap, (time, priority, seq, event))
        return event

    def schedule_at(
        self,
        timestamp: float,
        callback: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule *callback* at absolute virtual time *timestamp*."""
        return self.schedule(
            timestamp - self.now, callback, priority=priority, label=label
        )

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (lazy removal; cheap).

        Cancelling an event that already ran — or was already cancelled —
        is a no-op: only genuinely pending events leave a tombstone in the
        cancelled set, so the set cannot accumulate stale seqs (they used
        to leak forever when callers cancelled completed events).
        """
        if event._status != _PENDING:
            return
        event._status = _CANCELLED
        self._cancelled.add(event.seq)
        if len(self._cancelled) > _PURGE_THRESHOLD:
            self._purge()

    def _purge(self) -> None:
        """Rebuild the heap without cancelled entries when they dominate.

        Cancellation is lazy (tombstones skipped at pop time), which is
        O(1) — but a workload that schedules and cancels heavily (e.g.
        fault-injection kills) can leave the heap mostly dead weight.
        Rebuilding is O(live) and resets the tombstone set.
        """
        if len(self._cancelled) * 2 < len(self._heap):
            return
        self._heap = [
            entry for entry in self._heap if entry[3]._status == _PENDING
        ]
        heapq.heapify(self._heap)
        self._cancelled.clear()

    # -- execution ---------------------------------------------------------

    def step(self) -> Event | None:
        """Execute the next pending event; return it, or ``None`` if empty."""
        while self._heap:
            event = heapq.heappop(self._heap)[3]
            if event._status != _PENDING:
                self._cancelled.discard(event.seq)
                continue
            event._status = _EXECUTED
            self.clock.advance_to(event.time)
            self._events_processed += 1
            event.callback()
            return event
        return None

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Run until the heap drains, *until* is reached, or *max_events*.

        ``until`` is inclusive: an event stamped exactly at ``until`` runs.
        Guards against re-entrant calls (an event callback calling ``run``
        would corrupt the clock invariants).
        """
        if self._running:
            raise SimulationError("Simulator.run() is not re-entrant")
        self._running = True
        executed = 0
        try:
            while self._heap:
                if max_events is not None and executed >= max_events:
                    return
                # Peek past cancelled events to honour `until` correctly.
                while self._heap and self._heap[0][3]._status != _PENDING:
                    self._cancelled.discard(heapq.heappop(self._heap)[2])
                if not self._heap:
                    break
                if until is not None and self._heap[0][0] > until:
                    self.clock.advance_to(until)
                    return
                if self.step() is not None:
                    executed += 1
            # Heap drained: still honour the requested horizon, so callers
            # can charge pure time costs with no events pending.
            if until is not None and until > self.now:
                self.clock.advance_to(until)
        finally:
            self._running = False

    def run_until_idle(self) -> None:
        """Drain every pending event (alias of :meth:`run` with no bound)."""
        self.run()
