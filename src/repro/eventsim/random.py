"""Named, independent random streams for deterministic simulations.

A simulation draws randomness for several unrelated purposes (queue-wait
jitter, task-duration noise, network latency noise).  If all of them shared
one generator, adding a draw in one component would shift every later draw in
every other component and silently change results.  ``RandomStreams`` gives
each purpose its own :class:`numpy.random.Generator`, seeded from a master
seed and the stream's *name*, so streams are stable under the addition of new
streams.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RandomStreams"]


class RandomStreams:
    """Factory of independent named RNG streams.

    >>> rs = RandomStreams(seed=42)
    >>> a1 = rs.get("qwait").standard_normal()
    >>> rs2 = RandomStreams(seed=42)
    >>> float(a1) == float(rs2.get("qwait").standard_normal())
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream called *name*."""
        if name not in self._streams:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            child_seed = int.from_bytes(digest[:8], "little")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child factory whose streams are independent of ours."""
        digest = hashlib.sha256(f"{self.seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))
