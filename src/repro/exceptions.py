"""Exception hierarchy for the repro (Ensemble Toolkit reproduction) package.

Every subsystem raises exceptions derived from :class:`ReproError` so that
callers can distinguish toolkit failures from programming errors.  The
hierarchy mirrors the layering of the package: SAGA-level errors, pilot
runtime errors and EnTK (core) errors each have their own branch.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "StateTransitionError",
    "SimulationError",
    "PlatformError",
    "QueuePolicyError",
    "SagaError",
    "BadParameter",
    "NoSuccess",
    "IncorrectState",
    "PilotError",
    "SchedulingError",
    "StagingError",
    "LaunchError",
    "EnTKError",
    "PatternError",
    "KernelError",
    "NoKernelPluginError",
    "ResourceHandleError",
    "AllocationError",
]


class ReproError(Exception):
    """Base class of every exception raised by this package."""


class ConfigurationError(ReproError):
    """A configuration value is missing, malformed or inconsistent."""


class StateTransitionError(ReproError):
    """An entity was asked to move along an illegal state-machine edge."""

    def __init__(self, entity: str, current: str, target: str) -> None:
        self.entity = entity
        self.current = current
        self.target = target
        super().__init__(
            f"{entity}: illegal state transition {current!r} -> {target!r}"
        )


# --------------------------------------------------------------------------
# eventsim / cluster layer
# --------------------------------------------------------------------------

class SimulationError(ReproError):
    """The discrete-event simulator detected an inconsistency."""


class PlatformError(ReproError):
    """A simulated platform was asked for something it cannot provide."""


class QueuePolicyError(PlatformError):
    """A batch job violates the queue policy (size, walltime, ...)."""


# --------------------------------------------------------------------------
# SAGA layer
# --------------------------------------------------------------------------

class SagaError(ReproError):
    """Base class for SAGA-like job API errors."""


class BadParameter(SagaError):
    """A job description or API call carried an invalid parameter."""


class NoSuccess(SagaError):
    """The backend failed to perform the requested operation."""


class IncorrectState(SagaError):
    """The operation is not legal in the entity's current state."""


# --------------------------------------------------------------------------
# pilot runtime layer
# --------------------------------------------------------------------------

class PilotError(ReproError):
    """Base class for pilot-runtime errors."""


class SchedulingError(PilotError):
    """A unit cannot be scheduled (e.g. larger than the pilot)."""


class StagingError(PilotError):
    """Input or output staging failed."""


class LaunchError(PilotError):
    """The launch method could not start the unit."""


# --------------------------------------------------------------------------
# EnTK core layer
# --------------------------------------------------------------------------

class EnTKError(ReproError):
    """Base class for Ensemble-Toolkit-level errors."""


class PatternError(EnTKError):
    """An execution pattern is malformed or used incorrectly."""


class KernelError(EnTKError):
    """A kernel plugin is malformed or failed to bind."""


class NoKernelPluginError(KernelError):
    """No kernel plugin is registered under the requested name."""

    def __init__(self, name: str, known: list[str] | None = None) -> None:
        self.name = name
        hint = f" (known: {', '.join(sorted(known))})" if known else ""
        super().__init__(f"no kernel plugin registered as {name!r}{hint}")


class ResourceHandleError(EnTKError):
    """The resource handle is in the wrong state for the operation."""


class AllocationError(ResourceHandleError):
    """Resource allocation failed or timed out."""
