"""State models of pilots and compute units.

The unit model follows RADICAL-Pilot's split between client-side (unit
manager) and agent-side states, because the paper's overhead decomposition
(Fig. 3) hangs durations off exactly these transitions.
"""

from __future__ import annotations

import enum

from repro.exceptions import StateTransitionError

__all__ = ["PilotState", "UnitState", "validate_pilot_edge", "validate_unit_edge"]


class PilotState(str, enum.Enum):
    """NEW -> PENDING -> ACTIVE -> {DONE, FAILED, CANCELED}.

    ``ACTIVE -> PENDING`` is the resubmission edge: a pilot whose container
    job died re-enters the batch queue (see
    :meth:`~repro.pilot.pilot_manager.PilotManager`) instead of dead-ending
    in FAILED while resubmission budget remains.
    """

    NEW = "NEW"
    PENDING = "PENDING"
    ACTIVE = "ACTIVE"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"

    @property
    def is_final(self) -> bool:
        return self in (PilotState.DONE, PilotState.FAILED, PilotState.CANCELED)


_PILOT_EDGES: dict[PilotState, frozenset[PilotState]] = {
    PilotState.NEW: frozenset(
        {PilotState.PENDING, PilotState.FAILED, PilotState.CANCELED}
    ),
    PilotState.PENDING: frozenset(
        {PilotState.ACTIVE, PilotState.FAILED, PilotState.CANCELED}
    ),
    PilotState.ACTIVE: frozenset(
        {PilotState.PENDING, PilotState.DONE, PilotState.FAILED, PilotState.CANCELED}
    ),
    PilotState.DONE: frozenset(),
    PilotState.FAILED: frozenset(),
    PilotState.CANCELED: frozenset(),
}


class UnitState(str, enum.Enum):
    """Client-side then agent-side unit states.

    NEW -> UMGR_SCHEDULING -> AGENT_STAGING_INPUT -> AGENT_SCHEDULING
        -> EXECUTING -> AGENT_STAGING_OUTPUT -> DONE
    with FAILED/CANCELED reachable from every non-final state.

    Two *requeue* edges point backwards: a unit killed by a node or pilot
    failure while scheduled or executing returns to UMGR_SCHEDULING, so the
    unit manager can resubmit the same unit under its retry policy.
    """

    NEW = "NEW"
    UMGR_SCHEDULING = "UMGR_SCHEDULING"
    AGENT_STAGING_INPUT = "AGENT_STAGING_INPUT"
    AGENT_SCHEDULING = "AGENT_SCHEDULING"
    EXECUTING = "EXECUTING"
    AGENT_STAGING_OUTPUT = "AGENT_STAGING_OUTPUT"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELED = "CANCELED"

    @property
    def is_final(self) -> bool:
        return self in (UnitState.DONE, UnitState.FAILED, UnitState.CANCELED)


_UNIT_ORDER = [
    UnitState.NEW,
    UnitState.UMGR_SCHEDULING,
    UnitState.AGENT_STAGING_INPUT,
    UnitState.AGENT_SCHEDULING,
    UnitState.EXECUTING,
    UnitState.AGENT_STAGING_OUTPUT,
    UnitState.DONE,
]

_UNIT_EDGES: dict[UnitState, frozenset[UnitState]] = {
    state: frozenset(
        {_UNIT_ORDER[i + 1], UnitState.FAILED, UnitState.CANCELED}
    )
    for i, state in enumerate(_UNIT_ORDER[:-1])
}
_UNIT_EDGES[UnitState.DONE] = frozenset()
_UNIT_EDGES[UnitState.FAILED] = frozenset()
_UNIT_EDGES[UnitState.CANCELED] = frozenset()
# Requeue edges: node/pilot failure sends a scheduled or executing unit
# back to the unit manager for another attempt.
for _requeue_from in (UnitState.AGENT_SCHEDULING, UnitState.EXECUTING):
    _UNIT_EDGES[_requeue_from] = _UNIT_EDGES[_requeue_from] | {
        UnitState.UMGR_SCHEDULING
    }


def validate_pilot_edge(entity: str, current: PilotState, target: PilotState) -> None:
    if target not in _PILOT_EDGES[current]:
        raise StateTransitionError(entity, current.value, target.value)


def validate_unit_edge(entity: str, current: UnitState, target: UnitState) -> None:
    if target not in _UNIT_EDGES[current]:
        raise StateTransitionError(entity, current.value, target.value)
