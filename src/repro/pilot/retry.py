"""Retry policies: bounded resubmission with exponential backoff.

One :class:`RetryPolicy` object serves two layers of the stack:

* the **runtime** layer — the unit manager requeues units killed by node
  or pilot failures (see :mod:`repro.cluster.faults`) until the policy's
  attempt budget is exhausted, optionally excluding the nodes that killed
  them before;
* the **pattern** layer — pattern drivers resubmit units whose *task*
  failed (:class:`~repro.pilot.faults.TaskFault`, payload exceptions),
  replacing the bare ``max_task_retries`` counter of earlier versions.

Backoff against the scheduler follows the production shape (Balsam, most
batch-facing daemons): the *n*-th retry waits
``min(cap, base * factor**(n-1))`` seconds, optionally stretched by a
uniform jitter so synchronized failures do not resubmit in lockstep.
Jitter draws come from their own named random stream (``"retry_backoff"``),
so enabling it never perturbs other simulation draws.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """How often, and how patiently, failed work is resubmitted.

    Parameters
    ----------
    max_attempts:
        Total execution attempts per unit (first try included); ``1``
        means "never retry".
    backoff_base:
        Delay before the first retry, seconds.  ``0`` retries immediately.
    backoff_factor:
        Multiplier applied per further retry (>= 1, so delays never shrink).
    backoff_cap:
        Upper bound on any single delay, seconds.
    jitter:
        Fractional jitter: the delay is stretched by ``U(1, 1 + jitter)``.
    exclude_failed_nodes:
        When a node failure kills a unit, never place that unit's retries
        on the same node again (per pilot).
    """

    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_cap: float = 60.0
    jitter: float = 0.0
    exclude_failed_nodes: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise ConfigurationError("backoff_base must be non-negative")
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                "backoff_factor must be >= 1 (delays may never shrink)"
            )
        if self.backoff_cap < 0:
            raise ConfigurationError("backoff_cap must be non-negative")
        if self.jitter < 0:
            raise ConfigurationError("jitter must be non-negative")

    @property
    def retries(self) -> int:
        """Retries available beyond the first attempt."""
        return self.max_attempts - 1

    def should_retry(self, attempts_used: int) -> bool:
        """True while *attempts_used* executions leave budget for another."""
        return attempts_used < self.max_attempts

    def delay(self, attempt: int) -> float:
        """Deterministic backoff before retry *attempt* (1-based), seconds.

        Monotone non-decreasing in *attempt* and bounded by the cap.
        """
        if attempt < 1:
            raise ConfigurationError("retry attempt numbers are 1-based")
        return min(self.backoff_cap, self.backoff_base * self.backoff_factor ** (attempt - 1))

    def jittered_delay(self, attempt: int, rng=None) -> float:
        """The backoff delay with jitter applied (still bounded by the cap).

        *rng* is a numpy ``Generator``; with ``None`` (or zero jitter, or a
        zero base delay) no randomness is drawn, so disabled backoff cannot
        perturb any random stream.
        """
        base = self.delay(attempt)
        if base <= 0.0 or self.jitter <= 0.0 or rng is None:
            return base
        return min(self.backoff_cap, base * float(rng.uniform(1.0, 1.0 + self.jitter)))

    @classmethod
    def from_legacy_retries(cls, retries: int) -> "RetryPolicy | None":
        """Adapt a bare ``max_task_retries`` counter to a policy.

        Legacy retries were immediate, so the adapted policy has zero
        backoff — byte-identical behaviour for old callers.
        """
        if retries <= 0:
            return None
        return cls(max_attempts=retries + 1, backoff_base=0.0, jitter=0.0)
