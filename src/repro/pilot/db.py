"""In-memory session store.

RADICAL-Pilot coordinates its client and agent components through a MongoDB
instance; the experiments in the paper never exercise persistence, only the
coordination latency (which our network model charges).  This module keeps
the same insert/update/find surface over plain dictionaries so components
stay decoupled the way the original architecture intends.
"""

from __future__ import annotations

import copy
import threading
from typing import Any

__all__ = ["SessionStore"]


class SessionStore:
    """A tiny document store: named collections of dict documents."""

    def __init__(self) -> None:
        self._collections: dict[str, dict[str, dict[str, Any]]] = {}
        self._lock = threading.RLock()

    def insert(self, collection: str, uid: str, document: dict[str, Any]) -> None:
        with self._lock:
            docs = self._collections.setdefault(collection, {})
            if uid in docs:
                raise KeyError(f"{collection}/{uid} already exists")
            docs[uid] = copy.deepcopy(document) | {"_id": uid}

    def update(self, collection: str, uid: str, fields: dict[str, Any]) -> None:
        with self._lock:
            try:
                doc = self._collections[collection][uid]
            except KeyError:
                raise KeyError(f"{collection}/{uid} not found") from None
            doc.update(copy.deepcopy(fields))

    def get(self, collection: str, uid: str) -> dict[str, Any]:
        with self._lock:
            try:
                return copy.deepcopy(self._collections[collection][uid])
            except KeyError:
                raise KeyError(f"{collection}/{uid} not found") from None

    def find(self, collection: str, **criteria: Any) -> list[dict[str, Any]]:
        """All documents whose fields equal every criterion."""
        with self._lock:
            docs = list(self._collections.get(collection, {}).values())
        return [
            copy.deepcopy(doc)
            for doc in docs
            if all(doc.get(key) == value for key, value in criteria.items())
        ]

    def count(self, collection: str) -> int:
        with self._lock:
            return len(self._collections.get(collection, {}))

    def collections(self) -> list[str]:
        with self._lock:
            return sorted(self._collections)
