"""A pilot-job runtime system (the package's RADICAL-Pilot equivalent).

The paper (§III.C.2) delegates task execution, data movement and resource
management to a pilot system: a *container job* is submitted to the target
machine's batch queue, and once it becomes active an *agent* inside the
allocation schedules any number of application tasks ("compute units") onto
the held cores — decoupling workload size from instantaneously available
resources.

This package implements that architecture:

* :class:`Session` — root object; owns the clock, the profiler and (in
  simulated mode) the discrete-event context.
* :class:`PilotManager` / :class:`ComputePilot` — submit and track container
  jobs via the SAGA layer.
* :class:`UnitManager` / :class:`ComputeUnit` — schedule units onto pilots
  and track their state model.
* :mod:`repro.pilot.agent` — the in-allocation agent: core-slot scheduling,
  launch methods (serial and MPI-style), executors (really-run vs. DES) and
  data staging.

Both execution modes run through identical code paths; only the executor and
the clock differ (see DESIGN.md §3).
"""

from repro.pilot.states import PilotState, UnitState
from repro.pilot.description import ComputePilotDescription, ComputeUnitDescription
from repro.pilot.retry import RetryPolicy
from repro.pilot.unit import ComputeUnit
from repro.pilot.pilot import ComputePilot
from repro.pilot.session import Session
from repro.pilot.pilot_manager import PilotManager
from repro.pilot.unit_manager import UnitManager

__all__ = [
    "PilotState",
    "UnitState",
    "ComputePilotDescription",
    "ComputeUnitDescription",
    "RetryPolicy",
    "ComputeUnit",
    "ComputePilot",
    "Session",
    "PilotManager",
    "UnitManager",
]
