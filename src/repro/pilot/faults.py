"""Task-level fault injection for simulated runs.

The paper's §I motivates EnTK partly by "running large ensembles in a
fault-tolerant way"; together with pattern-level retries
(:attr:`~repro.core.execution_pattern.ExecutionPattern.max_task_retries`)
this model lets the reproduction quantify that claim: each launched unit
fails, with probability ``rate``, partway through its modelled runtime
(mimicking a node crash or a killed process).

Faults draw from their own named random stream, so enabling them does not
perturb queue-wait or network draws of an otherwise identical run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.eventsim import RandomStreams
from repro.exceptions import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

__all__ = ["TaskFault", "NodeFailure", "PilotFailure", "FaultModel"]


class TaskFault(RuntimeError):
    """The injected failure carried by a faulted unit."""


class NodeFailure(RuntimeError):
    """Carried by a unit killed by a node crash (or placement exhaustion)."""


class PilotFailure(RuntimeError):
    """Carried by a unit killed by its pilot's container job dying."""


@dataclass
class FaultModel:
    """Bernoulli task faults with a uniform failure point.

    ``rate`` is the per-execution failure probability; a failing unit dies
    after ``U(0.1, 0.9)`` of its modelled runtime (it still occupied its
    cores for that long, which is what makes faults expensive).
    """

    rate: float = 0.0
    _rng: "np.random.Generator | None" = field(init=False, repr=False, default=None)

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ConfigurationError("fault rate must be in [0, 1)")

    def bind(self, streams: RandomStreams) -> "FaultModel":
        self._rng = streams.get("task_faults")
        return self

    @property
    def enabled(self) -> bool:
        return self.rate > 0.0

    def draw(self, runtime: float) -> float | None:
        """Return the failure time offset for one execution, or ``None``.

        ``runtime`` is the unit's modelled duration; the returned offset is
        when (relative to execution start) the fault strikes.
        """
        if not self.enabled:
            return None
        if self._rng is None:
            raise ConfigurationError("FaultModel.bind() was never called")
        if self._rng.random() >= self.rate:
            return None
        return float(runtime * self._rng.uniform(0.1, 0.9))
