"""Unit executors: really run payloads, or model them on the virtual clock.

Both executors expose one method::

    launch(unit, on_done)   # on_done(unit, ok: bool, result, exception)

and are responsible for advancing the unit into ``EXECUTING`` at the moment
user code (really or notionally) starts.  The agent never needs to know
which mode it is running in.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable

from repro.pilot.agent.launch_method import get_launch_method
from repro.pilot.description import ComputeUnitDescription
from repro.pilot.states import UnitState
from repro.telemetry.span import Tracer
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.session import Session
    from repro.pilot.unit import ComputeUnit

__all__ = ["TaskContext", "LocalExecutor", "SimExecutor"]

log = get_logger("pilot.agent.executor")

DoneCallback = Callable[["ComputeUnit", bool, Any, BaseException | None], None]


@dataclass
class TaskContext:
    """Everything a really-executing payload may use.

    ``cores`` plays the role of the MPI world size: payloads that scale
    split their work into ``cores`` shards (see the MD kernels).  ``args``
    gives parsed ``--key=value`` kernel arguments.
    """

    description: ComputeUnitDescription
    sandbox: Path | None
    cores: int
    uid: str
    args: dict[str, str] = field(default_factory=dict)

    @classmethod
    def for_unit(cls, unit: "ComputeUnit") -> "TaskContext":
        desc = unit.description
        parsed: dict[str, str] = {}
        for arg in desc.arguments:
            if arg.startswith("--") and "=" in arg:
                key, _, value = arg[2:].partition("=")
                parsed[key] = value
        sandbox = Path(unit.sandbox) if unit.sandbox else None
        return cls(
            description=desc,
            sandbox=sandbox,
            cores=desc.cores,
            uid=unit.uid,
            args=parsed,
        )

    def arg(self, name: str, default: str | None = None) -> str:
        value = self.args.get(name, default)
        if value is None:
            raise KeyError(f"kernel argument --{name}=... is required")
        return value

    def path(self, name: str) -> Path:
        """Resolve the file argument *name* inside the unit sandbox."""
        if self.sandbox is None:
            raise RuntimeError("task has no sandbox (simulated mode?)")
        return self.sandbox / self.arg(name)


class LocalExecutor:
    """Run payloads in a thread pool on this machine.

    The pool is sized to the pilot's core count; the agent's slot
    accounting guarantees no more than that many units are in flight, so
    every launched unit gets a worker immediately.
    """

    def __init__(self, session: "Session", total_cores: int) -> None:
        self.session = session
        self._pool = concurrent.futures.ThreadPoolExecutor(
            max_workers=max(total_cores, 1), thread_name_prefix="unit-exec"
        )
        self._shutdown = False
        self._tracer = getattr(session, "tracer", None) or Tracer(None)
        self._metrics = getattr(session, "metrics", None)

    def launch(self, unit: "ComputeUnit", on_done: DoneCallback) -> None:
        get_launch_method(unit.description)  # validates cores/mpi coherence
        self._pool.submit(self._run, unit, on_done)

    def _run(self, unit: "ComputeUnit", on_done: DoneCallback) -> None:
        unit.advance(UnitState.EXECUTING)
        cores = unit.description.cores
        if self._metrics is not None and unit.pilot_uid:
            self._metrics.adjust(f"agent.{unit.pilot_uid}.cores_busy", cores)
        try:
            result = None
            if unit.description.payload is not None:
                with self._tracer.span("exec.payload", unit.uid,
                                       component="execution"):
                    result = unit.description.payload(TaskContext.for_unit(unit))
        except BaseException as exc:  # noqa: BLE001 - task failure is data
            log.debug("unit %s payload failed: %r", unit.uid, exc)
            on_done(unit, False, None, exc)
            return
        finally:
            if self._metrics is not None and unit.pilot_uid:
                self._metrics.adjust(f"agent.{unit.pilot_uid}.cores_busy", -cores)
        on_done(unit, True, result, None)

    def kill(self, unit: "ComputeUnit") -> None:
        """Real threads cannot be killed mid-payload; kills are sim-only."""

    def shutdown(self) -> None:
        if not self._shutdown:
            self._shutdown = True
            self._pool.shutdown(wait=False, cancel_futures=True)


class SimExecutor:
    """Model payload execution as a timed event on the virtual clock.

    Modelled duration = launch overhead (per launch method) + the unit's
    ``modelled_runtime`` on the session platform.  Payloads may still be
    *evaluated* when ``evaluate_payloads`` is set — useful for validating
    science results at small scale while keeping virtual timing — but by
    default they are skipped.
    """

    def __init__(self, session: "Session", *, evaluate_payloads: bool = False) -> None:
        if session.sim_context is None:
            raise RuntimeError("SimExecutor requires a simulated session")
        self.session = session
        self.context = session.sim_context
        self.evaluate_payloads = evaluate_payloads
        #: Pending launch/finish event per in-flight unit, so a node or
        #: pilot failure can kill the execution before it completes.
        self._inflight: dict[str, Any] = {}
        self._tracer = getattr(session, "tracer", None) or Tracer(None)
        self._metrics = getattr(session, "metrics", None)
        #: Units whose modelled execution has started (busy-core gauge
        #: accounting: kills must only decrement after start()).
        self._busy: set[str] = set()
        #: Open ``exec.launch`` span per unit not yet started, so kills
        #: close the span at kill time instead of trace end.
        self._launch_spans: dict[str, str] = {}
        #: Live bulk launch/exec groups (handle id -> handle dict whose
        #: "event" key is the pending DES event), for shutdown cancellation.
        self._groups: dict[int, dict[str, Any]] = {}

    def _adjust_busy(self, unit: "ComputeUnit", delta: int) -> None:
        if self._metrics is not None and unit.pilot_uid:
            self._metrics.adjust(
                f"agent.{unit.pilot_uid}.cores_busy",
                delta * unit.description.cores,
            )

    def launch(self, unit: "ComputeUnit", on_done: DoneCallback) -> None:
        method = get_launch_method(unit.description)
        platform = self.context.platform
        overhead = method.launch_overhead(unit.description.cores, platform)
        runtime = unit.description.modelled_runtime(platform) / platform.node.core_speed
        sim = self.context.sim
        fault_offset = self.session.fault_model.draw(runtime)
        self._launch_spans[unit.uid] = self._tracer.begin(
            "exec.launch", unit.uid
        )

        def start() -> None:
            self._tracer.end(self._launch_spans.pop(unit.uid, ""))
            unit.advance(UnitState.EXECUTING)
            self._busy.add(unit.uid)
            self._adjust_busy(unit, 1)
            if fault_offset is not None:
                self._inflight[unit.uid] = sim.schedule(
                    fault_offset, fail, label=f"fault:{unit.uid}"
                )
            else:
                self._inflight[unit.uid] = sim.schedule(
                    runtime, finish, label=f"exec:{unit.uid}"
                )

        def fail() -> None:
            from repro.pilot.faults import TaskFault

            self._inflight.pop(unit.uid, None)
            self._busy.discard(unit.uid)
            self._adjust_busy(unit, -1)
            self.session.prof.event("task_fault", unit.uid,
                                    at=fault_offset, runtime=runtime)
            on_done(unit, False, None,
                    TaskFault(f"injected fault in {unit.uid}"))

        def finish() -> None:
            self._inflight.pop(unit.uid, None)
            self._busy.discard(unit.uid)
            self._adjust_busy(unit, -1)
            result = None
            if self.evaluate_payloads and unit.description.payload is not None:
                try:
                    result = unit.description.payload(TaskContext.for_unit(unit))
                except BaseException as exc:  # noqa: BLE001
                    on_done(unit, False, None, exc)
                    return
            on_done(unit, True, result, None)

        self._inflight[unit.uid] = sim.schedule(
            overhead, start, label=f"launch:{unit.uid}"
        )

    def launch_units(
        self,
        units: list["ComputeUnit"],
        on_done: Callable[[list["ComputeUnit"]], None],
    ) -> None:
        """Bulk launch (``Session(bulk_lifecycle=True)``): one launch and
        one finish DES event per homogeneous (overhead, runtime) group.

        Fault injection is excluded by construction (the session rejects
        the combination), so there is no per-unit fault draw and no
        per-unit kill bookkeeping; groups are tracked only so
        :meth:`shutdown` can cancel what is still pending.
        """
        platform = self.context.platform
        sim = self.context.sim
        store = self.session.unit_store
        groups: dict[tuple[float, float], list["ComputeUnit"]] = {}
        for unit in units:
            desc = unit.description
            method = get_launch_method(desc)
            overhead = method.launch_overhead(desc.cores, platform)
            runtime = desc.modelled_runtime(platform) / platform.node.core_speed
            groups.setdefault((overhead, runtime), []).append(unit)
        for (overhead, runtime), group in groups.items():
            cores = sum(u.description.cores for u in group)
            first_uid = group[0].uid
            span = self._tracer.begin("exec.launch", first_uid)
            handle: dict[str, Any] = {}

            def finish(group=group, cores=cores, handle=handle) -> None:
                self._groups.pop(id(handle), None)
                if self._metrics is not None and group[0].pilot_uid:
                    self._metrics.adjust(
                        f"agent.{group[0].pilot_uid}.cores_busy", -cores
                    )
                on_done(group)

            # finish must be default-bound, not a free variable: start runs
            # after this loop has moved on, when the enclosing `finish`
            # name already points at the *last* group's callback.
            def start(group=group, runtime=runtime, cores=cores,
                      span=span, first_uid=first_uid,
                      handle=handle, finish=finish) -> None:
                self._tracer.end(span)
                store.advance_many(group, UnitState.EXECUTING)
                if self._metrics is not None and group[0].pilot_uid:
                    self._metrics.adjust(
                        f"agent.{group[0].pilot_uid}.cores_busy", cores
                    )
                handle["event"] = sim.schedule(
                    runtime, finish, label=f"exec*{len(group)}:{first_uid}"
                )

            handle["event"] = sim.schedule(
                overhead, start, label=f"launch*{len(group)}:{first_uid}"
            )
            self._groups[id(handle)] = handle

    def kill(self, unit: "ComputeUnit") -> None:
        """Cancel the unit's pending execution event (node/pilot death).

        The unit's ``on_done`` is *not* invoked: the caller owns the
        failure handling (requeue or fail), exactly like a real node crash
        produces no exit status.
        """
        event = self._inflight.pop(unit.uid, None)
        if event is not None:
            self.context.sim.cancel(event)
        self._tracer.end(self._launch_spans.pop(unit.uid, ""))
        if unit.uid in self._busy:
            self._busy.discard(unit.uid)
            self._adjust_busy(unit, -1)

    def shutdown(self) -> None:  # symmetry with LocalExecutor
        for event in self._inflight.values():
            self.context.sim.cancel(event)
        self._inflight.clear()
        for handle in self._groups.values():
            self.context.sim.cancel(handle["event"])
        self._groups.clear()
        for uid in sorted(self._launch_spans):
            self._tracer.end(self._launch_spans[uid])
        self._launch_spans.clear()
