"""The pilot agent: in-allocation scheduling and execution of units."""

from repro.pilot.agent.slots import CoreSlotScheduler, ContiguousSlotScheduler, ScatteredSlotScheduler
from repro.pilot.agent.launch_method import LaunchMethod, ForkLaunch, MPIExecLaunch, get_launch_method
from repro.pilot.agent.staging import LocalStager, SimStager
from repro.pilot.agent.executor import TaskContext, LocalExecutor, SimExecutor
from repro.pilot.agent.agent import Agent

__all__ = [
    "CoreSlotScheduler",
    "ContiguousSlotScheduler",
    "ScatteredSlotScheduler",
    "LaunchMethod",
    "ForkLaunch",
    "MPIExecLaunch",
    "get_launch_method",
    "LocalStager",
    "SimStager",
    "TaskContext",
    "LocalExecutor",
    "SimExecutor",
    "Agent",
]
