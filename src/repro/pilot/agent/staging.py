"""Data staging between sandboxes.

Each unit runs in its own *sandbox* directory under the pilot sandbox.
Staging directives move data in before execution and out after it.  Paths
may use placeholders:

* ``$PILOT_SANDBOX``        — the pilot's shared directory,
* ``$UNIT_<uid>``           — another unit's sandbox (dependency outputs),
* ``$SHARED``               — alias of the pilot sandbox (EnTK convention).

The local stager really links/copies files; the simulated stager charges
modelled transfer time against the platform's shared-filesystem model.
"""

from __future__ import annotations

import shutil
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.exceptions import StagingError
from repro.pilot.description import StagingDirective
from repro.telemetry.span import Tracer
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit
    from repro.saga.adaptors.sim import SimContext

__all__ = ["resolve_placeholders", "LocalStager", "SimStager"]

log = get_logger("pilot.agent.staging")


def resolve_placeholders(path: str, pilot_sandbox: Path, unit_sandboxes: dict[str, Path]) -> Path:
    """Expand ``$PILOT_SANDBOX`` / ``$SHARED`` / ``$UNIT_<uid>`` in *path*."""
    if path.startswith("$PILOT_SANDBOX") or path.startswith("$SHARED"):
        prefix = "$PILOT_SANDBOX" if path.startswith("$PILOT_SANDBOX") else "$SHARED"
        rest = path[len(prefix):].lstrip("/")
        return pilot_sandbox / rest if rest else pilot_sandbox
    if path.startswith("$UNIT_"):
        head, _, rest = path.partition("/")
        uid = head[len("$UNIT_"):]
        if uid not in unit_sandboxes:
            raise StagingError(f"unknown unit sandbox in staging path: {path!r}")
        return unit_sandboxes[uid] / rest if rest else unit_sandboxes[uid]
    return Path(path)


class LocalStager:
    """Real file operations between real sandboxes."""

    def __init__(self, pilot_sandbox: Path, tracer: Tracer | None = None) -> None:
        self.pilot_sandbox = pilot_sandbox
        self.unit_sandboxes: dict[str, Path] = {}
        self._tracer = tracer or Tracer(None)

    def register_unit(self, unit: "ComputeUnit") -> Path:
        """Create (and remember) the unit's sandbox directory."""
        sandbox = self.pilot_sandbox / unit.uid
        sandbox.mkdir(parents=True, exist_ok=True)
        self.unit_sandboxes[unit.uid] = sandbox
        unit.sandbox = str(sandbox)
        return sandbox

    def _resolve(self, path: str, default_base: Path) -> Path:
        resolved = resolve_placeholders(path, self.pilot_sandbox, self.unit_sandboxes)
        if not resolved.is_absolute():
            resolved = default_base / resolved
        return resolved

    def _apply(self, directive: StagingDirective, src_base: Path, dst_base: Path) -> None:
        source = self._resolve(directive.source, src_base)
        target = self._resolve(directive.target, dst_base)
        target.parent.mkdir(parents=True, exist_ok=True)
        if not source.exists():
            raise StagingError(f"staging source does not exist: {source}")
        if directive.action == "link":
            if target.exists() or target.is_symlink():
                target.unlink()
            target.symlink_to(source)
        else:  # copy and transfer are both real copies locally
            if source.is_dir():
                shutil.copytree(source, target, dirs_exist_ok=True)
            else:
                shutil.copy2(source, target)

    def stage_in(self, unit: "ComputeUnit", done: Callable[[], None]) -> None:
        sandbox = self.unit_sandboxes[unit.uid]
        with self._tracer.span("agent.stage_in", unit.uid,
                               n=len(unit.description.input_staging)):
            for directive in unit.description.input_staging:
                self._apply(directive, self.pilot_sandbox, sandbox)
        done()

    def stage_out(self, unit: "ComputeUnit", done: Callable[[], None]) -> None:
        sandbox = self.unit_sandboxes[unit.uid]
        with self._tracer.span("agent.stage_out", unit.uid,
                               n=len(unit.description.output_staging)):
            for directive in unit.description.output_staging:
                self._apply(directive, sandbox, self.pilot_sandbox)
        done()


class SimStager:
    """Charge modelled transfer time on the virtual clock."""

    def __init__(self, context: "SimContext", tracer: Tracer | None = None) -> None:
        self.context = context
        self.unit_sandboxes: dict[str, Path] = {}
        self._tracer = tracer or Tracer(None)

    def register_unit(self, unit: "ComputeUnit") -> Path:
        # Sandboxes are notional under simulation; remember a fake path so
        # placeholder resolution still validates unit references.
        sandbox = Path("/sim") / unit.uid
        self.unit_sandboxes[unit.uid] = sandbox
        unit.sandbox = str(sandbox)
        return sandbox

    def _cost(self, directives: list[StagingDirective]) -> float:
        fs = self.context.filesystem
        total = 0.0
        for directive in directives:
            if directive.action == "link":
                continue  # metadata-only
            total += fs.transfer_time(directive.nbytes)
        return total

    def _timed(self, name: str, unit: "ComputeUnit", cost: float,
               done: Callable[[], None]) -> None:
        span = self._tracer.begin(name, unit.uid)

        def finish() -> None:
            self._tracer.end(span)
            done()

        self.context.sim.schedule(
            cost, finish, label=f"{name.partition('.')[2]}:{unit.uid}"
        )

    def stage_in(self, unit: "ComputeUnit", done: Callable[[], None]) -> None:
        self._timed("agent.stage_in", unit,
                    self._cost(unit.description.input_staging), done)

    def stage_out(self, unit: "ComputeUnit", done: Callable[[], None]) -> None:
        self._timed("agent.stage_out", unit,
                    self._cost(unit.description.output_staging), done)

    # -- bulk lifecycle -----------------------------------------------------

    def _timed_bulk(
        self,
        name: str,
        units: list["ComputeUnit"],
        costs: dict[float, list["ComputeUnit"]],
        done: Callable[[list["ComputeUnit"]], None],
    ) -> None:
        """One span and one DES event per *cost group* instead of per unit.

        The common case — no staging directives anywhere — is a single
        zero-cost group, i.e. one event for the entire batch.
        """
        sim = self.context.sim
        kind = name.partition(".")[2]
        for cost, group in costs.items():
            span = self._tracer.begin(name, group[0].uid)

            def finish(group=group, span=span) -> None:
                self._tracer.end(span)
                done(group)

            sim.schedule(
                cost, finish, label=f"{kind}*{len(group)}:{group[0].uid}"
            )

    def _cost_groups(
        self, units: list["ComputeUnit"], attr: str
    ) -> dict[float, list["ComputeUnit"]]:
        groups: dict[float, list["ComputeUnit"]] = {}
        for unit in units:
            directives = getattr(unit.description, attr)
            cost = self._cost(directives) if directives else 0.0
            groups.setdefault(cost, []).append(unit)
        return groups

    def stage_in_bulk(
        self,
        units: list["ComputeUnit"],
        done: Callable[[list["ComputeUnit"]], None],
    ) -> None:
        self._timed_bulk(
            "agent.stage_in", units,
            self._cost_groups(units, "input_staging"), done,
        )

    def stage_out_bulk(
        self,
        units: list["ComputeUnit"],
        done: Callable[[list["ComputeUnit"]], None],
    ) -> None:
        self._timed_bulk(
            "agent.stage_out", units,
            self._cost_groups(units, "output_staging"), done,
        )
