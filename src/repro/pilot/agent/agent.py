"""The pilot agent.

Runs (notionally) inside the pilot's allocation.  It receives compute units
from the unit manager, stages their inputs, queues them for cores, launches
them through an executor and stages outputs — continuation-passing all the
way, so the identical control flow serves threaded local execution and the
single-threaded discrete-event simulation.

Queue policies (the paper's agent inherits RADICAL-Pilot's):

* ``backfill`` (default) — scan the whole wait queue, start everything that
  fits.  Maximizes utilization; this is what produces the paper's linear
  weak/strong scaling.
* ``fifo`` — strict order: if the head does not fit, nothing starts.  Kept
  for the scheduler ablation benchmark.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import SchedulingError
from repro.pilot.agent.executor import LocalExecutor, SimExecutor
from repro.pilot.agent.slots import make_slot_scheduler
from repro.pilot.agent.staging import LocalStager, SimStager
from repro.pilot.states import UnitState
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

    from repro.pilot.pilot import ComputePilot
    from repro.pilot.session import Session
    from repro.pilot.unit import ComputeUnit

__all__ = ["Agent"]

log = get_logger("pilot.agent")


class Agent:
    """In-allocation unit scheduler and executor frontend."""

    def __init__(
        self,
        session: "Session",
        pilot: "ComputePilot",
        *,
        policy: str = "backfill",
        slot_strategy: str = "contiguous",
        evaluate_payloads: bool = False,
    ) -> None:
        if policy not in ("backfill", "fifo"):
            raise SchedulingError(f"unknown agent queue policy {policy!r}")
        self.session = session
        self.pilot = pilot
        self.policy = policy
        self.slots = make_slot_scheduler(slot_strategy, pilot.cores)
        self._lock = threading.RLock()
        self._waiting: deque["ComputeUnit"] = deque()
        self._executing: dict[str, "ComputeUnit"] = {}
        self._cancelled: set[str] = set()
        self._started = False
        self._unit_final_cb: Callable[["ComputeUnit"], Any] | None = None

        if session.is_simulated:
            self.stager = SimStager(session.sim_context)
            self.executor: Any = SimExecutor(
                session, evaluate_payloads=evaluate_payloads
            )
        else:
            pilot_sandbox: "Path" = session.sandbox / pilot.uid  # type: ignore[operator]
            pilot_sandbox.mkdir(parents=True, exist_ok=True)
            self.pilot_sandbox = pilot_sandbox
            self.stager = LocalStager(pilot_sandbox)
            self.executor = LocalExecutor(session, pilot.cores)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Called when the pilot becomes ACTIVE; releases queued units."""
        with self._lock:
            self._started = True
        self.session.prof.event("agent_start", self.pilot.uid)
        self._reschedule()

    def stop(self) -> None:
        """Called at pilot teardown; cancels whatever is still queued."""
        with self._lock:
            waiting = list(self._waiting)
            self._waiting.clear()
        for unit in waiting:
            unit.advance(UnitState.CANCELED)
            self._notify_final(unit)
        self.executor.shutdown()
        self.session.prof.event("agent_stop", self.pilot.uid)

    def on_unit_final(self, callback: Callable[["ComputeUnit"], Any]) -> None:
        """Register the unit manager's completion hook."""
        self._unit_final_cb = callback

    # -- submission ---------------------------------------------------------------

    def submit_units(self, units: list["ComputeUnit"]) -> None:
        """Accept units from the unit manager (any time after creation)."""
        for unit in units:
            if unit.description.cores > self.slots.total_cores:
                unit.advance(UnitState.FAILED)
                unit.exception = SchedulingError(
                    f"unit {unit.uid} wants {unit.description.cores} cores; "
                    f"pilot {self.pilot.uid} holds {self.slots.total_cores}"
                )
                self._notify_final(unit)
                continue
            unit.pilot_uid = self.pilot.uid
            self.stager.register_unit(unit)
            unit.advance(UnitState.AGENT_STAGING_INPUT)
            try:
                self.stager.stage_in(unit, lambda u=unit: self._on_staged_in(u))
            except Exception as exc:  # staging failure fails the unit, not the agent
                unit.exception = exc
                unit.advance(UnitState.FAILED)
                self._notify_final(unit)

    def cancel_unit(self, unit: "ComputeUnit") -> None:
        """Cancel a unit; waiting units are dequeued, running ones flagged."""
        with self._lock:
            self._cancelled.add(unit.uid)
            if unit in self._waiting:
                self._waiting.remove(unit)
                to_cancel = True
            else:
                to_cancel = False
        if to_cancel:
            unit.advance(UnitState.CANCELED)
            self._notify_final(unit)

    # -- internals -----------------------------------------------------------------

    def _on_staged_in(self, unit: "ComputeUnit") -> None:
        if unit.uid in self._cancelled:
            unit.advance(UnitState.CANCELED)
            self._notify_final(unit)
            return
        unit.advance(UnitState.AGENT_SCHEDULING)
        with self._lock:
            self._waiting.append(unit)
        self._reschedule()

    def _reschedule(self) -> None:
        """Start every waiting unit the policy and free slots allow."""
        launched: list["ComputeUnit"] = []
        with self._lock:
            if not self._started:
                return
            if self.policy == "fifo":
                while self._waiting:
                    head = self._waiting[0]
                    slots = self.slots.alloc(head.description.cores)
                    if slots is None:
                        break
                    self._waiting.popleft()
                    head.slots = slots
                    self._executing[head.uid] = head
                    launched.append(head)
            else:  # backfill
                remaining: deque["ComputeUnit"] = deque()
                while self._waiting:
                    unit = self._waiting.popleft()
                    slots = self.slots.alloc(unit.description.cores)
                    if slots is None:
                        remaining.append(unit)
                        continue
                    unit.slots = slots
                    self._executing[unit.uid] = unit
                    launched.append(unit)
                self._waiting = remaining
        for unit in launched:
            self.session.prof.event(
                "unit_slots", unit.uid, slots=len(unit.slots), pilot=self.pilot.uid
            )
            self.executor.launch(unit, self._on_unit_done)

    def _on_unit_done(
        self,
        unit: "ComputeUnit",
        ok: bool,
        result: Any,
        exception: BaseException | None,
    ) -> None:
        with self._lock:
            self._executing.pop(unit.uid, None)
            if unit.slots:
                self.slots.dealloc(unit.slots)
        if not ok:
            unit.exception = exception
            unit.advance(UnitState.FAILED)
            self._notify_final(unit)
            self._reschedule()
            return
        unit.result = result
        unit.advance(UnitState.AGENT_STAGING_OUTPUT)
        try:
            self.stager.stage_out(unit, lambda u=unit: self._on_staged_out(u))
        except Exception as exc:  # staging failure fails the unit, not the agent
            unit.exception = exc
            unit.advance(UnitState.FAILED)
            self._notify_final(unit)
        self._reschedule()

    def _on_staged_out(self, unit: "ComputeUnit") -> None:
        if unit.uid in self._cancelled:
            unit.advance(UnitState.CANCELED)
        else:
            unit.advance(UnitState.DONE)
        self._notify_final(unit)

    def _notify_final(self, unit: "ComputeUnit") -> None:
        if self._unit_final_cb is not None:
            self._unit_final_cb(unit)

    # -- introspection -----------------------------------------------------------

    @property
    def waiting_units(self) -> int:
        with self._lock:
            return len(self._waiting)

    @property
    def executing_units(self) -> int:
        with self._lock:
            return len(self._executing)
