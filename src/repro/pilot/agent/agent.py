"""The pilot agent.

Runs (notionally) inside the pilot's allocation.  It receives compute units
from the unit manager, stages their inputs, queues them for cores, launches
them through an executor and stages outputs — continuation-passing all the
way, so the identical control flow serves threaded local execution and the
single-threaded discrete-event simulation.

Queue policies (the paper's agent inherits RADICAL-Pilot's):

* ``backfill`` (default) — scan the whole wait queue, start everything that
  fits.  Maximizes utilization; this is what produces the paper's linear
  weak/strong scaling.
* ``fifo`` — strict order: if the head does not fit, nothing starts.  Kept
  for the scheduler ablation benchmark.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import TYPE_CHECKING, Any, Callable

from repro.cluster.faults import NODE_FAULT_STREAM, NodeFaultProcess
from repro.exceptions import SchedulingError
from repro.pilot.agent.executor import LocalExecutor, SimExecutor
from repro.pilot.agent.slots import make_slot_scheduler
from repro.pilot.agent.staging import LocalStager, SimStager
from repro.pilot.faults import NodeFailure, PilotFailure
from repro.pilot.states import UnitState
from repro.telemetry.span import Tracer
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from pathlib import Path

    from repro.pilot.pilot import ComputePilot
    from repro.pilot.session import Session
    from repro.pilot.unit import ComputeUnit

__all__ = ["Agent"]

log = get_logger("pilot.agent")


class Agent:
    """In-allocation unit scheduler and executor frontend."""

    def __init__(
        self,
        session: "Session",
        pilot: "ComputePilot",
        *,
        policy: str = "backfill",
        slot_strategy: str = "contiguous",
        evaluate_payloads: bool = False,
    ) -> None:
        if policy not in ("backfill", "fifo"):
            raise SchedulingError(f"unknown agent queue policy {policy!r}")
        self.session = session
        self.pilot = pilot
        self.policy = policy
        self.slot_strategy = slot_strategy
        # Node boundaries only matter under simulation, where they are the
        # failure domain of the node-fault model; locally the pilot is one
        # "node" so nothing changes for real execution.
        self._cores_per_node = (
            session.platform.cores_per_node if session.is_simulated else None
        )
        self.slots = make_slot_scheduler(
            slot_strategy, pilot.cores, self._cores_per_node
        )
        self._lock = threading.RLock()
        self._waiting: deque["ComputeUnit"] = deque()
        #: Uids of waiting units (O(1) membership for cancel_unit).
        self._waiting_uids: set[str] = set()
        #: Core-count multiset of waiting units; ``_min_waiting`` caches its
        #: minimum so a wake-up that cannot place anything returns in O(1)
        #: (see ``_schedule_waiting``'s short-circuit).
        self._waiting_sizes: dict[int, int] = {}
        self._min_waiting: int | None = None
        #: Uids of waiting units carrying a node-exclusion list for this
        #: pilot.  While non-empty every wake-up must run the full scan:
        #: such units can fail *terminally* during it (emitting events), so
        #: the event-silent short-circuit would change traces.
        self._waiting_excluded: set[str] = set()
        self._executing: dict[str, "ComputeUnit"] = {}
        self._cancelled: set[str] = set()
        self._started = False
        self._unit_final_cb: Callable[["ComputeUnit"], Any] | None = None
        self._unit_killed_cb: (
            Callable[["ComputeUnit", BaseException], Any] | None
        ) = None
        self._fault_process: NodeFaultProcess | None = None
        self._launch_times: dict[str, float] = {}
        self._tracer = getattr(session, "tracer", None) or Tracer(None)
        self._metrics = getattr(session, "metrics", None)
        #: Batched lifecycle (``Session(bulk_lifecycle=True)``): accept,
        #: launch and complete homogeneous batches with per-batch events.
        self._bulk = bool(getattr(session, "bulk_lifecycle", False))

        if session.is_simulated:
            self.stager = SimStager(session.sim_context, tracer=self._tracer)
            self.executor: Any = SimExecutor(
                session, evaluate_payloads=evaluate_payloads
            )
        else:
            pilot_sandbox: "Path" = session.sandbox / pilot.uid  # type: ignore[operator]
            pilot_sandbox.mkdir(parents=True, exist_ok=True)
            self.pilot_sandbox = pilot_sandbox
            self.stager = LocalStager(pilot_sandbox, tracer=self._tracer)
            self.executor = LocalExecutor(session, pilot.cores)

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        """Called when the pilot becomes ACTIVE; releases queued units."""
        with self._lock:
            self._started = True
        self.session.prof.event("agent_start", self.pilot.uid)
        self._arm_node_faults()
        self._reschedule()

    # -- waiting-queue bookkeeping -------------------------------------------------

    def _waiting_add(self, unit: "ComputeUnit") -> None:
        """Track *unit* entering the wait queue (caller holds the lock)."""
        self._waiting.append(unit)
        self._waiting_uids.add(unit.uid)
        size = unit.description.cores
        self._waiting_sizes[size] = self._waiting_sizes.get(size, 0) + 1
        if self._min_waiting is None or size < self._min_waiting:
            self._min_waiting = size
        if unit.excluded_nodes:
            self._waiting_excluded.add(unit.uid)

    def _waiting_forget(self, unit: "ComputeUnit") -> None:
        """Untrack *unit* leaving the wait queue (caller holds the lock).

        The caller removes the unit from the deque itself (pop or
        ``remove``); this maintains the uid set and the size multiset.
        """
        self._waiting_uids.discard(unit.uid)
        self._waiting_excluded.discard(unit.uid)
        size = unit.description.cores
        count = self._waiting_sizes.get(size, 0) - 1
        if count > 0:
            self._waiting_sizes[size] = count
        else:
            self._waiting_sizes.pop(size, None)
            if size == self._min_waiting:
                self._min_waiting = (
                    min(self._waiting_sizes) if self._waiting_sizes else None
                )

    def _waiting_clear(self) -> list["ComputeUnit"]:
        """Drop the whole wait queue (caller holds the lock)."""
        waiting = list(self._waiting)
        self._waiting.clear()
        self._waiting_uids.clear()
        self._waiting_sizes.clear()
        self._waiting_excluded.clear()
        self._min_waiting = None
        return waiting

    def stop(self) -> None:
        """Called at pilot teardown; cancels whatever is still queued."""
        self._disarm_node_faults()
        with self._lock:
            waiting = self._waiting_clear()
        for unit in waiting:
            unit.advance(UnitState.CANCELED)
            self._notify_final(unit)
        self.executor.shutdown()
        self.session.prof.event("agent_stop", self.pilot.uid)

    def suspend(self) -> None:
        """The pilot's container job died with resubmission budget left.

        In-flight units are killed (and handed to the unit manager, which
        requeues them under the retry policy), waiting units stay queued
        for the next activation, and the slot table is rebuilt: the
        resubmitted pilot lands on a fresh allocation, so no previous
        placement or node failure survives.
        """
        self._disarm_node_faults()
        with self._lock:
            self._started = False
            victims = list(self._executing.values())
        for unit in victims:
            self._kill_unit(unit, node=None)
        self.slots = make_slot_scheduler(
            self.slot_strategy, self.pilot.cores, self._cores_per_node
        )
        self.session.prof.event("agent_suspend", self.pilot.uid)

    def abort(self) -> None:
        """The pilot died with no resubmission budget left.

        Unlike :meth:`suspend`, nothing will reactivate this agent, so
        waiting units are handed to the kill hook too: under a retry
        policy they can migrate to surviving pilots, otherwise they fail
        in place instead of lingering until the simulation drains.
        """
        self._disarm_node_faults()
        with self._lock:
            self._started = False
            victims = list(self._executing.values())
            waiting = self._waiting_clear()
        for unit in victims:
            self._kill_unit(unit, node=None)
        for unit in waiting:
            exc = PilotFailure(
                f"unit {unit.uid} stranded by pilot {self.pilot.uid} dying"
            )
            unit.exception = exc
            if self._unit_killed_cb is not None:
                self._unit_killed_cb(unit, exc)
            else:
                unit.advance(UnitState.FAILED)
                self._notify_final(unit)
        self.executor.shutdown()
        self.session.prof.event("agent_abort", self.pilot.uid)

    def on_unit_final(self, callback: Callable[["ComputeUnit"], Any]) -> None:
        """Register the unit manager's completion hook."""
        self._unit_final_cb = callback

    def on_unit_killed(
        self, callback: Callable[["ComputeUnit", BaseException], Any]
    ) -> None:
        """Register the unit manager's node/pilot-kill hook.

        Without one, killed units fail terminally in place (no retries).
        """
        self._unit_killed_cb = callback

    # -- submission ---------------------------------------------------------------

    def submit_units(self, units: list["ComputeUnit"]) -> None:
        """Accept units from the unit manager (any time after creation)."""
        with self._tracer.span("agent.submit", self.pilot.uid, n=len(units)):
            if self._bulk:
                self._accept_units_bulk(units)
            else:
                self._accept_units(units)

    def _accept_units(self, units: list["ComputeUnit"]) -> None:
        for unit in units:
            if unit.description.cores > self.slots.total_cores:
                unit.advance(UnitState.FAILED)
                unit.exception = SchedulingError(
                    f"unit {unit.uid} wants {unit.description.cores} cores; "
                    f"pilot {self.pilot.uid} holds {self.slots.total_cores}"
                )
                self._notify_final(unit)
                continue
            unit.pilot_uid = self.pilot.uid
            self.stager.register_unit(unit)
            unit.advance(UnitState.AGENT_STAGING_INPUT)
            try:
                self.stager.stage_in(unit, lambda u=unit: self._on_staged_in(u))
            except Exception as exc:  # staging failure fails the unit, not the agent
                unit.exception = exc
                unit.advance(UnitState.FAILED)
                self._notify_final(unit)

    def _accept_units_bulk(self, units: list["ComputeUnit"]) -> None:
        """Batched acceptance: one state transition and one staging event
        per batch.  Notional sandboxes are only registered for units that
        actually stage data, so a million no-staging units do not allocate
        a million ``Path`` objects."""
        store = self.session.unit_store
        fit: list["ComputeUnit"] = []
        for unit in units:
            if unit.description.cores > self.slots.total_cores:
                unit.advance(UnitState.FAILED)
                unit.exception = SchedulingError(
                    f"unit {unit.uid} wants {unit.description.cores} cores; "
                    f"pilot {self.pilot.uid} holds {self.slots.total_cores}"
                )
                self._notify_final(unit)
                continue
            unit.pilot_uid = self.pilot.uid
            if (
                unit.description.input_staging
                or unit.description.output_staging
            ):
                self.stager.register_unit(unit)
            fit.append(unit)
        if not fit:
            return
        store.advance_many(fit, UnitState.AGENT_STAGING_INPUT)
        self.stager.stage_in_bulk(fit, self._on_staged_in_bulk)

    def _on_staged_in_bulk(self, units: list["ComputeUnit"]) -> None:
        if self._cancelled:
            cancelled = [u for u in units if u.uid in self._cancelled]
            if cancelled:
                units = [u for u in units if u.uid not in self._cancelled]
                self.session.unit_store.advance_many(
                    cancelled, UnitState.CANCELED
                )
                for unit in cancelled:
                    self._notify_final(unit)
        if not units:
            return
        self.session.unit_store.advance_many(units, UnitState.AGENT_SCHEDULING)
        with self._lock:
            for unit in units:
                self._waiting_add(unit)
        self._reschedule()

    def cancel_unit(self, unit: "ComputeUnit") -> None:
        """Cancel a unit; waiting units are dequeued, running ones flagged."""
        with self._lock:
            self._cancelled.add(unit.uid)
            if unit.uid in self._waiting_uids:
                self._waiting.remove(unit)
                self._waiting_forget(unit)
                to_cancel = True
            else:
                to_cancel = False
        if to_cancel:
            unit.advance(UnitState.CANCELED)
            self._notify_final(unit)

    # -- internals -----------------------------------------------------------------

    def _on_staged_in(self, unit: "ComputeUnit") -> None:
        if unit.uid in self._cancelled:
            unit.advance(UnitState.CANCELED)
            self._notify_final(unit)
            return
        unit.advance(UnitState.AGENT_SCHEDULING)
        with self._lock:
            self._waiting_add(unit)
        self._reschedule()

    def _avoid_for(self, unit: "ComputeUnit") -> frozenset[int]:
        """Nodes of *this* pilot the unit's exclusion list rules out."""
        if not unit.excluded_nodes:
            return frozenset()
        return frozenset(
            node for puid, node in unit.excluded_nodes if puid == self.pilot.uid
        )

    def _reschedule(self) -> None:
        """Start every waiting unit the policy and free slots allow."""
        with self._tracer.span("agent.schedule", self.pilot.uid):
            self._schedule_waiting()
        if self._metrics is not None and self._started:
            self._metrics.gauge(
                f"agent.{self.pilot.uid}.queue_depth", len(self._waiting)
            )
            self._metrics.gauge(
                f"agent.{self.pilot.uid}.cores_held", self.slots.used_cores
            )

    def _schedule_waiting(self) -> None:
        """One scheduling pass over the wait queue.

        Wake-ups are *coalesced*: a pass whose free-core count cannot
        satisfy the smallest waiting request returns in O(1), so a wave
        of same-timestamp deallocations accumulates capacity silently
        until one pass can actually place units — behaviorally identical
        to scanning on every wake-up (failed allocation attempts emit no
        events and leave the queue order untouched), but without the
        O(waiting × cores) rescans.  The same bound stops a scan early
        once launches drop the free count below every waiting request.
        Both short-circuits are disabled while any waiting unit carries a
        node-exclusion list: those units can fail terminally *during* the
        scan, which is observable in the trace.
        """
        launched: list["ComputeUnit"] = []
        unplaceable: list["ComputeUnit"] = []
        with self._lock:
            if not self._started or not self._waiting:
                return
            can_skip = not self._waiting_excluded
            if (
                can_skip
                and self._min_waiting is not None
                and self.slots.free_cores < self._min_waiting
            ):
                return
            if self.policy == "fifo":
                while self._waiting:
                    head = self._waiting[0]
                    avoid = self._avoid_for(head)
                    if (
                        avoid
                        and self.slots.eligible_cores(avoid)
                        < head.description.cores
                    ):
                        self._waiting.popleft()
                        self._waiting_forget(head)
                        unplaceable.append(head)
                        continue
                    slots = self.slots.alloc(head.description.cores, avoid)
                    if slots is None:
                        break
                    self._waiting.popleft()
                    self._waiting_forget(head)
                    head.slots = slots
                    self._executing[head.uid] = head
                    launched.append(head)
            else:  # backfill
                remaining: deque["ComputeUnit"] = deque()
                while self._waiting:
                    unit = self._waiting.popleft()
                    avoid = self._avoid_for(unit)
                    if (
                        avoid
                        and self.slots.eligible_cores(avoid)
                        < unit.description.cores
                    ):
                        self._waiting_forget(unit)
                        unplaceable.append(unit)
                        continue
                    slots = self.slots.alloc(unit.description.cores, avoid)
                    if slots is None:
                        remaining.append(unit)
                        continue
                    self._waiting_forget(unit)
                    unit.slots = slots
                    self._executing[unit.uid] = unit
                    launched.append(unit)
                    if (
                        can_skip
                        and self._min_waiting is not None
                        and self.slots.free_cores < self._min_waiting
                    ):
                        # No remaining request fits; the rest of the scan
                        # would only pop-and-requeue in place.
                        break
                remaining.extend(self._waiting)
                self._waiting = remaining
        for unit in unplaceable:
            # The exclusion list leaves too few cores on this pilot — no
            # amount of waiting or repairs can place the unit, so fail fast
            # instead of queueing it forever.
            unit.exception = NodeFailure(
                f"unit {unit.uid} cannot be placed on pilot {self.pilot.uid}: "
                f"excluded nodes leave fewer than "
                f"{unit.description.cores} eligible cores"
            )
            unit.advance(UnitState.FAILED)
            self._notify_final(unit)
        if not launched:
            return
        if self._bulk:
            store = self.session.unit_store
            for unit in launched:
                store.set_attempts(unit._i, store.attempts(unit._i) + 1)
            # One placement event per pass; per-unit wasted-time
            # bookkeeping (_launch_times) is skipped — bulk mode
            # excludes the fault machinery that consumes it.
            self.session.prof.event(
                "units_slots", launched[0].uid,
                n=len(launched), pilot=self.pilot.uid,
            )
            self.executor.launch_units(launched, self._on_units_done)
            return
        for unit in launched:
            unit.attempts += 1
            self._launch_times[unit.uid] = self.session.now()
            self.session.prof.event(
                "unit_slots", unit.uid, slots=len(unit.slots), pilot=self.pilot.uid
            )
            self.executor.launch(unit, self._on_unit_done)

    # -- failure domains ------------------------------------------------------------

    def _arm_node_faults(self) -> None:
        model = self.session.node_fault_model
        if not (self.session.is_simulated and model.enabled):
            return
        if self._fault_process is None:
            self._fault_process = NodeFaultProcess(
                self.session.sim,
                self.session.sim_context.streams.get(NODE_FAULT_STREAM),
                self.slots.nnodes,
                model,
                self._on_node_failure,
                self._on_node_repair,
                label=self.pilot.uid,
            )
        self._fault_process.start()

    def _disarm_node_faults(self) -> None:
        if self._fault_process is not None:
            self._fault_process.stop()
            self._fault_process = None

    def _on_node_failure(self, node: int) -> None:
        self.session.prof.event("node_fail", self.pilot.uid, node=node)
        self.slots.fail_node(node)
        with self._lock:
            victims = [
                u
                for u in self._executing.values()
                if any(self.slots.node_of(s) == node for s in u.slots)
            ]
        for unit in victims:
            self._kill_unit(unit, node=node)
        # Multi-node victims may have freed slots on healthy nodes.
        self._reschedule()

    def _on_node_repair(self, node: int) -> None:
        self.session.prof.event("node_repair", self.pilot.uid, node=node)
        self.slots.repair_node(node)
        self._reschedule()

    def _kill_unit(self, unit: "ComputeUnit", node: int | None) -> None:
        """Tear down one in-flight unit whose node (or whole pilot) died."""
        self.executor.kill(unit)
        with self._lock:
            self._executing.pop(unit.uid, None)
            if unit.slots:
                self.slots.dealloc(unit.slots)
                unit.slots = []
        launched_at = self._launch_times.pop(unit.uid, None)
        wasted = (
            self.session.now() - launched_at if launched_at is not None else 0.0
        )
        policy = self.session.retry_policy
        if node is None:
            self.session.prof.event(
                "unit_pilot_kill", unit.uid, pilot=self.pilot.uid, wasted=wasted
            )
            exc: BaseException = PilotFailure(
                f"unit {unit.uid} lost to pilot {self.pilot.uid} dying"
            )
        else:
            self.session.prof.event(
                "unit_node_kill", unit.uid,
                pilot=self.pilot.uid, node=node, wasted=wasted,
            )
            exc = NodeFailure(
                f"unit {unit.uid} lost to node {node} of pilot "
                f"{self.pilot.uid} crashing"
            )
            if policy is not None and policy.exclude_failed_nodes:
                unit.exclude_node(self.pilot.uid, node)
        unit.exception = exc
        if self._unit_killed_cb is not None:
            self._unit_killed_cb(unit, exc)
        else:
            unit.advance(UnitState.FAILED)
            self._notify_final(unit)

    def _on_unit_done(
        self,
        unit: "ComputeUnit",
        ok: bool,
        result: Any,
        exception: BaseException | None,
    ) -> None:
        with self._lock:
            self._executing.pop(unit.uid, None)
            self._launch_times.pop(unit.uid, None)
            if unit.slots:
                self.slots.dealloc(unit.slots)
        if not ok:
            unit.exception = exception
            unit.advance(UnitState.FAILED)
            self._notify_final(unit)
            self._reschedule()
            return
        unit.result = result
        unit.advance(UnitState.AGENT_STAGING_OUTPUT)
        try:
            self.stager.stage_out(unit, lambda u=unit: self._on_staged_out(u))
        except Exception as exc:  # staging failure fails the unit, not the agent
            unit.exception = exc
            unit.advance(UnitState.FAILED)
            self._notify_final(unit)
        self._reschedule()

    def _on_units_done(self, units: list["ComputeUnit"]) -> None:
        """Bulk completion from the executor (always successful: bulk
        mode excludes fault injection, and modelled runs cannot fail)."""
        with self._lock:
            for unit in units:
                self._executing.pop(unit.uid, None)
                slots = unit.slots
                if slots:
                    self.slots.dealloc(slots)
        self.session.unit_store.advance_many(
            units, UnitState.AGENT_STAGING_OUTPUT
        )
        self.stager.stage_out_bulk(units, self._on_staged_out_bulk)
        self._reschedule()

    def _on_staged_out_bulk(self, units: list["ComputeUnit"]) -> None:
        store = self.session.unit_store
        if self._cancelled:
            cancelled = [u for u in units if u.uid in self._cancelled]
            if cancelled:
                finished = [u for u in units if u.uid not in self._cancelled]
                store.advance_many(finished, UnitState.DONE)
                store.advance_many(cancelled, UnitState.CANCELED)
                for unit in units:
                    self._notify_final(unit)
                return
        store.advance_many(units, UnitState.DONE)
        for unit in units:
            self._notify_final(unit)

    def _on_staged_out(self, unit: "ComputeUnit") -> None:
        if unit.uid in self._cancelled:
            unit.advance(UnitState.CANCELED)
        else:
            unit.advance(UnitState.DONE)
        self._notify_final(unit)

    def _notify_final(self, unit: "ComputeUnit") -> None:
        if self._unit_final_cb is not None:
            self._unit_final_cb(unit)

    # -- introspection -----------------------------------------------------------

    @property
    def waiting_units(self) -> int:
        with self._lock:
            return len(self._waiting)

    @property
    def executing_units(self) -> int:
        with self._lock:
            return len(self._executing)
