"""Core-slot accounting inside a pilot.

The agent owns ``cores`` slots (numbered 0..cores-1, node-major).  A unit
occupies ``unit.description.cores`` slots from launch to completion.  Two
allocation strategies are provided, mirroring RADICAL-Pilot's agent
schedulers:

* :class:`ContiguousSlotScheduler` — MPI-friendly: a unit gets one
  contiguous block of cores (first fit).  Can fragment.
* :class:`ScatteredSlotScheduler` — any free cores will do; never
  fragments, but co-locates nothing.

Slots are grouped into *nodes* of ``cores_per_node`` slots each (slot ``i``
lives on node ``i // cores_per_node``), which is the failure domain of the
node-fault model: :meth:`~CoreSlotScheduler.fail_node` takes a whole node's
slots out of service until :meth:`~CoreSlotScheduler.repair_node`, and
allocations can *avoid* named nodes (the retry policy's failed-node
exclusion list).

The invariant enforced here (and property-tested) is the paper-critical
one: at no instant do occupied slots exceed the pilot size, and no slot is
double-booked.

Implementation notes (see ``docs/performance.md``): the *pool* — slots
that are free **and** on a healthy node — is tracked in indexed
structures so allocation cost scales with the number of placements, not
with the pilot size.  The boolean per-slot arrays remain the ground
truth; the indexes are accelerators kept incrementally consistent:

* both schedulers keep per-node pool counts (``_node_free``), an O(1)
  ``used_cores`` counter and a sorted list of nodes with pool slots;
* :class:`ContiguousSlotScheduler` additionally keeps the pool as a
  sorted list of maximal runs ``[start, end)``; deallocation merges
  adjacent runs, allocation carves a prefix off the first fitting run;
* ``eligible_cores`` is pure node-size arithmetic — no per-core loop.

Placement *choices* are bit-identical to the reference linear scans
(first-fit lowest contiguous block; lowest-numbered free slots), which is
property-tested differentially against the reference implementation in
``tests/test_pilot_slots.py``.
"""

from __future__ import annotations

import abc
from bisect import bisect_left, bisect_right, insort

from repro.exceptions import SchedulingError

__all__ = [
    "CoreSlotScheduler",
    "ContiguousSlotScheduler",
    "ScatteredSlotScheduler",
    "make_slot_scheduler",
]


def _segments(slots: list[int]) -> list[tuple[int, int]]:
    """Group a sorted slot list into maximal ``[start, end)`` runs."""
    runs: list[tuple[int, int]] = []
    start = prev = slots[0]
    for slot in slots[1:]:
        if slot != prev + 1:
            runs.append((start, prev + 1))
            start = slot
        prev = slot
    runs.append((start, prev + 1))
    return runs


class CoreSlotScheduler(abc.ABC):
    """Tracks which of the pilot's cores are free (and on healthy nodes)."""

    def __init__(self, total_cores: int, cores_per_node: int | None = None) -> None:
        if total_cores < 1:
            raise SchedulingError("pilot must hold at least one core")
        if cores_per_node is not None and cores_per_node < 1:
            raise SchedulingError("cores_per_node must be positive")
        self.total_cores = total_cores
        #: Node size; a single-node pilot by default (no interior domains).
        self.cores_per_node = cores_per_node or total_cores
        self._free = [True] * total_cores
        self._offline = [False] * total_cores
        self._nfree = total_cores
        self._nused = 0
        self._offline_node_set: set[int] = set()
        #: Pool slots (free and online) per node, kept incrementally.
        self._node_free = [len(self.node_slots(n)) for n in range(self.nnodes)]
        #: Sorted node ids with at least one pool slot.
        self._nonempty_nodes = list(range(self.nnodes))

    # -- topology ----------------------------------------------------------------

    @property
    def nnodes(self) -> int:
        return -(-self.total_cores // self.cores_per_node)

    def node_of(self, slot: int) -> int:
        return slot // self.cores_per_node

    def node_slots(self, node: int) -> range:
        """Slot ids of *node* (the last node may be partial)."""
        if not 0 <= node < self.nnodes:
            raise SchedulingError(f"no node {node} in a {self.nnodes}-node pilot")
        start = node * self.cores_per_node
        return range(start, min(start + self.cores_per_node, self.total_cores))

    def _node_size(self, node: int) -> int:
        start = node * self.cores_per_node
        return min(start + self.cores_per_node, self.total_cores) - start

    # -- accounting ---------------------------------------------------------------

    @property
    def free_cores(self) -> int:
        """Schedulable cores: free *and* on a healthy node."""
        return self._nfree

    @property
    def used_cores(self) -> int:
        return self._nused

    @property
    def offline_nodes(self) -> set[int]:
        return set(self._offline_node_set)

    def eligible_cores(self, avoid_nodes: set[int] | frozenset[int] = frozenset()) -> int:
        """Cores a unit avoiding *avoid_nodes* could ever occupy.

        Ignores occupancy and repairs-in-progress: this is the *permanent*
        capacity check — if it is below a unit's core count, no amount of
        waiting makes the unit placeable and it must fail instead of
        queueing forever.
        """
        if not avoid_nodes:
            return self.total_cores
        avoided = sum(
            self._node_size(node) for node in avoid_nodes
            if 0 <= node < self.nnodes
        )
        return self.total_cores - avoided

    # -- pool index maintenance ----------------------------------------------------

    def _pool_count_add(self, node: int, delta: int) -> None:
        had = self._node_free[node] > 0
        self._node_free[node] += delta
        has = self._node_free[node] > 0
        if has and not had:
            insort(self._nonempty_nodes, node)
        elif had and not has:
            del self._nonempty_nodes[bisect_left(self._nonempty_nodes, node)]

    def _pool_add(self, slots: list[int]) -> None:
        """*slots* (sorted, disjoint from the pool) join the pool."""
        for start, end in _segments(slots):
            node_lo = start // self.cores_per_node
            node_hi = (end - 1) // self.cores_per_node
            for node in range(node_lo, node_hi + 1):
                span = min(end, (node + 1) * self.cores_per_node) - max(
                    start, node * self.cores_per_node
                )
                self._pool_count_add(node, span)
        self._nfree += len(slots)
        self._index_add(slots)

    def _pool_remove(self, slots: list[int]) -> None:
        """*slots* (sorted, all in the pool) leave the pool."""
        for start, end in _segments(slots):
            node_lo = start // self.cores_per_node
            node_hi = (end - 1) // self.cores_per_node
            for node in range(node_lo, node_hi + 1):
                span = min(end, (node + 1) * self.cores_per_node) - max(
                    start, node * self.cores_per_node
                )
                self._pool_count_add(node, -span)
        self._nfree -= len(slots)
        self._index_remove(slots)

    def _index_add(self, slots: list[int]) -> None:
        """Subclass hook: *slots* (sorted) joined the pool."""

    def _index_remove(self, slots: list[int]) -> None:
        """Subclass hook: *slots* (sorted) left the pool."""

    # -- failure domains -----------------------------------------------------------

    def fail_node(self, node: int) -> None:
        """Mark *node* unschedulable; its free slots leave the pool.

        Occupied slots on the node stay marked occupied — the agent kills
        the resident units and their :meth:`dealloc` then discovers the
        slots are offline and keeps them out of the pool.
        """
        leaving: list[int] = []
        for slot in self.node_slots(node):
            if not self._offline[slot]:
                self._offline[slot] = True
                if self._free[slot]:
                    leaving.append(slot)
        self._offline_node_set.add(node)
        if leaving:
            self._pool_remove(leaving)

    def repair_node(self, node: int) -> None:
        """Return *node* to service; its free slots rejoin the pool."""
        joining: list[int] = []
        for slot in self.node_slots(node):
            if self._offline[slot]:
                self._offline[slot] = False
                if self._free[slot]:
                    joining.append(slot)
        self._offline_node_set.discard(node)
        if joining:
            self._pool_add(joining)

    # -- allocation ----------------------------------------------------------------

    def alloc(
        self,
        ncores: int,
        avoid_nodes: set[int] | frozenset[int] = frozenset(),
    ) -> list[int] | None:
        """Return *ncores* slot ids, or ``None`` if they are not available.

        *avoid_nodes* excludes whole nodes from consideration (retry
        placement exclusion).  Raises :class:`SchedulingError` when the
        request can *never* be satisfied (larger than the pilot), so
        callers fail fast instead of queueing a unit forever.
        """
        if ncores < 1:
            raise SchedulingError("must allocate at least one core")
        if ncores > self.total_cores:
            raise SchedulingError(
                f"unit wants {ncores} cores; pilot holds {self.total_cores}"
            )
        if ncores > self._nfree:
            return None
        slots = self._pick(ncores, avoid_nodes)
        if slots is None:
            return None
        for slot in slots:
            if not self._free[slot]:
                raise SchedulingError(f"slot {slot} double-booked (internal bug)")
            if self._offline[slot]:
                raise SchedulingError(f"slot {slot} allocated while offline (internal bug)")
            self._free[slot] = False
        self._nused += len(slots)
        self._pool_remove(sorted(slots))
        return slots

    def dealloc(self, slots: list[int]) -> None:
        """Free *slots*; offline slots stay out of the pool until repair."""
        joining: list[int] = []
        for slot in slots:
            if self._free[slot]:
                raise SchedulingError(f"slot {slot} freed twice (internal bug)")
            self._free[slot] = True
            if not self._offline[slot]:
                joining.append(slot)
        self._nused -= len(slots)
        if joining:
            joining.sort()
            self._pool_add(joining)

    @abc.abstractmethod
    def _pick(
        self, ncores: int, avoid_nodes: set[int] | frozenset[int]
    ) -> list[int] | None:
        """Choose slots among the pool ones (enough are free by contract)."""


class ContiguousSlotScheduler(CoreSlotScheduler):
    """First-fit contiguous block; may refuse due to fragmentation.

    The pool is indexed as a sorted list of maximal runs: ``_run_starts``
    (sorted starts) with ``_run_end[start] -> end`` and the reverse map
    ``_run_by_end[end] -> start`` for O(log n) merge-on-dealloc.
    """

    def __init__(self, total_cores: int, cores_per_node: int | None = None) -> None:
        super().__init__(total_cores, cores_per_node)
        self._run_starts: list[int] = [0]
        self._run_end: dict[int, int] = {0: total_cores}
        self._run_by_end: dict[int, int] = {total_cores: 0}

    # -- run index -----------------------------------------------------------

    def _insert_run(self, start: int, end: int) -> None:
        """Add pool run ``[start, end)``, merging with adjacent runs."""
        left = self._run_by_end.pop(start, None)
        if left is not None:
            del self._run_end[left]
            del self._run_starts[bisect_left(self._run_starts, left)]
            start = left
        right_end = self._run_end.pop(end, None)
        if right_end is not None:
            del self._run_by_end[right_end]
            del self._run_starts[bisect_left(self._run_starts, end)]
            end = right_end
        insort(self._run_starts, start)
        self._run_end[start] = end
        self._run_by_end[end] = start

    def _remove_span(self, start: int, end: int) -> None:
        """Remove ``[start, end)`` (inside one run) from the run index."""
        i = bisect_right(self._run_starts, start) - 1
        run_start = self._run_starts[i]
        run_end = self._run_end[run_start]
        del self._run_starts[i]
        del self._run_end[run_start]
        del self._run_by_end[run_end]
        if run_start < start:
            insort(self._run_starts, run_start)
            self._run_end[run_start] = start
            self._run_by_end[start] = run_start
        if end < run_end:
            insort(self._run_starts, end)
            self._run_end[end] = run_end
            self._run_by_end[run_end] = end

    def _index_add(self, slots: list[int]) -> None:
        for start, end in _segments(slots):
            self._insert_run(start, end)

    def _index_remove(self, slots: list[int]) -> None:
        for start, end in _segments(slots):
            self._remove_span(start, end)

    # -- placement -----------------------------------------------------------

    def _pick(
        self, ncores: int, avoid_nodes: set[int] | frozenset[int]
    ) -> list[int] | None:
        cpn = self.cores_per_node
        for start in self._run_starts:
            end = self._run_end[start]
            if not avoid_nodes:
                if end - start >= ncores:
                    return list(range(start, start + ncores))
                continue
            # Split the run at avoided-node boundaries; first fit wins.
            cursor = start
            while cursor < end:
                node = cursor // cpn
                if node in avoid_nodes:
                    cursor = (node + 1) * cpn
                    continue
                # Extend over consecutive non-avoided nodes.
                seg_end = min(end, (node + 1) * cpn)
                while seg_end < end and (seg_end // cpn) not in avoid_nodes:
                    seg_end = min(end, (seg_end // cpn + 1) * cpn)
                if seg_end - cursor >= ncores:
                    return list(range(cursor, cursor + ncores))
                cursor = seg_end
        return None


class ScatteredSlotScheduler(CoreSlotScheduler):
    """Lowest-numbered free cores, contiguous or not; never fragments.

    Placement walks the sorted non-empty-node list (node-major slot
    numbering makes node order equal global slot order) and scans only
    the nodes it takes slots from — O(placed + skipped nodes), not
    O(pilot size).
    """

    def _pick(
        self, ncores: int, avoid_nodes: set[int] | frozenset[int]
    ) -> list[int] | None:
        picked: list[int] = []
        need = ncores
        free = self._free
        offline = self._offline
        for node in self._nonempty_nodes:
            if avoid_nodes and node in avoid_nodes:
                continue
            take = min(need, self._node_free[node])
            for slot in self.node_slots(node):
                if free[slot] and not offline[slot]:
                    picked.append(slot)
                    take -= 1
                    if take == 0:
                        break
            need = ncores - len(picked)
            if need == 0:
                return picked
        return None


def make_slot_scheduler(
    kind: str, total_cores: int, cores_per_node: int | None = None
) -> CoreSlotScheduler:
    """Factory: ``"contiguous"`` or ``"scattered"``."""
    if kind == "contiguous":
        return ContiguousSlotScheduler(total_cores, cores_per_node)
    if kind == "scattered":
        return ScatteredSlotScheduler(total_cores, cores_per_node)
    raise SchedulingError(f"unknown slot scheduler {kind!r}")
