"""Core-slot accounting inside a pilot.

The agent owns ``cores`` slots (numbered 0..cores-1, node-major).  A unit
occupies ``unit.description.cores`` slots from launch to completion.  Two
allocation strategies are provided, mirroring RADICAL-Pilot's agent
schedulers:

* :class:`ContiguousSlotScheduler` — MPI-friendly: a unit gets one
  contiguous block of cores (first fit).  Can fragment.
* :class:`ScatteredSlotScheduler` — any free cores will do; never
  fragments, but co-locates nothing.

Slots are grouped into *nodes* of ``cores_per_node`` slots each (slot ``i``
lives on node ``i // cores_per_node``), which is the failure domain of the
node-fault model: :meth:`~CoreSlotScheduler.fail_node` takes a whole node's
slots out of service until :meth:`~CoreSlotScheduler.repair_node`, and
allocations can *avoid* named nodes (the retry policy's failed-node
exclusion list).

The invariant enforced here (and property-tested) is the paper-critical
one: at no instant do occupied slots exceed the pilot size, and no slot is
double-booked.
"""

from __future__ import annotations

import abc

from repro.exceptions import SchedulingError

__all__ = [
    "CoreSlotScheduler",
    "ContiguousSlotScheduler",
    "ScatteredSlotScheduler",
    "make_slot_scheduler",
]


class CoreSlotScheduler(abc.ABC):
    """Tracks which of the pilot's cores are free (and on healthy nodes)."""

    def __init__(self, total_cores: int, cores_per_node: int | None = None) -> None:
        if total_cores < 1:
            raise SchedulingError("pilot must hold at least one core")
        if cores_per_node is not None and cores_per_node < 1:
            raise SchedulingError("cores_per_node must be positive")
        self.total_cores = total_cores
        #: Node size; a single-node pilot by default (no interior domains).
        self.cores_per_node = cores_per_node or total_cores
        self._free = [True] * total_cores
        self._offline = [False] * total_cores
        self._nfree = total_cores

    # -- topology ----------------------------------------------------------------

    @property
    def nnodes(self) -> int:
        return -(-self.total_cores // self.cores_per_node)

    def node_of(self, slot: int) -> int:
        return slot // self.cores_per_node

    def node_slots(self, node: int) -> range:
        """Slot ids of *node* (the last node may be partial)."""
        if not 0 <= node < self.nnodes:
            raise SchedulingError(f"no node {node} in a {self.nnodes}-node pilot")
        start = node * self.cores_per_node
        return range(start, min(start + self.cores_per_node, self.total_cores))

    # -- accounting ---------------------------------------------------------------

    @property
    def free_cores(self) -> int:
        """Schedulable cores: free *and* on a healthy node."""
        return self._nfree

    @property
    def used_cores(self) -> int:
        return sum(1 for free in self._free if not free)

    @property
    def offline_nodes(self) -> set[int]:
        return {
            self.node_of(i) for i, off in enumerate(self._offline) if off
        }

    def eligible_cores(self, avoid_nodes: set[int] | frozenset[int] = frozenset()) -> int:
        """Cores a unit avoiding *avoid_nodes* could ever occupy.

        Ignores occupancy and repairs-in-progress: this is the *permanent*
        capacity check — if it is below a unit's core count, no amount of
        waiting makes the unit placeable and it must fail instead of
        queueing forever.
        """
        if not avoid_nodes:
            return self.total_cores
        return sum(
            1 for i in range(self.total_cores) if self.node_of(i) not in avoid_nodes
        )

    # -- failure domains -----------------------------------------------------------

    def fail_node(self, node: int) -> None:
        """Mark *node* unschedulable; its free slots leave the pool.

        Occupied slots on the node stay marked occupied — the agent kills
        the resident units and their :meth:`dealloc` then discovers the
        slots are offline and keeps them out of the pool.
        """
        for slot in self.node_slots(node):
            if not self._offline[slot]:
                self._offline[slot] = True
                if self._free[slot]:
                    self._nfree -= 1

    def repair_node(self, node: int) -> None:
        """Return *node* to service; its free slots rejoin the pool."""
        for slot in self.node_slots(node):
            if self._offline[slot]:
                self._offline[slot] = False
                if self._free[slot]:
                    self._nfree += 1

    # -- allocation ----------------------------------------------------------------

    def alloc(
        self,
        ncores: int,
        avoid_nodes: set[int] | frozenset[int] = frozenset(),
    ) -> list[int] | None:
        """Return *ncores* slot ids, or ``None`` if they are not available.

        *avoid_nodes* excludes whole nodes from consideration (retry
        placement exclusion).  Raises :class:`SchedulingError` when the
        request can *never* be satisfied (larger than the pilot), so
        callers fail fast instead of queueing a unit forever.
        """
        if ncores < 1:
            raise SchedulingError("must allocate at least one core")
        if ncores > self.total_cores:
            raise SchedulingError(
                f"unit wants {ncores} cores; pilot holds {self.total_cores}"
            )
        if ncores > self._nfree:
            return None
        slots = self._pick(ncores, avoid_nodes)
        if slots is None:
            return None
        for slot in slots:
            if not self._free[slot]:
                raise SchedulingError(f"slot {slot} double-booked (internal bug)")
            if self._offline[slot]:
                raise SchedulingError(f"slot {slot} allocated while offline (internal bug)")
            self._free[slot] = False
        self._nfree -= len(slots)
        return slots

    def dealloc(self, slots: list[int]) -> None:
        """Free *slots*; offline slots stay out of the pool until repair."""
        for slot in slots:
            if self._free[slot]:
                raise SchedulingError(f"slot {slot} freed twice (internal bug)")
            self._free[slot] = True
            if not self._offline[slot]:
                self._nfree += 1

    def _usable(self, slot: int, avoid_nodes: set[int] | frozenset[int]) -> bool:
        return (
            self._free[slot]
            and not self._offline[slot]
            and (not avoid_nodes or self.node_of(slot) not in avoid_nodes)
        )

    @abc.abstractmethod
    def _pick(
        self, ncores: int, avoid_nodes: set[int] | frozenset[int]
    ) -> list[int] | None:
        """Choose slots among the usable ones (enough are free by contract)."""


class ContiguousSlotScheduler(CoreSlotScheduler):
    """First-fit contiguous block; may refuse due to fragmentation."""

    def _pick(
        self, ncores: int, avoid_nodes: set[int] | frozenset[int]
    ) -> list[int] | None:
        run_start = None
        run_len = 0
        for i in range(self.total_cores):
            if self._usable(i, avoid_nodes):
                if run_start is None:
                    run_start = i
                run_len += 1
                if run_len == ncores:
                    return list(range(run_start, run_start + ncores))
            else:
                run_start = None
                run_len = 0
        return None


class ScatteredSlotScheduler(CoreSlotScheduler):
    """Lowest-numbered free cores, contiguous or not; never fragments."""

    def _pick(
        self, ncores: int, avoid_nodes: set[int] | frozenset[int]
    ) -> list[int] | None:
        slots = [
            i for i in range(self.total_cores) if self._usable(i, avoid_nodes)
        ][:ncores]
        return slots if len(slots) == ncores else None


def make_slot_scheduler(
    kind: str, total_cores: int, cores_per_node: int | None = None
) -> CoreSlotScheduler:
    """Factory: ``"contiguous"`` or ``"scattered"``."""
    if kind == "contiguous":
        return ContiguousSlotScheduler(total_cores, cores_per_node)
    if kind == "scattered":
        return ScatteredSlotScheduler(total_cores, cores_per_node)
    raise SchedulingError(f"unknown slot scheduler {kind!r}")
