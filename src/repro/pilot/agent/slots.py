"""Core-slot accounting inside a pilot.

The agent owns ``cores`` slots (numbered 0..cores-1, node-major).  A unit
occupies ``unit.description.cores`` slots from launch to completion.  Two
allocation strategies are provided, mirroring RADICAL-Pilot's agent
schedulers:

* :class:`ContiguousSlotScheduler` — MPI-friendly: a unit gets one
  contiguous block of cores (first fit).  Can fragment.
* :class:`ScatteredSlotScheduler` — any free cores will do; never
  fragments, but co-locates nothing.

The invariant enforced here (and property-tested) is the paper-critical
one: at no instant do occupied slots exceed the pilot size, and no slot is
double-booked.
"""

from __future__ import annotations

import abc

from repro.exceptions import SchedulingError

__all__ = [
    "CoreSlotScheduler",
    "ContiguousSlotScheduler",
    "ScatteredSlotScheduler",
    "make_slot_scheduler",
]


class CoreSlotScheduler(abc.ABC):
    """Tracks which of the pilot's cores are free."""

    def __init__(self, total_cores: int) -> None:
        if total_cores < 1:
            raise SchedulingError("pilot must hold at least one core")
        self.total_cores = total_cores
        self._free = [True] * total_cores
        self._nfree = total_cores

    @property
    def free_cores(self) -> int:
        return self._nfree

    @property
    def used_cores(self) -> int:
        return self.total_cores - self._nfree

    def alloc(self, ncores: int) -> list[int] | None:
        """Return *ncores* slot ids, or ``None`` if they are not available.

        Raises :class:`SchedulingError` when the request can *never* be
        satisfied (larger than the pilot), so callers fail fast instead of
        queueing a unit forever.
        """
        if ncores < 1:
            raise SchedulingError("must allocate at least one core")
        if ncores > self.total_cores:
            raise SchedulingError(
                f"unit wants {ncores} cores; pilot holds {self.total_cores}"
            )
        if ncores > self._nfree:
            return None
        slots = self._pick(ncores)
        if slots is None:
            return None
        for slot in slots:
            if not self._free[slot]:
                raise SchedulingError(f"slot {slot} double-booked (internal bug)")
            self._free[slot] = False
        self._nfree -= len(slots)
        return slots

    def dealloc(self, slots: list[int]) -> None:
        for slot in slots:
            if self._free[slot]:
                raise SchedulingError(f"slot {slot} freed twice (internal bug)")
            self._free[slot] = True
        self._nfree += len(slots)

    @abc.abstractmethod
    def _pick(self, ncores: int) -> list[int] | None:
        """Choose slots among the free ones (enough are free by contract)."""


class ContiguousSlotScheduler(CoreSlotScheduler):
    """First-fit contiguous block; may refuse due to fragmentation."""

    def _pick(self, ncores: int) -> list[int] | None:
        run_start = None
        run_len = 0
        for i, free in enumerate(self._free):
            if free:
                if run_start is None:
                    run_start = i
                run_len += 1
                if run_len == ncores:
                    return list(range(run_start, run_start + ncores))
            else:
                run_start = None
                run_len = 0
        return None


class ScatteredSlotScheduler(CoreSlotScheduler):
    """Lowest-numbered free cores, contiguous or not; never fragments."""

    def _pick(self, ncores: int) -> list[int] | None:
        slots = [i for i, free in enumerate(self._free) if free][:ncores]
        return slots if len(slots) == ncores else None


def make_slot_scheduler(kind: str, total_cores: int) -> CoreSlotScheduler:
    """Factory: ``"contiguous"`` or ``"scattered"``."""
    if kind == "contiguous":
        return ContiguousSlotScheduler(total_cores)
    if kind == "scattered":
        return ScatteredSlotScheduler(total_cores)
    raise SchedulingError(f"unknown slot scheduler {kind!r}")
