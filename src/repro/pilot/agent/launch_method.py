"""Launch methods: how a unit's payload is started on its slots.

On a real machine this is the difference between ``fork``/``ssh`` for
serial tasks and ``mpirun``/``ibrun``/``aprun`` for MPI tasks.  Here a
launch method contributes two things:

* the *launch overhead* it adds (MPI startup costs scale mildly with the
  number of ranks), and
* the :class:`~repro.pilot.agent.executor.TaskContext` rank layout handed
  to really-executing payloads (rank count = cores), which payloads may use
  to split work, exactly like an MPI world size.

The paper's Fig. 9 (MPI capability) exercises this layer: a unit holding N
cores must both occupy N slots and run ~N× faster when its kernel scales.
"""

from __future__ import annotations

import abc

from repro.cluster.platform import PlatformSpec
from repro.exceptions import LaunchError
from repro.pilot.description import ComputeUnitDescription

__all__ = ["LaunchMethod", "ForkLaunch", "MPIExecLaunch", "get_launch_method"]


class LaunchMethod(abc.ABC):
    """Strategy object selected per unit by the executor."""

    name: str = ""

    @abc.abstractmethod
    def launch_overhead(self, cores: int, platform: PlatformSpec) -> float:
        """Seconds between slot assignment and user code running."""

    @abc.abstractmethod
    def validate(self, description: ComputeUnitDescription) -> None:
        """Raise :class:`LaunchError` if the unit cannot use this method."""

    def command_line(self, description: ComputeUnitDescription) -> str:
        """The equivalent shell command (for logs and provenance only)."""
        args = " ".join(description.arguments)
        return f"{description.executable} {args}".strip()


class ForkLaunch(LaunchMethod):
    """Plain process spawn for single-core units."""

    name = "fork"

    def launch_overhead(self, cores: int, platform: PlatformSpec) -> float:
        return platform.unit_launch_overhead

    def validate(self, description: ComputeUnitDescription) -> None:
        if description.cores != 1:
            raise LaunchError("fork launch method only supports 1-core units")


class MPIExecLaunch(LaunchMethod):
    """mpirun-style launch for multi-core (MPI) units.

    Startup cost grows logarithmically with rank count, which is the usual
    behaviour of tree-based MPI launchers.
    """

    name = "mpiexec"

    def launch_overhead(self, cores: int, platform: PlatformSpec) -> float:
        import math

        return platform.unit_launch_overhead * (1.0 + math.log2(max(cores, 1)))

    def validate(self, description: ComputeUnitDescription) -> None:
        if not description.mpi:
            raise LaunchError("mpiexec launch method requires mpi=True")

    def command_line(self, description: ComputeUnitDescription) -> str:
        base = super().command_line(description)
        return f"mpirun -np {description.cores} {base}"


_FORK = ForkLaunch()
_MPI = MPIExecLaunch()


def get_launch_method(description: ComputeUnitDescription) -> LaunchMethod:
    """Pick and validate the launch method for *description*."""
    method = _MPI if description.mpi else _FORK
    method.validate(description)
    return method
