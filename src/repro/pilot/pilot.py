"""The compute pilot: a placeholder job holding cores for the agent."""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.pilot.description import ComputePilotDescription
from repro.pilot.states import PilotState, validate_pilot_edge
from repro.utils.ids import generate_id

__all__ = ["ComputePilot"]


class ComputePilot:
    """Runtime handle of one pilot (container job + agent)."""

    def __init__(self, description: ComputePilotDescription, session: Any) -> None:
        description.validate()
        self.uid = generate_id("pilot")
        self.description = description
        self.session = session
        self._state = PilotState.NEW
        self._lock = threading.RLock()
        self._active_event = threading.Event()
        self._final_event = threading.Event()
        self._callbacks: list[Callable[["ComputePilot", PilotState], Any]] = []
        self.timestamps: dict[str, float] = {"NEW": session.now()}
        self.agent: Any = None  # attached by the pilot manager at launch
        self.saga_job: Any = None
        #: Container-job resubmissions consumed (pilot-level fault tolerance).
        self.resubmits = 0

    @property
    def state(self) -> PilotState:
        return self._state

    @property
    def cores(self) -> int:
        return self.description.cores

    def advance(self, target: PilotState) -> None:
        with self._lock:
            validate_pilot_edge(f"ComputePilot {self.uid}", self._state, target)
            self._state = target
            self.timestamps[target.value] = self.session.now()
            callbacks = list(self._callbacks)
        self.session.prof.event("pilot_state", self.uid, state=target.value)
        for cb in callbacks:
            cb(self, target)
        if target is PilotState.ACTIVE:
            self._active_event.set()
        if target.is_final:
            self._final_event.set()

    def add_callback(self, callback: Callable[["ComputePilot", PilotState], Any]) -> None:
        self._callbacks.append(callback)

    def wait_active(self, timeout: float | None = None) -> PilotState:
        """Block until ACTIVE (local mode); immediate under simulation."""
        if getattr(self.session, "is_simulated", False):
            return self._state
        self._active_event.wait(timeout)
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ComputePilot {self.uid} {self._state.value} "
            f"{self.description.resource} cores={self.cores}>"
        )
