"""The pilot manager: submits and tears down pilots through SAGA."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.exceptions import PilotError
from repro.pilot.agent.agent import Agent
from repro.pilot.description import ComputePilotDescription
from repro.pilot.pilot import ComputePilot
from repro.pilot.states import PilotState
from repro.saga.job import JobDescription, JobService
from repro.saga.states import JobState
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.session import Session

__all__ = ["PilotManager"]

log = get_logger("pilot.pmgr")


class PilotManager:
    """Creates pilots, launches their container jobs, attaches agents."""

    def __init__(self, session: "Session", **agent_options) -> None:
        self.session = session
        self.uid = "pmgr." + session.uid
        self.pilots: list[ComputePilot] = []
        self._agent_options = agent_options
        self._services: dict[str, JobService] = {}
        #: Pending pilot-level fault event per pilot uid (sim only).
        self._pilot_fault_events: dict[str, object] = {}

    # -- submission ---------------------------------------------------------------

    def submit_pilots(
        self, descriptions: list[ComputePilotDescription] | ComputePilotDescription
    ) -> list[ComputePilot]:
        """Launch one container job per description; returns pilot handles."""
        if isinstance(descriptions, ComputePilotDescription):
            descriptions = [descriptions]
        pilots = []
        for description in descriptions:
            pilots.append(self._submit_one(description))
        return pilots

    def _submit_one(self, description: ComputePilotDescription) -> ComputePilot:
        description.validate()
        if description.mode != self.session.mode:
            raise PilotError(
                f"pilot mode {description.mode!r} does not match session "
                f"mode {self.session.mode!r}"
            )
        pilot = ComputePilot(description, self.session)
        pilot.agent = Agent(self.session, pilot, **self._agent_options)
        with self.session.tracer.span(
            "pmgr.submit", self.uid, cores=description.cores
        ):
            self.session.prof.event(
                "pilot_submit", pilot.uid, cores=description.cores
            )
            if self.session.is_simulated:
                self._launch_sim(pilot)
            else:
                self._launch_local(pilot)
        self.pilots.append(pilot)
        self.session.store.insert(
            "pilots",
            pilot.uid,
            {"resource": description.resource, "cores": description.cores},
        )
        return pilot

    def _launch_sim(self, pilot: ComputePilot) -> None:
        context = self.session.sim_context
        service = JobService(f"sim://{pilot.description.resource}", context=context)
        self._services[pilot.uid] = service
        job = self._make_sim_job(pilot, service)
        pilot.advance(PilotState.PENDING)
        job.run()

    def _make_sim_job(self, pilot: ComputePilot, service: JobService):
        """One container-job incarnation of *pilot* (initial or resubmitted)."""
        context = self.session.sim_context
        submitted = self.session.now()

        def payload(job) -> None:
            # Container job started: batch-queue wait is over for this
            # incarnation; the agent bootstraps, then goes ACTIVE.
            self.session.metrics.sample(
                "pilot.queue_wait", self.session.now() - submitted
            )

            def bootstrap_done() -> None:
                if pilot.state is PilotState.PENDING:
                    pilot.advance(PilotState.ACTIVE)
                    pilot.agent.start()
                    self._arm_pilot_fault(pilot, job)

            context.sim.schedule(
                context.platform.agent_bootstrap,
                bootstrap_done,
                label=f"bootstrap:{pilot.uid}",
            )

        def on_job_state(job, state: JobState) -> None:
            if pilot.state.is_final:
                return
            if state is JobState.DONE:
                # Container job ended normally (modelled duration elapsed):
                # the allocation is gone, the pilot is done — not failed.
                self._disarm_pilot_fault(pilot)
                pilot.agent.stop()
                pilot.advance(PilotState.DONE)
            elif state is JobState.FAILED:
                self._disarm_pilot_fault(pilot)
                if pilot.resubmits < self.session.max_pilot_resubmits:
                    self._resubmit_sim(pilot, service)
                else:
                    # FAILED first so retry placement skips this pilot,
                    # then fail/migrate everything it still held.
                    pilot.advance(PilotState.FAILED)
                    pilot.agent.abort()
            elif state is JobState.CANCELED:
                self._disarm_pilot_fault(pilot)
                pilot.agent.stop()
                pilot.advance(PilotState.CANCELED)

        job = service.create_job(
            JobDescription(
                name=pilot.uid,
                executable="pilot-agent",
                total_cpu_count=pilot.cores,
                wall_time_limit=pilot.description.runtime * 60.0,
                payload=payload,
            )
        )
        job.add_callback(on_job_state)
        pilot.saga_job = job
        return job

    def _resubmit_sim(self, pilot: ComputePilot, service: JobService) -> None:
        """Send a killed pilot back through the batch queue.

        The agent is suspended (in-flight units go to the unit manager's
        retry path, queued units are kept), the pilot returns to PENDING,
        and a fresh container job pays submit latency and queue wait again.
        """
        pilot.resubmits += 1
        log.info("resubmitting pilot %s (attempt %d/%d)",
                 pilot.uid, pilot.resubmits, self.session.max_pilot_resubmits)
        pilot.agent.suspend()
        job = self._make_sim_job(pilot, service)
        pilot.advance(PilotState.PENDING)
        self.session.prof.event(
            "pilot_resubmit", pilot.uid, attempt=pilot.resubmits
        )
        job.run()

    def _arm_pilot_fault(self, pilot: ComputePilot, job) -> None:
        """Draw this incarnation's death time from the pilot-fault stream."""
        mtbf = self.session.pilot_mtbf
        if not mtbf:
            return
        context = self.session.sim_context
        delay = float(context.streams.get("pilot_faults").exponential(mtbf))

        def fire() -> None:
            self._pilot_fault_events.pop(pilot.uid, None)
            if job.state is JobState.RUNNING:
                self.session.prof.event("pilot_fault", pilot.uid)
                job.fail()

        self._pilot_fault_events[pilot.uid] = context.sim.schedule(
            delay, fire, label=f"pilot_fault:{pilot.uid}"
        )

    def _disarm_pilot_fault(self, pilot: ComputePilot) -> None:
        event = self._pilot_fault_events.pop(pilot.uid, None)
        if event is not None:
            self.session.sim.cancel(event)

    def _launch_local(self, pilot: ComputePilot) -> None:
        service = JobService("fork://localhost")
        self._services[pilot.uid] = service

        def payload(job) -> None:
            # The container job thread *is* the allocation: it stays alive
            # until the pilot is finalized, exactly like a real batch job.
            pilot.advance(PilotState.ACTIVE)
            pilot.agent.start()
            pilot._final_event.wait(timeout=pilot.description.runtime * 60.0)

        def on_job_state(job, state: JobState) -> None:
            # Walltime expiry with the pilot still ACTIVE is a normal end of
            # allocation: the pilot is DONE, not CANCELED/FAILED.
            if pilot.state.is_final:
                return
            if state is JobState.DONE:
                pilot.agent.stop()
                pilot.advance(PilotState.DONE)

        job = service.create_job(
            JobDescription(
                name=pilot.uid,
                executable="pilot-agent",
                total_cpu_count=pilot.cores,
                wall_time_limit=pilot.description.runtime * 60.0,
                payload=payload,
            )
        )
        job.add_callback(on_job_state)
        pilot.saga_job = job
        pilot.advance(PilotState.PENDING)
        job.run()

    # -- teardown -----------------------------------------------------------------

    def cancel_pilots(self, pilots: list[ComputePilot] | None = None) -> None:
        """Cancel *pilots* (default: all owned) and release their resources."""
        for pilot in pilots if pilots is not None else list(self.pilots):
            if pilot.state.is_final:
                continue
            self.session.prof.event("pilot_cancel", pilot.uid)
            self._disarm_pilot_fault(pilot)
            pilot.agent.stop()
            pilot.advance(PilotState.CANCELED)
            if pilot.saga_job is not None:
                pilot.saga_job.cancel()

    def wait_pilots_active(self, timeout: float | None = None) -> None:
        """Local mode: block until every pilot is ACTIVE.  Sim: advance DES."""
        if self.session.is_simulated:
            sim = self.session.sim
            while any(
                p.state in (PilotState.NEW, PilotState.PENDING) for p in self.pilots
            ):
                if sim.step() is None:
                    raise PilotError("simulation drained before pilots activated")
            return
        for pilot in self.pilots:
            pilot.wait_active(timeout)
