"""Columnar (struct-of-arrays) storage for compute units.

At 10^4 units a dict-backed Python object per unit is invisible; at the
10^6-unit scale envelope it is the dominant memory term (~1 KB of object
headers, instance dict, timestamps dict and lock per unit before the
unit has done anything).  The :class:`UnitStore` keeps every dense
per-unit field in parallel ``array`` columns — state, cores, retry
counts, one timestamp column per lifecycle state, slot-arena offsets —
and every *sparse* field (result, exception, sandbox, node exclusions,
wait events) in side dicts that only pay for units that actually use
them.  :class:`~repro.pilot.unit.ComputeUnit` is a two-word view over
one row, so the public unit API is unchanged.

Two write paths share the columns:

* the classic per-unit path (``add``/``advance``) emits exactly the
  events and metric points the object implementation emitted, in the
  same order — the golden-trace hashes pin this;
* the bulk path (``add_bulk``/``advance_many``) moves homogeneous
  batches with one profiler append and one metrics update per batch.
  It is opt-in (``Session(bulk_lifecycle=True)``) because it
  intentionally coarsens the trace: per-unit ``unit_state`` events
  become per-batch ``units_state`` events.

Unit uids are *lazy*: the store reserves serial blocks from the global
id counter (:func:`repro.utils.ids.reserve_id_block`) and formats
``unit.%06d`` on demand, so a million units do not hold a million
resident uid strings while remaining bit-identical to eagerly
generated ids.
"""

from __future__ import annotations

import threading
from array import array
from math import isnan, nan
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator

from repro.pilot.states import UnitState, validate_unit_edge
from repro.utils.ids import reserve_id_block

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pilot.description import ComputeUnitDescription
    from repro.pilot.unit import ComputeUnit

__all__ = ["UnitStore", "UnitTimestamps"]

#: Stable state <-> small-int codec (enum definition order).
_STATES: list[UnitState] = list(UnitState)
_STATE_INDEX: dict[UnitState, int] = {s: i for i, s in enumerate(_STATES)}

#: Gauge name per unit state, precomputed once — ``advance`` runs for every
#: transition of every unit and must not rebuild these strings each time.
_STATE_GAUGES = {state: f"units.{state.value}" for state in UnitState}

_UID_WIDTH = 6
_EMPTY_EXCLUSIONS: frozenset[tuple[str, int]] = frozenset()


class UnitTimestamps:
    """Mapping view over one unit's row in the timestamp columns.

    Mirrors the historical ``unit.timestamps`` dict: keys are state
    values (``"NEW"``, ``"EXECUTING"``, ...) present only once entered,
    values are the session time of the *latest* entry into that state.
    """

    __slots__ = ("_store", "_i")

    def __init__(self, store: "UnitStore", i: int) -> None:
        self._store = store
        self._i = i

    def get(self, key: str, default: Any = None) -> Any:
        column = self._store._ts.get(key)
        if column is None:
            return default
        value = column[self._i]
        return default if isnan(value) else value

    def __getitem__(self, key: str) -> float:
        value = self.get(key)
        if value is None:
            raise KeyError(key)
        return value

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and self.get(key) is not None

    def __iter__(self) -> Iterator[str]:
        for state in _STATES:
            if self.get(state.value) is not None:
                yield state.value

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def keys(self) -> list[str]:
        return list(self)

    def items(self) -> list[tuple[str, float]]:
        return [(key, self[key]) for key in self]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UnitTimestamps({dict(self.items())!r})"


class UnitStore:
    """Struct-of-arrays backing store for every unit of one session."""

    def __init__(self, session: Any) -> None:
        self._session = session
        self._metrics = getattr(session, "metrics", None)
        # One coarse lock replaces the historical per-unit locks: the
        # only concurrent writers are local-mode executor threads, and
        # they contend for the profiler's single lock anyway.
        self._lock = threading.Lock()

        # Dense columns, one slot per unit.
        self._serial = array("q")  # global id-counter value behind the uid
        self._state = array("b")  # index into _STATES
        self._cores = array("i")
        self._attempts = array("i")
        self._pilot = array("i")  # index into _pilot_uids; -1 = unassigned
        self._cb_group = array("i")  # index into _shared_cbs; -1 = none
        self._slots_off = array("q")  # offset into the slot arena
        self._slots_len = array("i")
        #: state value -> per-unit entry time column (NaN = never entered).
        self._ts: dict[str, array] = {s.value: array("d") for s in _STATES}

        #: Occupied core ids, packed; append-only (freed rows keep their
        #: cells — at one int per core-occupancy this is noise next to
        #: what resident slot lists used to cost).
        self._slots_arena = array("i")

        self._descriptions: list["ComputeUnitDescription"] = []
        self._pilot_uids: list[str] = []
        self._pilot_index: dict[str, int] = {}
        #: Callback lists shared by a whole bulk-submitted batch.
        self._shared_cbs: list[list[Callable]] = []

        # Sparse side tables (unit index -> value); only units that
        # actually fail / stage / block pay for an entry.
        self._results: dict[int, Any] = {}
        self._exceptions: dict[int, BaseException] = {}
        self._sandboxes: dict[int, str] = {}
        self._excluded: dict[int, set[tuple[str, int]]] = {}
        self._extra_cbs: dict[int, list[Callable]] = {}
        self._final_events: dict[int, threading.Event] = {}

    def __len__(self) -> int:
        return len(self._serial)

    # -- registration -------------------------------------------------------

    def _append_row(self, description: "ComputeUnitDescription",
                    serial: int, now: float) -> int:
        i = len(self._serial)
        self._serial.append(serial)
        self._state.append(_STATE_INDEX[UnitState.NEW])
        self._cores.append(description.cores)
        self._attempts.append(0)
        self._pilot.append(-1)
        self._cb_group.append(-1)
        self._slots_off.append(0)
        self._slots_len.append(0)
        for state in _STATES:
            self._ts[state.value].append(
                now if state is UnitState.NEW else nan
            )
        self._descriptions.append(description)
        return i

    def add(self, description: "ComputeUnitDescription") -> int:
        """Register one unit (the classic per-unit path); returns its row."""
        description.validate()
        serial = reserve_id_block("unit", 1)
        i = self._append_row(description, serial, self._session.now())
        if self._metrics is not None:
            self._metrics.adjust("units.NEW", 1)
        return i

    def add_bulk(self, descriptions: Iterable["ComputeUnitDescription"]) -> range:
        """Register a batch: one id-block reservation, one metrics update."""
        descriptions = list(descriptions)
        for description in descriptions:
            description.validate()
        if not descriptions:
            return range(len(self._serial), len(self._serial))
        serial = reserve_id_block("unit", len(descriptions))
        now = self._session.now()
        first = len(self._serial)
        for offset, description in enumerate(descriptions):
            self._append_row(description, serial + offset, now)
        if self._metrics is not None:
            self._metrics.adjust("units.NEW", len(descriptions))
        return range(first, first + len(descriptions))

    # -- dense fields -------------------------------------------------------

    def uid(self, i: int) -> str:
        return f"unit.{self._serial[i]:0{_UID_WIDTH}d}"

    def state(self, i: int) -> UnitState:
        return _STATES[self._state[i]]

    def cores(self, i: int) -> int:
        return self._cores[i]

    def description(self, i: int) -> "ComputeUnitDescription":
        return self._descriptions[i]

    def attempts(self, i: int) -> int:
        return self._attempts[i]

    def set_attempts(self, i: int, value: int) -> None:
        self._attempts[i] = value

    def pilot_uid(self, i: int) -> str | None:
        index = self._pilot[i]
        return None if index < 0 else self._pilot_uids[index]

    def set_pilot_uid(self, i: int, uid: str | None) -> None:
        if uid is None:
            self._pilot[i] = -1
            return
        index = self._pilot_index.get(uid)
        if index is None:
            index = len(self._pilot_uids)
            self._pilot_uids.append(uid)
            self._pilot_index[uid] = index
        self._pilot[i] = index

    def slots(self, i: int) -> list[int]:
        length = self._slots_len[i]
        if not length:
            return []
        off = self._slots_off[i]
        return list(self._slots_arena[off:off + length])

    def set_slots(self, i: int, slots: list[int]) -> None:
        if not slots:
            self._slots_len[i] = 0
            return
        self._slots_off[i] = len(self._slots_arena)
        self._slots_len[i] = len(slots)
        self._slots_arena.extend(slots)

    # -- sparse fields ------------------------------------------------------

    def result(self, i: int) -> Any:
        return self._results.get(i)

    def set_result(self, i: int, value: Any) -> None:
        if value is None:
            self._results.pop(i, None)
        else:
            self._results[i] = value

    def exception(self, i: int) -> BaseException | None:
        return self._exceptions.get(i)

    def set_exception(self, i: int, exc: BaseException | None) -> None:
        if exc is None:
            self._exceptions.pop(i, None)
        else:
            self._exceptions[i] = exc

    def sandbox(self, i: int) -> str | None:
        return self._sandboxes.get(i)

    def set_sandbox(self, i: int, path: str | None) -> None:
        if path is None:
            self._sandboxes.pop(i, None)
        else:
            self._sandboxes[i] = path

    def excluded_nodes(self, i: int) -> frozenset[tuple[str, int]] | set:
        return self._excluded.get(i, _EMPTY_EXCLUSIONS)

    def exclude_node(self, i: int, pilot_uid: str, node: int) -> None:
        self._excluded.setdefault(i, set()).add((pilot_uid, node))

    # -- callbacks ----------------------------------------------------------

    def set_group_callbacks(self, rows: range, callbacks: list[Callable]) -> None:
        """Attach one shared callback list to every unit in *rows*."""
        if not callbacks:
            return
        group = len(self._shared_cbs)
        self._shared_cbs.append(callbacks)
        for i in rows:
            self._cb_group[i] = group

    def add_callback(self, i: int, callback: Callable) -> None:
        self._extra_cbs.setdefault(i, []).append(callback)

    def remove_callback(self, i: int, callback: Callable) -> None:
        with self._lock:
            extras = self._extra_cbs.get(i)
            if extras and callback in extras:
                extras.remove(callback)
                if not extras:
                    del self._extra_cbs[i]

    def callbacks(self, i: int) -> list[Callable]:
        group = self._cb_group[i]
        shared = self._shared_cbs[group] if group >= 0 else ()
        extras = self._extra_cbs.get(i)
        if extras is None:
            return list(shared)
        return [*shared, *extras]

    def final_event(self, i: int, *, create: bool = False) -> threading.Event | None:
        event = self._final_events.get(i)
        if event is None and create:
            event = self._final_events[i] = threading.Event()
        return event

    # -- lifecycle ----------------------------------------------------------

    def advance(self, unit: "ComputeUnit", target: UnitState) -> None:
        """Classic single-unit transition; emission order is pinned by the
        golden traces: stamp → ``unit_state`` event → gauge adjustments →
        callbacks → final-event set."""
        i = unit._i
        session = self._session
        with self._lock:
            previous = _STATES[self._state[i]]
            validate_unit_edge(f"ComputeUnit {self.uid(i)}", previous, target)
            self._state[i] = _STATE_INDEX[target]
            self._ts[target.value][i] = session.now()
            callbacks = self.callbacks(i)
        session.prof.event("unit_state", self.uid(i), state=target.value)
        metrics = self._metrics
        if metrics is not None:
            metrics.adjust(_STATE_GAUGES[previous], -1)
            metrics.adjust(_STATE_GAUGES[target], 1)
        for cb in callbacks:
            cb(unit, target)
        if target.is_final:
            with self._lock:
                event = self._final_events.get(i)
            if event is not None:
                event.set()

    def advance_many(self, units: list["ComputeUnit"], target: UnitState) -> None:
        """Bulk transition: one ``units_state`` event and one gauge
        update pair per homogeneous (same current state) group instead
        of per unit.  Callbacks still fire per unit — pattern drivers
        track per-unit progress through them."""
        if not units:
            return
        session = self._session
        groups: dict[UnitState, list["ComputeUnit"]] = {}
        for unit in units:
            groups.setdefault(_STATES[self._state[unit._i]], []).append(unit)
        metrics = self._metrics
        for previous, group in groups.items():
            validate_unit_edge(
                f"ComputeUnit {self.uid(group[0]._i)}", previous, target
            )
            code = _STATE_INDEX[target]
            column = self._ts[target.value]
            now = session.now()
            with self._lock:
                for unit in group:
                    self._state[unit._i] = code
                    column[unit._i] = now
            session.prof.event(
                "units_state", self.uid(group[0]._i),
                state=target.value, n=len(group),
                last=self.uid(group[-1]._i),
            )
            if metrics is not None:
                metrics.adjust(_STATE_GAUGES[previous], -len(group))
                metrics.adjust(_STATE_GAUGES[target], len(group))
            for unit in group:
                callbacks = self.callbacks(unit._i)
                for cb in callbacks:
                    cb(unit, target)
            if target.is_final:
                for unit in group:
                    event = self._final_events.get(unit._i)
                    if event is not None:
                        event.set()
