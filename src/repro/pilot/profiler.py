"""Append-only event tracing.

Every state transition and every notable runtime action lands in one
:class:`Profiler` as ``(time, name, uid, attrs)``.  The analytics layer
(:mod:`repro.analytics`) turns these traces into the paper's TTC and
overhead decompositions; nothing else in the runtime ever reads the trace,
so profiling cannot perturb scheduling decisions.

Where appended events *live* is delegated to an
:class:`~repro.telemetry.sink.EventSink`: the default
:class:`~repro.telemetry.sink.MemorySink` keeps the historical
everything-resident list, while a
:class:`~repro.telemetry.sink.SpoolSink` streams events to an NDJSON
spool file and keeps only a bounded ring in memory — the million-unit
scale envelope.  ``ProfileEvent`` is defined next to the sinks and
re-exported here under its historical import path.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterator

from repro.telemetry.sink import EventSink, MemorySink, ProfileEvent

__all__ = ["ProfileEvent", "Profiler"]


class Profiler:
    """Thread-safe, append-only event trace."""

    def __init__(
        self, clock: Callable[[], float], sink: EventSink | None = None
    ) -> None:
        self._clock = clock
        self._sink: EventSink = MemorySink() if sink is None else sink
        self._lock = threading.Lock()

    @property
    def sink(self) -> EventSink:
        return self._sink

    def event(self, name: str, uid: str = "", **attrs: Any) -> ProfileEvent:
        """Record one event stamped with the session clock."""
        ev = ProfileEvent(self._clock(), name, uid, attrs)
        with self._lock:
            self._sink.append(ev)
        return ev

    def record(self, name: str, uid: str, attrs: dict[str, Any]) -> ProfileEvent:
        """Like :meth:`event` but takes the attrs dict directly.

        Hot emitters (span open/close, metric points) build their attrs
        dict anyway; handing it over instead of exploding it through
        ``**kwargs`` skips one dict copy per event.  The caller must not
        reuse or mutate *attrs* afterwards.
        """
        ev = ProfileEvent(self._clock(), name, uid, attrs)
        with self._lock:
            self._sink.append(ev)
        return ev

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._sink)

    def __iter__(self) -> Iterator[ProfileEvent]:
        with self._lock:
            return iter(self._sink.events())

    def snapshot(self, since: int = 0) -> tuple[list[ProfileEvent], int]:
        """Incremental view: events recorded at index ``since`` onward.

        Returns ``(new_events, cursor)`` where ``cursor`` is the index
        to pass as ``since`` next time.  Because the trace is
        append-only, repeated calls see every event exactly once —
        the telemetry span builder and analytics poll large live traces
        through this.  O(new) on a memory sink; a spool sink pays a
        file re-read, which only end-of-run consumers do.
        """
        with self._lock:
            fresh = self._sink.events(since)
            cursor = len(self._sink)
        return fresh, cursor

    def events(self, name: str | None = None, uid: str | None = None) -> list[ProfileEvent]:
        """Events filtered by name and/or uid, in recording order."""
        with self._lock:
            snapshot = self._sink.events()
        return [
            ev
            for ev in snapshot
            if (name is None or ev.name == name) and (uid is None or ev.uid == uid)
        ]

    def first(self, name: str, uid: str | None = None) -> ProfileEvent | None:
        matches = self.events(name, uid)
        return matches[0] if matches else None

    def last(self, name: str, uid: str | None = None) -> ProfileEvent | None:
        matches = self.events(name, uid)
        return matches[-1] if matches else None

    def span(self, start_name: str, end_name: str, uid: str | None = None) -> float | None:
        """Seconds from the first *start_name* to the last *end_name*."""
        start = self.first(start_name, uid)
        end = self.last(end_name, uid)
        if start is None or end is None:
            return None
        return end.time - start.time

    # -- persistence ---------------------------------------------------------

    def write_jsonl(self, path) -> int:
        """Dump the trace as JSON lines (one event per line); returns the
        event count.  The format matches what RADICAL-Analytics-style
        post-processing expects: ``{"time", "name", "uid", **attrs}`` —
        and is byte-identical to a :class:`SpoolSink`'s spool file."""
        import json
        from pathlib import Path

        path = Path(path)
        with self._lock:
            snapshot = self._sink.events()
        with path.open("w") as stream:
            for ev in snapshot:
                stream.write(json.dumps(ev.row(), default=str) + "\n")
        return len(snapshot)

    def close(self) -> None:
        """Flush and close the sink (a no-op for memory sinks)."""
        with self._lock:
            self._sink.close()
