"""Descriptions of pilots and compute units.

A :class:`ComputeUnitDescription` carries both a *real* payload (a Python
callable executed by the local executor) and a *modelled* cost (used by the
simulated executor).  Kernel plugins (``repro.kernels``) populate both, so
the same application code runs in either execution mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.exceptions import BadParameter

__all__ = [
    "ComputePilotDescription",
    "ComputeUnitDescription",
    "StagingDirective",
]


@dataclass(slots=True)
class ComputePilotDescription:
    """Request for one pilot (container job)."""

    resource: str  # platform name, e.g. "xsede.comet" or "local.localhost"
    cores: int
    #: Requested walltime in *minutes*, as on real batch systems.
    runtime: float
    queue: str = ""
    project: str = ""
    #: Execution mode: "local" really executes, "sim" uses the DES.
    mode: str = "local"

    def validate(self) -> None:
        if self.cores < 1:
            raise BadParameter("pilot needs at least one core")
        if self.runtime <= 0:
            raise BadParameter("pilot runtime must be positive")
        if self.mode not in ("local", "sim"):
            raise BadParameter(f"unknown pilot mode {self.mode!r}")


@dataclass(frozen=True, slots=True)
class StagingDirective:
    """One data-staging action for a unit.

    *action* is one of ``link`` (no data motion; zero cost), ``copy``
    (within the shared filesystem) or ``transfer`` (client <-> resource).
    ``source``/``target`` are sandbox-relative paths; placeholders
    ``$PILOT_SANDBOX`` and ``$UNIT_<uid>`` are resolved by the agent's
    stager.  *nbytes* is the modelled size used by the simulated mode.
    """

    source: str
    target: str
    action: str = "copy"
    nbytes: int = 0

    def __post_init__(self) -> None:
        if self.action not in ("link", "copy", "transfer"):
            raise BadParameter(f"unknown staging action {self.action!r}")
        if self.nbytes < 0:
            raise BadParameter("nbytes must be non-negative")


@dataclass(slots=True)
class ComputeUnitDescription:
    """Description of one task.

    ``payload(ctx)`` is executed in local mode; ``ctx`` is a
    :class:`repro.pilot.agent.executor.TaskContext` giving the unit its
    sandbox, its core count and its kernel arguments.  ``duration_model``
    maps ``(cores, platform)`` to modelled seconds in simulated mode; when
    absent, ``modelled_duration`` is used as a constant.
    """

    executable: str = ""
    arguments: list[str] = field(default_factory=list)
    environment: dict[str, str] = field(default_factory=dict)
    cores: int = 1
    mpi: bool = False
    name: str = ""
    payload: Callable[[Any], Any] | None = None
    modelled_duration: float = 0.0
    duration_model: Callable[[int, Any], float] | None = None
    input_staging: list[StagingDirective] = field(default_factory=list)
    output_staging: list[StagingDirective] = field(default_factory=list)
    #: Free-form metadata (pattern name, stage index, ...) used by profiling.
    tags: dict[str, Any] = field(default_factory=dict)

    def validate(self) -> None:
        if self.cores < 1:
            raise BadParameter("unit needs at least one core")
        if self.cores > 1 and not self.mpi:
            raise BadParameter("multi-core units must set mpi=True")
        if self.modelled_duration < 0:
            raise BadParameter("modelled_duration must be non-negative")

    def modelled_runtime(self, platform: Any) -> float:
        """Modelled execution seconds on *platform* (sim mode only)."""
        if self.duration_model is not None:
            return float(self.duration_model(self.cores, platform))
        return float(self.modelled_duration)
