"""The pilot session: root object of one runtime instance."""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.cluster.faults import NodeFaultModel
from repro.cluster.platforms import get_platform
from repro.eventsim import RandomStreams
from repro.exceptions import ConfigurationError
from repro.pilot.db import SessionStore
from repro.pilot.faults import FaultModel
from repro.pilot.retry import RetryPolicy
from repro.pilot.profiler import Profiler
from repro.pilot.unit_store import UnitStore
from repro.saga.adaptors.sim import SimContext
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sink import SpoolSink
from repro.telemetry.span import Tracer
from repro.utils.ids import generate_id
from repro.utils.logger import get_logger
from repro.utils.timing import WallClock

__all__ = ["Session"]

log = get_logger("pilot.session")


class Session:
    """Owns the clock, profiler, store and (if simulated) the DES context.

    Parameters
    ----------
    mode:
        ``"local"`` — tasks really execute on this machine, wall clock.
        ``"sim"`` — everything advances on a virtual clock against the
        simulated *platform*.
    platform:
        Platform name for simulated sessions (ignored for local ones, which
        always use the ``local.localhost`` profile).
    sandbox:
        Directory for unit sandboxes in local mode.  A temporary directory
        is created (and removed on :meth:`close`) when omitted.
    seed:
        Master seed of the simulation's random streams.
    model_queue_wait:
        Whether the simulated batch queue adds stochastic queue waits.
    fault_rate:
        Per-execution Bernoulli task-fault probability (sim only).
    node_mtbf / node_repair_time:
        Node-level failure domain: mean seconds between failures of one
        node (0 disables) and how long a failed node stays out of service
        (sim only; see :mod:`repro.cluster.faults`).
    pilot_mtbf:
        Mean seconds between pilot container-job deaths once active
        (0 disables; sim only).
    max_pilot_resubmits:
        How many times the pilot manager resubmits a killed pilot job
        through the batch queue before giving up (default 0 keeps the
        historical dead-end FAILED behaviour).
    retry_policy:
        Runtime-level :class:`~repro.pilot.retry.RetryPolicy` applied by
        the unit manager to units killed by node/pilot failures.  ``None``
        fails such units on first death.
    spool_dir:
        When given, the profiler streams events to an NDJSON spool file
        ``<spool_dir>/<session_uid>.trace.jsonl`` instead of keeping the
        whole trace resident (see :mod:`repro.telemetry.sink`), and the
        metrics registry keeps running aggregates instead of resident
        point lists.  Trace *content* is bit-identical either way.
    bulk_lifecycle:
        Opt-in batched unit lifecycle: homogeneous batches move through
        the state machine with one profiler append and one metrics
        update per batch (``units_new``/``units_state`` events instead
        of per-unit events).  Sim mode only; coarsens the trace, so it
        is off for every published-figure run.
    """

    def __init__(
        self,
        mode: str = "local",
        platform: str = "local.localhost",
        sandbox: str | Path | None = None,
        seed: int = 0,
        model_queue_wait: bool = False,
        fault_rate: float = 0.0,
        node_mtbf: float = 0.0,
        node_repair_time: float = 300.0,
        pilot_mtbf: float = 0.0,
        max_pilot_resubmits: int = 0,
        retry_policy: RetryPolicy | None = None,
        spool_dir: str | Path | None = None,
        bulk_lifecycle: bool = False,
    ) -> None:
        if mode not in ("local", "sim"):
            raise ConfigurationError(f"unknown session mode {mode!r}")
        if bulk_lifecycle and mode != "sim":
            raise ConfigurationError(
                "bulk_lifecycle is a simulated-mode feature"
            )
        if bulk_lifecycle and (fault_rate or node_mtbf or pilot_mtbf):
            # Fault recovery needs per-unit kill/requeue bookkeeping that
            # batched transitions deliberately skip.
            raise ConfigurationError(
                "bulk_lifecycle is incompatible with fault injection"
            )
        if pilot_mtbf < 0:
            raise ConfigurationError("pilot mtbf must be non-negative")
        if max_pilot_resubmits < 0:
            raise ConfigurationError("max_pilot_resubmits must be non-negative")
        self.uid = generate_id("session")
        self.mode = mode
        self.platform = get_platform(platform)
        self.store = SessionStore()
        self.closed = False
        self.node_fault_model = NodeFaultModel(node_mtbf, node_repair_time)
        self.pilot_mtbf = pilot_mtbf
        self.max_pilot_resubmits = max_pilot_resubmits
        self.retry_policy = retry_policy

        if mode == "sim":
            self.sim_context = SimContext(
                platform=self.platform,
                streams=RandomStreams(seed),
                model_queue_wait=model_queue_wait,
            )
            self.fault_model = FaultModel(fault_rate).bind(
                self.sim_context.streams
            )
            self._clock = self.sim_context.sim.clock
            self._own_sandbox = False
            self.sandbox = None
        else:
            if fault_rate or node_mtbf or pilot_mtbf:
                raise ConfigurationError(
                    "fault injection is a simulated-mode feature"
                )
            self.sim_context = None
            self.fault_model = FaultModel(0.0)
            self._clock = WallClock()
            if sandbox is None:
                self.sandbox = Path(tempfile.mkdtemp(prefix=f"repro-{self.uid}-"))
                self._own_sandbox = True
            else:
                self.sandbox = Path(sandbox)
                self.sandbox.mkdir(parents=True, exist_ok=True)
                self._own_sandbox = False

        self.bulk_lifecycle = bulk_lifecycle
        self.spool_path: Path | None = None
        sink = None
        if spool_dir is not None:
            self.spool_path = Path(spool_dir) / f"{self.uid}.trace.jsonl"
            sink = SpoolSink(self.spool_path)
        self.prof = Profiler(self._clock.now, sink=sink)
        # Telemetry rides on the profiler: explicit spans and metric
        # points are just more trace events, so they charge no virtual
        # time and stay bit-deterministic under a seed.  Imported as
        # submodules: repro.telemetry must not import the pilot layer.
        self.tracer = Tracer(self.prof)
        # A spooling session is a bounded-memory session: keep metric
        # series as running aggregates, not resident point lists (the
        # points still ride in the trace as `metric` events).
        self.metrics = MetricsRegistry(
            self._clock.now, emit=self.prof.event,
            resident_points=spool_dir is None,
        )
        self.unit_store = UnitStore(self)
        self.prof.event("session_start", self.uid, mode=mode, platform=platform)
        self.store.insert("sessions", self.uid, {"mode": mode, "platform": platform})

    # -- time ------------------------------------------------------------------

    def now(self) -> float:
        return self._clock.now()

    @property
    def is_simulated(self) -> bool:
        return self.mode == "sim"

    @property
    def sim(self):
        """The discrete-event simulator (simulated sessions only)."""
        if self.sim_context is None:
            raise ConfigurationError("local sessions have no simulator")
        return self.sim_context.sim

    def run_events(self) -> None:
        """Drain the simulator (no-op for local sessions)."""
        if self.sim_context is not None:
            self.sim_context.sim.run()

    # -- lifecycle ---------------------------------------------------------------

    def close(self, *, cleanup: bool = True) -> None:
        """Finalize the session; remove owned sandboxes when *cleanup*."""
        if self.closed:
            return
        self.prof.event("session_close", self.uid)
        self.prof.close()
        if (
            cleanup
            and self._own_sandbox
            and self.sandbox is not None
            and self.sandbox.exists()
        ):
            shutil.rmtree(self.sandbox, ignore_errors=True)
        self.closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
