"""The pilot session: root object of one runtime instance."""

from __future__ import annotations

import shutil
import tempfile
from pathlib import Path

from repro.cluster.platforms import get_platform
from repro.eventsim import RandomStreams
from repro.exceptions import ConfigurationError
from repro.pilot.db import SessionStore
from repro.pilot.faults import FaultModel
from repro.pilot.profiler import Profiler
from repro.saga.adaptors.sim import SimContext
from repro.utils.ids import generate_id
from repro.utils.logger import get_logger
from repro.utils.timing import WallClock

__all__ = ["Session"]

log = get_logger("pilot.session")


class Session:
    """Owns the clock, profiler, store and (if simulated) the DES context.

    Parameters
    ----------
    mode:
        ``"local"`` — tasks really execute on this machine, wall clock.
        ``"sim"`` — everything advances on a virtual clock against the
        simulated *platform*.
    platform:
        Platform name for simulated sessions (ignored for local ones, which
        always use the ``local.localhost`` profile).
    sandbox:
        Directory for unit sandboxes in local mode.  A temporary directory
        is created (and removed on :meth:`close`) when omitted.
    seed:
        Master seed of the simulation's random streams.
    model_queue_wait:
        Whether the simulated batch queue adds stochastic queue waits.
    """

    def __init__(
        self,
        mode: str = "local",
        platform: str = "local.localhost",
        sandbox: str | Path | None = None,
        seed: int = 0,
        model_queue_wait: bool = False,
        fault_rate: float = 0.0,
    ) -> None:
        if mode not in ("local", "sim"):
            raise ConfigurationError(f"unknown session mode {mode!r}")
        self.uid = generate_id("session")
        self.mode = mode
        self.platform = get_platform(platform)
        self.store = SessionStore()
        self.closed = False

        if mode == "sim":
            self.sim_context = SimContext(
                platform=self.platform,
                streams=RandomStreams(seed),
                model_queue_wait=model_queue_wait,
            )
            self.fault_model = FaultModel(fault_rate).bind(
                self.sim_context.streams
            )
            self._clock = self.sim_context.sim.clock
            self._own_sandbox = False
            self.sandbox = None
        else:
            if fault_rate:
                raise ConfigurationError(
                    "fault injection is a simulated-mode feature"
                )
            self.sim_context = None
            self.fault_model = FaultModel(0.0)
            self._clock = WallClock()
            if sandbox is None:
                self.sandbox = Path(tempfile.mkdtemp(prefix=f"repro-{self.uid}-"))
                self._own_sandbox = True
            else:
                self.sandbox = Path(sandbox)
                self.sandbox.mkdir(parents=True, exist_ok=True)
                self._own_sandbox = False

        self.prof = Profiler(self._clock.now)
        self.prof.event("session_start", self.uid, mode=mode, platform=platform)
        self.store.insert("sessions", self.uid, {"mode": mode, "platform": platform})

    # -- time ------------------------------------------------------------------

    def now(self) -> float:
        return self._clock.now()

    @property
    def is_simulated(self) -> bool:
        return self.mode == "sim"

    @property
    def sim(self):
        """The discrete-event simulator (simulated sessions only)."""
        if self.sim_context is None:
            raise ConfigurationError("local sessions have no simulator")
        return self.sim_context.sim

    def run_events(self) -> None:
        """Drain the simulator (no-op for local sessions)."""
        if self.sim_context is not None:
            self.sim_context.sim.run()

    # -- lifecycle ---------------------------------------------------------------

    def close(self, *, cleanup: bool = True) -> None:
        """Finalize the session; remove owned sandboxes when *cleanup*."""
        if self.closed:
            return
        self.prof.event("session_close", self.uid)
        if (
            cleanup
            and self._own_sandbox
            and self.sandbox is not None
            and self.sandbox.exists()
        ):
            shutil.rmtree(self.sandbox, ignore_errors=True)
        self.closed = True

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
