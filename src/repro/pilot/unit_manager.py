"""The unit manager: routes compute units to pilots and tracks them."""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Any, Callable

from repro.exceptions import PilotError, SchedulingError
from repro.pilot.description import ComputeUnitDescription
from repro.pilot.faults import NodeFailure
from repro.pilot.pilot import ComputePilot
from repro.pilot.states import UnitState
from repro.pilot.unit import ComputeUnit
from repro.utils.logger import get_logger

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.session import Session

__all__ = ["UnitManager"]

log = get_logger("pilot.umgr")


class UnitManager:
    """Client-side unit scheduling (unit -> pilot) and bookkeeping.

    The unit-to-pilot scheduler is round-robin over the added pilots,
    skipping pilots too small for a unit; with one pilot (every experiment
    in the paper) it degenerates to direct routing.
    """

    def __init__(self, session: "Session") -> None:
        self.session = session
        self.uid = "umgr." + session.uid
        self.pilots: list[ComputePilot] = []
        self.units: list[ComputeUnit] = []
        self._rr_next = 0
        self._lock = threading.RLock()
        self._all_done = threading.Condition(self._lock)
        self._callbacks: list[Callable[[ComputeUnit, UnitState], Any]] = []

    # -- pilots ---------------------------------------------------------------

    def add_pilots(self, pilots: list[ComputePilot] | ComputePilot) -> None:
        if isinstance(pilots, ComputePilot):
            pilots = [pilots]
        for pilot in pilots:
            pilot.agent.on_unit_final(self._on_unit_final)
            pilot.agent.on_unit_killed(self._on_unit_killed)
            self.pilots.append(pilot)

    # -- units -----------------------------------------------------------------

    def register_callback(self, callback: Callable[[ComputeUnit, UnitState], Any]) -> None:
        """``callback(unit, state)`` on every unit state transition."""
        self._callbacks.append(callback)

    def submit_units(
        self,
        descriptions: list[ComputeUnitDescription] | ComputeUnitDescription,
        callback: Callable[[ComputeUnit, UnitState], Any] | None = None,
        extra_delay: float = 0.0,
    ) -> list[ComputeUnit]:
        """Create units, schedule them onto pilots, forward to agents.

        *callback* is attached to every created unit *before* it can make
        any progress, so callers (e.g. pattern drivers) cannot miss a
        transition even for tasks that finish instantly.

        Forwarding is *bulk*: all units bound to one pilot travel in one
        message, paying one network delay (RADICAL-Pilot bulk submission).
        """
        if not self.pilots:
            raise PilotError("unit manager has no pilots")
        if isinstance(descriptions, ComputeUnitDescription):
            descriptions = [descriptions]
        if getattr(self.session, "bulk_lifecycle", False):
            return self._submit_units_bulk(descriptions, callback, extra_delay)

        units: list[ComputeUnit] = []
        routing: dict[str, tuple[ComputePilot, list[ComputeUnit]]] = {}
        with self.session.tracer.span(
            "umgr.submit", self.uid, n=len(descriptions)
        ):
            for description in descriptions:
                unit = ComputeUnit(description, self.session)
                self.session.prof.event(
                    "unit_new", unit.uid,
                    pattern=description.tags.get("pattern", ""),
                )
                if callback is not None:
                    unit.add_callback(callback)
                for cb in self._callbacks:
                    unit.add_callback(cb)
                unit.advance(UnitState.UMGR_SCHEDULING)
                pilot = self._pick_pilot(description)
                routing.setdefault(pilot.uid, (pilot, []))[1].append(unit)
                units.append(unit)
            with self._lock:
                self.units.extend(units)

            for pilot, batch in routing.values():
                self._forward(pilot, batch, extra_delay)
        return units

    def _submit_units_bulk(
        self,
        descriptions: list[ComputeUnitDescription],
        callback: Callable[[ComputeUnit, UnitState], Any] | None,
        extra_delay: float,
    ) -> list[ComputeUnit]:
        """Batched submission (``Session(bulk_lifecycle=True)``).

        One columnar registration, one ``units_new`` event, one shared
        callback list and one ``units_state`` transition cover the whole
        batch; routing and forwarding are unchanged.  The trace is
        deliberately coarser than the per-unit path's — this is the
        million-unit envelope, not the published-figure path.
        """
        store = self.session.unit_store
        with self.session.tracer.span(
            "umgr.submit", self.uid, n=len(descriptions)
        ):
            rows = store.add_bulk(descriptions)
            units = [ComputeUnit._of(store, i) for i in rows]
            shared: list[Callable[[ComputeUnit, UnitState], Any]] = []
            if callback is not None:
                shared.append(callback)
            shared.extend(self._callbacks)
            store.set_group_callbacks(rows, shared)
            if units:
                self.session.prof.event(
                    "units_new", units[0].uid, n=len(units),
                    last=units[-1].uid,
                    pattern=descriptions[0].tags.get("pattern", ""),
                )
            store.advance_many(units, UnitState.UMGR_SCHEDULING)
            routing: dict[str, tuple[ComputePilot, list[ComputeUnit]]] = {}
            for unit in units:
                pilot = self._pick_pilot(unit.description)
                routing.setdefault(pilot.uid, (pilot, []))[1].append(unit)
            with self._lock:
                self.units.extend(units)
            for pilot, batch in routing.values():
                self._forward(pilot, batch, extra_delay)
        return units

    def _pick_pilot(self, description: ComputeUnitDescription) -> ComputePilot:
        n = len(self.pilots)
        for offset in range(n):
            pilot = self.pilots[(self._rr_next + offset) % n]
            if pilot.cores >= description.cores:
                self._rr_next = (self._rr_next + offset + 1) % n
                return pilot
        raise SchedulingError(
            f"no pilot can hold a {description.cores}-core unit"
        )

    def _forward(
        self, pilot: ComputePilot, batch: list[ComputeUnit], extra_delay: float = 0.0
    ) -> None:
        if self.session.is_simulated:
            context = self.session.sim_context
            delay = extra_delay + context.network.bulk_delay(len(batch))
            context.sim.schedule(
                delay,
                lambda: pilot.agent.submit_units(batch),
                label=f"umgr_forward:{pilot.uid}",
            )
        else:
            pilot.agent.submit_units(batch)

    # -- fault recovery ----------------------------------------------------------

    def _on_unit_killed(self, unit: ComputeUnit, exc: BaseException) -> None:
        """A node or pilot death took the unit down mid-flight.

        The session retry policy decides between another attempt (back
        through UMGR_SCHEDULING, with exponential backoff charged as extra
        forwarding delay) and surfacing a terminal FAILED.
        """
        policy = self.session.retry_policy
        if policy is None or not policy.should_retry(unit.attempts):
            self._fail_unit(unit, exc)
            return
        pilot = self._pick_retry_pilot(unit)
        if pilot is None:
            self._fail_unit(
                unit,
                NodeFailure(
                    f"unit {unit.uid} has no pilot left with enough "
                    f"non-excluded cores"
                ),
            )
            return
        unit.advance(UnitState.UMGR_SCHEDULING)
        delay = 0.0
        if self.session.is_simulated:
            rng = None
            if policy.jitter > 0:
                rng = self.session.sim_context.streams.get("retry_backoff")
            delay = policy.jittered_delay(unit.attempts, rng)
        self.session.prof.event(
            "unit_requeue", unit.uid,
            attempt=unit.attempts, delay=delay, reason=type(exc).__name__,
        )
        log.info("requeueing unit %s after %s (attempt %d/%d, backoff %.1fs)",
                 unit.uid, type(exc).__name__, unit.attempts,
                 policy.max_attempts, delay)
        self._forward(pilot, [unit], extra_delay=delay)

    def _pick_retry_pilot(self, unit: ComputeUnit) -> ComputePilot | None:
        """Round-robin over pilots that can still place the unit."""
        n = len(self.pilots)
        for offset in range(n):
            pilot = self.pilots[(self._rr_next + offset) % n]
            if pilot.state.is_final or pilot.cores < unit.description.cores:
                continue
            avoid = frozenset(
                node for puid, node in unit.excluded_nodes if puid == pilot.uid
            )
            if (
                avoid
                and pilot.agent.slots.eligible_cores(avoid)
                < unit.description.cores
            ):
                continue
            self._rr_next = (self._rr_next + offset + 1) % n
            return pilot
        return None

    def _fail_unit(self, unit: ComputeUnit, exc: BaseException) -> None:
        unit.exception = exc
        unit.advance(UnitState.FAILED)
        with self._all_done:
            self._all_done.notify_all()

    # -- completion --------------------------------------------------------------

    def _on_unit_final(self, unit: ComputeUnit) -> None:
        with self._all_done:
            self._all_done.notify_all()

    def wait_units(
        self,
        units: list[ComputeUnit] | None = None,
        timeout: float | None = None,
    ) -> list[UnitState]:
        """Block (local) or advance virtual time (sim) until *units* finish.

        In simulated sessions the DES is stepped just far enough for every
        unit to reach a final state; pending unrelated events (e.g. the
        pilot's walltime kill) stay pending, so TTC measurements are not
        polluted by them.
        """
        targets = units if units is not None else list(self.units)
        if self.session.is_simulated:
            sim = self.session.sim
            # Count completions through a temporary per-unit callback
            # instead of rescanning every unit after every event — the
            # rescan made large waits O(units × events).  Callbacks are
            # client-side only (no trace events), so behavior and traces
            # are unchanged.
            open_units = [u for u in targets if not u.state.is_final]
            remaining = len(open_units)
            counter = {"open": remaining}

            def _on_transition(_unit: ComputeUnit, state: UnitState) -> None:
                if state.is_final:
                    counter["open"] -= 1

            for unit in open_units:
                unit.add_callback(_on_transition)
            try:
                while counter["open"] > 0:
                    if sim.step() is None:
                        raise PilotError(
                            "simulation drained before all units finished "
                            "(is the pilot large enough and active?)"
                        )
            finally:
                for unit in open_units:
                    unit.remove_callback(_on_transition)
            return [u.state for u in targets]

        deadline = None if timeout is None else self.session.now() + timeout
        with self._all_done:
            while not all(u.state.is_final for u in targets):
                remaining = None
                if deadline is not None:
                    remaining = deadline - self.session.now()
                    if remaining <= 0:
                        raise PilotError("timeout waiting for units")
                self._all_done.wait(remaining if remaining is not None else 1.0)
        return [u.state for u in targets]

    def cancel_units(self, units: list[ComputeUnit] | None = None) -> None:
        for unit in units if units is not None else list(self.units):
            if unit.state.is_final:
                continue
            if unit.pilot_uid is None:
                unit.advance(UnitState.CANCELED)
                continue
            pilot = next(p for p in self.pilots if p.uid == unit.pilot_uid)
            pilot.agent.cancel_unit(unit)
