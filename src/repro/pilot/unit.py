"""The compute unit: one schedulable task inside a pilot."""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.pilot.description import ComputeUnitDescription
from repro.pilot.states import UnitState, validate_unit_edge
from repro.utils.ids import generate_id

__all__ = ["ComputeUnit"]

#: Gauge name per unit state, precomputed once — ``advance`` runs for every
#: transition of every unit and must not rebuild these strings each time.
_STATE_GAUGES = {state: f"units.{state.value}" for state in UnitState}


class ComputeUnit:
    """Runtime handle of one task.

    State transitions are validated and timestamped exactly once; the EnTK
    profiler derives every overhead in the paper's Fig. 3 from these
    timestamps.
    """

    def __init__(self, description: ComputeUnitDescription, session: Any) -> None:
        description.validate()
        self.uid = generate_id("unit", width=6)
        self.description = description
        self.session = session
        self._state = UnitState.NEW
        self._lock = threading.Lock()
        # Created on first local-mode wait(); simulated runs churn through
        # thousands of units and never block on one.
        self._final_event: threading.Event | None = None
        self._callbacks: list[Callable[["ComputeUnit", UnitState], Any]] = []
        self.timestamps: dict[str, float] = {"NEW": session.now()}
        self.result: Any = None
        self.exception: BaseException | None = None
        self.pilot_uid: str | None = None
        self.slots: list[int] = []  # core ids occupied while executing
        self.sandbox: str | None = None
        #: Execution attempts started (the agent increments at each launch).
        self.attempts = 0
        #: ``(pilot_uid, node)`` pairs this unit must not be placed on again
        #: (populated on node kills when the retry policy excludes failed
        #: nodes).
        self.excluded_nodes: set[tuple[str, int]] = set()
        self._metrics = getattr(session, "metrics", None)
        if self._metrics is not None:
            self._metrics.adjust("units.NEW", 1)

    # -- state -----------------------------------------------------------------

    @property
    def state(self) -> UnitState:
        return self._state

    def advance(self, target: UnitState) -> None:
        with self._lock:
            validate_unit_edge(f"ComputeUnit {self.uid}", self._state, target)
            previous = self._state
            self._state = target
            self.timestamps[target.value] = self.session.now()
            callbacks = list(self._callbacks)
        self.session.prof.event("unit_state", self.uid, state=target.value)
        metrics = self._metrics
        if metrics is not None:
            metrics.adjust(_STATE_GAUGES[previous], -1)
            metrics.adjust(_STATE_GAUGES[target], 1)
        for cb in callbacks:
            cb(self, target)
        if target.is_final:
            with self._lock:
                event = self._final_event
            if event is not None:
                event.set()

    def add_callback(self, callback: Callable[["ComputeUnit", UnitState], Any]) -> None:
        self._callbacks.append(callback)

    def remove_callback(
        self, callback: Callable[["ComputeUnit", UnitState], Any]
    ) -> None:
        """Detach *callback* if attached (idempotent)."""
        with self._lock:
            if callback in self._callbacks:
                self._callbacks.remove(callback)

    # -- introspection -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self._state.is_final

    def duration(self, start: UnitState, end: UnitState) -> float | None:
        """Seconds between two recorded state entries, if both happened."""
        t0 = self.timestamps.get(start.value)
        t1 = self.timestamps.get(end.value)
        if t0 is None or t1 is None:
            return None
        return t1 - t0

    @property
    def execution_time(self) -> float | None:
        """Time spent in EXECUTING (the task's own runtime)."""
        return self.duration(UnitState.EXECUTING, UnitState.AGENT_STAGING_OUTPUT)

    def wait(self, timeout: float | None = None) -> UnitState:
        """Block until final (local mode); immediate in simulated mode."""
        if getattr(self.session, "is_simulated", False):
            return self._state
        with self._lock:
            if self._state.is_final:
                return self._state
            if self._final_event is None:
                self._final_event = threading.Event()
            event = self._final_event
        event.wait(timeout)
        return self._state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ComputeUnit {self.uid} {self._state.value} cores={self.description.cores}>"
