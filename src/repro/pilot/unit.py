"""The compute unit: one schedulable task inside a pilot.

Since the million-unit scale envelope, :class:`ComputeUnit` is a
two-word ``__slots__`` view over one row of the session's columnar
:class:`~repro.pilot.unit_store.UnitStore` — every dense field (state,
timestamps, cores, attempts, slot occupancy) lives in parallel arrays,
every sparse field (result, exception, exclusions) in side dicts keyed
by row.  The public API is unchanged: the unit manager, agent, executor
and analytics all still talk to units.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.pilot.description import ComputeUnitDescription
from repro.pilot.states import UnitState
from repro.pilot.unit_store import UnitStore, UnitTimestamps

__all__ = ["ComputeUnit"]


class ComputeUnit:
    """Runtime handle of one task.

    State transitions are validated and timestamped exactly once; the EnTK
    profiler derives every overhead in the paper's Fig. 3 from these
    timestamps.
    """

    __slots__ = ("_store", "_i")

    def __init__(self, description: ComputeUnitDescription, session: Any) -> None:
        store = getattr(session, "unit_store", None)
        if store is None:
            # Sessions built by repro.pilot.session always carry a store;
            # this keeps directly constructed units (tests, ad-hoc
            # harnesses) working against any session-like object.
            store = UnitStore(session)
            session.unit_store = store
        self._store = store
        self._i = store.add(description)

    @classmethod
    def _of(cls, store: UnitStore, i: int) -> "ComputeUnit":
        """View over an already registered row (the bulk path)."""
        unit = object.__new__(cls)
        unit._store = store
        unit._i = i
        return unit

    # -- identity & description ------------------------------------------------

    @property
    def uid(self) -> str:
        return self._store.uid(self._i)

    @property
    def description(self) -> ComputeUnitDescription:
        return self._store.description(self._i)

    @property
    def session(self) -> Any:
        return self._store._session

    # -- state -----------------------------------------------------------------

    @property
    def state(self) -> UnitState:
        return self._store.state(self._i)

    def advance(self, target: UnitState) -> None:
        self._store.advance(self, target)

    def add_callback(self, callback: Callable[["ComputeUnit", UnitState], Any]) -> None:
        self._store.add_callback(self._i, callback)

    def remove_callback(
        self, callback: Callable[["ComputeUnit", UnitState], Any]
    ) -> None:
        """Detach *callback* if attached (idempotent)."""
        self._store.remove_callback(self._i, callback)

    # -- mutable runtime fields --------------------------------------------------

    @property
    def timestamps(self) -> UnitTimestamps:
        return UnitTimestamps(self._store, self._i)

    @property
    def result(self) -> Any:
        return self._store.result(self._i)

    @result.setter
    def result(self, value: Any) -> None:
        self._store.set_result(self._i, value)

    @property
    def exception(self) -> BaseException | None:
        return self._store.exception(self._i)

    @exception.setter
    def exception(self, exc: BaseException | None) -> None:
        self._store.set_exception(self._i, exc)

    @property
    def pilot_uid(self) -> str | None:
        return self._store.pilot_uid(self._i)

    @pilot_uid.setter
    def pilot_uid(self, uid: str | None) -> None:
        self._store.set_pilot_uid(self._i, uid)

    @property
    def slots(self) -> list[int]:
        """Core ids occupied while executing."""
        return self._store.slots(self._i)

    @slots.setter
    def slots(self, slots: list[int]) -> None:
        self._store.set_slots(self._i, slots)

    @property
    def sandbox(self) -> str | None:
        return self._store.sandbox(self._i)

    @sandbox.setter
    def sandbox(self, path: str | None) -> None:
        self._store.set_sandbox(self._i, path)

    @property
    def attempts(self) -> int:
        """Execution attempts started (the agent increments at each launch)."""
        return self._store.attempts(self._i)

    @attempts.setter
    def attempts(self, value: int) -> None:
        self._store.set_attempts(self._i, value)

    @property
    def excluded_nodes(self) -> frozenset[tuple[str, int]] | set:
        """``(pilot_uid, node)`` pairs this unit must not be placed on again
        (populated on node kills when the retry policy excludes failed
        nodes).  Read-only; record exclusions via :meth:`exclude_node`."""
        return self._store.excluded_nodes(self._i)

    def exclude_node(self, pilot_uid: str, node: int) -> None:
        self._store.exclude_node(self._i, pilot_uid, node)

    # -- introspection -----------------------------------------------------------

    @property
    def done(self) -> bool:
        return self.state.is_final

    def duration(self, start: UnitState, end: UnitState) -> float | None:
        """Seconds between two recorded state entries, if both happened."""
        timestamps = self.timestamps
        t0 = timestamps.get(start.value)
        t1 = timestamps.get(end.value)
        if t0 is None or t1 is None:
            return None
        return t1 - t0

    @property
    def execution_time(self) -> float | None:
        """Time spent in EXECUTING (the task's own runtime)."""
        return self.duration(UnitState.EXECUTING, UnitState.AGENT_STAGING_OUTPUT)

    def wait(self, timeout: float | None = None) -> UnitState:
        """Block until final (local mode); immediate in simulated mode."""
        store = self._store
        if getattr(store._session, "is_simulated", False):
            return self.state
        with store._lock:
            if self.state.is_final:
                return self.state
            event = store.final_event(self._i, create=True)
        assert event is not None
        event.wait(timeout)
        return self.state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ComputeUnit {self.uid} {self.state.value} "
            f"cores={self.description.cores}>"
        )
