"""Chrome trace-event JSON export.

:func:`chrome_trace` renders a flat profiler trace (live events or
dicts parsed from a JSONL dump) as a Chrome trace-event document —
load it in Perfetto (https://ui.perfetto.dev) or ``about://tracing``:

* one *thread* track per entity — the client (session, ``entk_*``
  toolkit spans, pattern spans), each pilot, each unit — with the
  reconstructed spans as ``"X"`` complete events (``cat`` = the Fig. 3
  component, so Perfetto can color/aggregate by component);
* ``metric`` events become ``"C"`` counter tracks;
* fault markers (task/node/pilot failures) become ``"i"`` instants.

Timestamps are emitted in microseconds of sim (or wall) time.  The
serialization (:func:`write_chrome_trace`) uses sorted keys and fixed
separators so same-seed runs produce byte-identical files — the
determinism tests diff these bytes directly.
"""

from __future__ import annotations

import json
from typing import Any, Iterable

from repro.telemetry.span import Span, SpanTree, SpanBuilder, _normalize, component_of

__all__ = ["chrome_trace", "write_chrome_trace"]

_PID = 1

#: Point events surfaced as global instants in the rendered trace.
_INSTANT_NAMES = frozenset({
    "task_fault",
    "node_fail",
    "node_repair",
    "pilot_fault",
    "pilot_resubmit",
    "unit_node_kill",
    "unit_pilot_kill",
})


def _us(t: float) -> float:
    return t * 1e6


def _track_of(span: Span, tree: SpanTree) -> str:
    """The entity track a span renders on: its nearest unit/pilot ancestor."""
    current: Span | None = span
    while current is not None:
        if current.name == "unit":
            return f"unit {current.ref}"
        if current.name == "pilot":
            return f"pilot {current.ref}"
        current = tree.spans.get(current.parent or "")
    return "client"


def chrome_trace(events: Iterable[Any]) -> dict[str, Any]:
    """Render a flat event trace as a Chrome trace-event document."""
    normalized = [_normalize(ev) for ev in events]
    tree = SpanBuilder().add_events(normalized).build()

    spans = sorted(tree, key=lambda span: (span.t_start, span.uid))
    tids: dict[str, int] = {"client": 1}
    for span in spans:
        track = _track_of(span, tree)
        if track not in tids:
            tids[track] = len(tids) + 1

    trace_events: list[dict[str, Any]] = []
    trace_events.append({
        "ph": "M", "pid": _PID, "tid": 0, "name": "process_name",
        "args": {"name": "repro"},
    })
    for track, tid in tids.items():  # insertion order: first appearance
        trace_events.append({
            "ph": "M", "pid": _PID, "tid": tid, "name": "thread_name",
            "args": {"name": track},
        })

    for span in spans:
        args = {"uid": span.uid, "ref": span.ref}
        args.update(
            (key, value)
            for key, value in sorted(span.attrs.items())
            if isinstance(value, (str, int, float, bool))
        )
        trace_events.append({
            "ph": "X", "pid": _PID, "tid": tids[_track_of(span, tree)],
            "name": span.name, "cat": component_of(span),
            "ts": _us(span.t_start), "dur": _us(span.duration),
            "args": args,
        })

    counters = [ev for ev in normalized if ev.name == "metric"]
    counters.sort(key=lambda ev: (ev.time, ev.uid))
    for ev in counters:
        trace_events.append({
            "ph": "C", "pid": _PID, "tid": 0, "name": ev.uid,
            "cat": "metric", "ts": _us(ev.time),
            "args": {"value": float(ev.attrs.get("value", 0.0))},
        })

    instants = [ev for ev in normalized if ev.name in _INSTANT_NAMES]
    instants.sort(key=lambda ev: (ev.time, ev.name, ev.uid))
    for ev in instants:
        trace_events.append({
            "ph": "i", "pid": _PID, "tid": 0, "s": "g",
            "name": f"{ev.name} {ev.uid}", "cat": "fault",
            "ts": _us(ev.time), "args": {},
        })

    return {"displayTimeUnit": "ms", "traceEvents": trace_events}


def write_chrome_trace(events: Iterable[Any], path: Any) -> None:
    """Serialize :func:`chrome_trace` output byte-deterministically."""
    doc = chrome_trace(events)
    payload = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload)
        handle.write("\n")
