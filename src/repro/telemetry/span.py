"""The causal span model.

A :class:`Span` is one named interval of (virtual or wall) time attached
to an entity — the session, a pattern, a pilot, a compute unit — with a
parent span and free-form attributes.  Two sources produce spans:

* **derived** — :class:`SpanBuilder` reconstructs the span tree from the
  flat profiler trace: the paired ``entk_*`` client events, the pilot
  lifecycle events, and each unit's ``unit_state`` sequence (every
  interval between consecutive state entries becomes one
  ``unit:<STATE>`` phase span);
* **explicit** — :class:`Tracer` emits ``span_open``/``span_close``
  event pairs from instrumented code (``with tracer.span(...)``), with
  causal parenthood tracked on a per-thread stack.

The builder accepts events in any order (it sorts by timestamp, stably)
and from either live :class:`~repro.pilot.profiler.ProfileEvent` objects
or dicts parsed back from a JSONL trace dump, so the ``repro trace`` CLI
and the in-process analytics share one code path.

This module must not import the pilot layer at runtime (the session
imports *us*); events are duck-typed on ``time``/``name``/``uid``/
``attrs``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Mapping

from repro.utils.ids import generate_id

__all__ = ["Span", "SpanTree", "SpanBuilder", "Tracer", "component_of"]

#: Span names whose time the paper books as EnTK *core* overhead.
_CORE_SPAN_NAMES = frozenset({"entk_init", "entk_alloc", "entk_cancel"})
#: Span names booked as EnTK *pattern* overhead.
_PATTERN_SPAN_NAMES = frozenset({"entk_stage_create", "entk_pattern_overhead"})
#: The one span name booked as application execution.
_EXEC_SPAN_NAME = "unit:EXECUTING"


@dataclass(slots=True)
class Span:
    """One named, causally-parented time interval.

    ``uid`` identifies the span; ``ref`` names the runtime entity the
    span belongs to (a unit, pilot, pattern or session uid), which is
    how explicit spans without a recorded parent find their place in
    the tree.
    """

    uid: str
    name: str
    t_start: float
    t_end: float
    parent: str | None = None
    ref: str = ""
    attrs: dict[str, Any] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Span {self.name} [{self.t_start:.3f}, {self.t_end:.3f}] "
            f"ref={self.ref!r} children={len(self.children)}>"
        )


def component_of(span: Span) -> str:
    """Which Fig. 3 component a span's time is booked under.

    Explicit spans may carry a ``component`` attribute; derived spans
    are classified by name.  Everything unclassified is *runtime* —
    the paper's catch-all for what the pilot system adds.
    """
    explicit = span.attrs.get("component")
    if explicit:
        return str(explicit)
    if span.name in _CORE_SPAN_NAMES:
        return "core"
    if span.name in _PATTERN_SPAN_NAMES:
        return "pattern"
    if span.name == _EXEC_SPAN_NAME:
        return "execution"
    return "runtime"


class Tracer:
    """Emits explicit ``span_open``/``span_close`` pairs into a profiler.

    ``span()`` is the context manager for synchronous sections; it also
    pushes the span onto a per-thread stack so nested spans (and manual
    ``begin()`` calls made underneath) record their causal parent.
    ``begin()``/``end()`` are the manual API for asynchronous sections
    that open in one event callback and close in another — they record
    the parent active at ``begin`` time but do not occupy the stack.

    Span uids come from :func:`repro.utils.ids.generate_id`, so traces
    stay bit-identical across same-seed runs (the id counters are part
    of the deterministic replay state).

    A tracer built over ``profiler=None`` is a no-op; components that
    receive no tracer (e.g. stagers built directly in tests) stay
    silent instead of needing guards at every call site.
    """

    def __init__(self, profiler: Any | None) -> None:
        self._prof = profiler
        self._local = threading.local()

    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def begin(
        self, name: str, ref: str = "", *, component: str = "", **attrs: Any
    ) -> str:
        """Open a span; returns its uid (pass to :meth:`end`)."""
        if self._prof is None:
            return ""
        uid = generate_id("span", width=6)
        stack = self._stack()
        parent = stack[-1] if stack else ""
        payload = {"span": name, "ref": ref, "parent": parent}
        payload.update(attrs)
        if component:
            payload["component"] = component
        self._prof.record("span_open", uid, payload)
        return uid

    def end(self, uid: str) -> None:
        """Close a span opened with :meth:`begin`."""
        if self._prof is None or not uid:
            return
        self._prof.record("span_close", uid, {})

    @contextmanager
    def span(
        self, name: str, ref: str = "", *, component: str = "", **attrs: Any
    ) -> Iterator[str]:
        """Context manager: open a span, nest children under it, close it."""
        uid = self.begin(name, ref, component=component, **attrs)
        stack = self._stack()
        if uid:
            stack.append(uid)
        try:
            yield uid
        finally:
            if uid:
                stack.pop()
            self.end(uid)


#: The tracer handed to components that were built without one.
NULL_TRACER = Tracer(None)


@dataclass(frozen=True, slots=True)
class _Event:
    """Normalized view of one trace event (live object or JSONL dict)."""

    time: float
    name: str
    uid: str
    attrs: Mapping[str, Any]


def _normalize(event: Any) -> _Event:
    if isinstance(event, Mapping):
        attrs = {
            key: value
            for key, value in event.items()
            if key not in ("time", "name", "uid")
        }
        return _Event(float(event["time"]), str(event["name"]),
                      str(event.get("uid", "")), attrs)
    return _Event(event.time, event.name, event.uid, event.attrs)


@dataclass
class SpanTree:
    """The reconstructed span tree: one root plus a uid index."""

    root: Span
    spans: dict[str, Span]

    def __iter__(self) -> Iterator[Span]:
        return iter(self.spans.values())

    def __len__(self) -> int:
        return len(self.spans)

    def find(self, name: str | None = None, ref: str | None = None) -> list[Span]:
        """Spans filtered by name and/or entity ref, in creation order."""
        return [
            span
            for span in self.spans.values()
            if (name is None or span.name == name)
            and (ref is None or span.ref == ref)
        ]

    def leaves(self) -> list[Span]:
        return [span for span in self.spans.values() if span.is_leaf]

    def pattern(self, uid: str | None = None) -> Span | None:
        """The pattern span (by uid, or the innermost one when unique).

        With nested patterns (a :class:`PatternSequence` wrapping its
        constituents) and no explicit uid, the *first leaf-most* pattern
        span is returned — the one actual runs hang their units off.
        """
        patterns = self.find(name="pattern")
        if uid is not None:
            for span in patterns:
                if span.ref == uid:
                    return span
            return None
        if not patterns:
            return None
        inner = [
            span
            for span in patterns
            if not any(child.name == "pattern" for child in span.children)
        ]
        return inner[0] if inner else patterns[0]


class SpanBuilder:
    """Reconstructs the causal span tree from the flat event trace.

    Feed events with :meth:`add_events` (any iterable, any order) or
    :meth:`ingest` (incremental pull from a live profiler via its
    ``snapshot(since=...)`` cursor), then call :meth:`build`.
    """

    def __init__(self) -> None:
        self._events: list[_Event] = []
        self._cursor = 0

    def add_events(self, events: Iterable[Any]) -> "SpanBuilder":
        self._events.extend(_normalize(ev) for ev in events)
        return self

    def ingest(self, profiler: Any) -> int:
        """Pull events recorded since the last call; returns how many."""
        fresh, self._cursor = profiler.snapshot(since=self._cursor)
        self.add_events(fresh)
        return len(fresh)

    # -- construction ------------------------------------------------------

    def build(self) -> SpanTree:
        if not self._events:
            raise ValueError("no events to build a span tree from")
        events = sorted(self._events, key=lambda ev: ev.time)  # stable
        t_trace_end = events[-1].time

        spans: dict[str, Span] = {}

        def add(span: Span) -> Span:
            spans[span.uid] = span
            return span

        root = add(self._session_span(events, t_trace_end))

        for name in ("entk_init", "entk_alloc", "entk_cancel"):
            for i, (uid, t0, t1, attrs) in enumerate(
                self._paired(events, f"{name}_start", f"{name}_stop")
            ):
                add(Span(f"{name}:{i}", name, t0, t1,
                         parent=root.uid, ref=uid, attrs=dict(attrs)))

        self._pattern_spans(events, spans, root, t_trace_end)
        self._pilot_spans(events, spans, root, t_trace_end)
        self._unit_spans(events, spans, root, t_trace_end)
        self._explicit_spans(events, spans, root, t_trace_end)

        self._link(spans, root)
        return SpanTree(root=root, spans=spans)

    # -- derivation passes -------------------------------------------------

    @staticmethod
    def _paired(
        events: list[_Event], start_name: str, stop_name: str
    ) -> list[tuple[str, float, float, Mapping[str, Any]]]:
        """Match *start*/*stop* events per uid, in order of occurrence."""
        open_by_uid: dict[str, list[tuple[float, Mapping[str, Any]]]] = {}
        pairs: list[tuple[str, float, float, Mapping[str, Any]]] = []
        for ev in events:
            if ev.name == start_name:
                open_by_uid.setdefault(ev.uid, []).append((ev.time, ev.attrs))
            elif ev.name == stop_name and open_by_uid.get(ev.uid):
                t0, attrs = open_by_uid[ev.uid].pop(0)
                pairs.append((ev.uid, t0, ev.time, attrs))
        pairs.sort(key=lambda pair: pair[1])  # stable: by start time
        return pairs

    def _session_span(self, events: list[_Event], t_trace_end: float) -> Span:
        starts = [ev for ev in events if ev.name == "session_start"]
        closes = [ev for ev in events if ev.name == "session_close"]
        uid = starts[0].uid if starts else "session"
        t0 = starts[0].time if starts else events[0].time
        t1 = closes[-1].time if closes else t_trace_end
        return Span(f"session:{uid}", "session", t0, max(t1, t_trace_end),
                    parent=None, ref=uid)

    def _pattern_spans(
        self, events: list[_Event], spans: dict[str, Span], root: Span,
        t_trace_end: float,
    ) -> None:
        patterns = self._paired(events, "entk_pattern_start",
                                "entk_pattern_stop")
        # Unstopped patterns (crashed run) still deserve a span.
        stopped = [uid for uid, _, _, _ in patterns]
        for ev in events:
            if ev.name == "entk_pattern_start" and ev.uid not in stopped:
                patterns.append((ev.uid, ev.time, t_trace_end, ev.attrs))
        for uid, t0, t1, attrs in patterns:
            spans[f"pattern:{uid}"] = Span(
                f"pattern:{uid}", "pattern", t0, t1, parent=root.uid,
                ref=uid, attrs=dict(attrs),
            )
        # Nest patterns by strict containment (PatternSequence wrappers).
        pattern_spans = [s for s in spans.values() if s.name == "pattern"]
        for span in pattern_spans:
            enclosing = [
                other
                for other in pattern_spans
                if other is not span
                and other.t_start <= span.t_start
                and span.t_end <= other.t_end
                and other.duration > span.duration
            ]
            if enclosing:
                enclosing.sort(key=lambda s: (s.duration, s.uid))
                span.parent = enclosing[0].uid

        for uid, t0, t1, attrs in self._paired(
            events, "entk_stage_create_start", "entk_stage_create_stop"
        ):
            i = sum(1 for s in spans.values()
                    if s.name == "entk_stage_create" and s.ref == uid)
            parent = f"pattern:{uid}" if f"pattern:{uid}" in spans else root.uid
            key = f"entk_stage_create:{uid}:{i}"
            spans[key] = Span(key, "entk_stage_create", t0, t1,
                              parent=parent, ref=uid, attrs=dict(attrs))

        # The charged pattern overhead delays delivery of a batch starting
        # at the moment it is recorded; book it as a [t, t+seconds] span.
        charge_counts: dict[str, int] = {}
        for ev in events:
            if ev.name != "entk_pattern_overhead":
                continue
            seconds = float(ev.attrs.get("seconds", 0.0))
            i = charge_counts.get(ev.uid, 0)
            charge_counts[ev.uid] = i + 1
            parent = (f"pattern:{ev.uid}"
                      if f"pattern:{ev.uid}" in spans else root.uid)
            key = f"entk_pattern_overhead:{ev.uid}:{i}"
            spans[key] = Span(key, "entk_pattern_overhead", ev.time,
                              ev.time + seconds, parent=parent, ref=ev.uid,
                              attrs=dict(ev.attrs))

    def _pilot_spans(
        self, events: list[_Event], spans: dict[str, Span], root: Span,
        t_trace_end: float,
    ) -> None:
        submits: dict[str, float] = {}
        ends: dict[str, float] = {}
        startup_open: dict[str, float] = {}
        startup_count: dict[str, int] = {}
        for ev in events:
            if ev.name == "pilot_submit":
                submits.setdefault(ev.uid, ev.time)
                startup_open[ev.uid] = ev.time
            elif ev.name == "pilot_resubmit":
                startup_open[ev.uid] = ev.time
            elif ev.name == "agent_start" and ev.uid in startup_open:
                i = startup_count.get(ev.uid, 0)
                startup_count[ev.uid] = i + 1
                key = f"pilot_startup:{ev.uid}:{i}"
                spans[key] = Span(key, "pilot_startup",
                                  startup_open.pop(ev.uid), ev.time,
                                  parent=f"pilot:{ev.uid}", ref=ev.uid)
            elif ev.name in ("agent_stop", "agent_abort", "pilot_cancel"):
                ends[ev.uid] = ev.time
        for uid, t0 in submits.items():
            spans[f"pilot:{uid}"] = Span(
                f"pilot:{uid}", "pilot", t0, ends.get(uid, t_trace_end),
                parent=root.uid, ref=uid,
            )

    def _unit_spans(
        self, events: list[_Event], spans: dict[str, Span], root: Span,
        t_trace_end: float,
    ) -> None:
        # Per unit: creation time + pattern attribution from unit_new,
        # then the timestamped state sequence.
        created: dict[str, tuple[float, str]] = {}
        states: dict[str, list[tuple[float, str]]] = {}
        for ev in events:
            if ev.name == "unit_new":
                created.setdefault(
                    ev.uid, (ev.time, str(ev.attrs.get("pattern", "")))
                )
            elif ev.name == "unit_state":
                states.setdefault(ev.uid, []).append(
                    (ev.time, str(ev.attrs.get("state", "")))
                )
        for uid in sorted(set(created) | set(states)):
            t_created, pattern_uid = created.get(uid, (None, ""))
            seq = states.get(uid, [])
            t0 = t_created if t_created is not None else seq[0][0]
            t1 = seq[-1][0] if seq else t_trace_end
            parent = (f"pattern:{pattern_uid}"
                      if f"pattern:{pattern_uid}" in spans else root.uid)
            container = Span(f"unit:{uid}", "unit", t0, t1, parent=parent,
                             ref=uid, attrs={"pattern": pattern_uid})
            spans[container.uid] = container
            for i in range(len(seq) - 1):
                t_phase, state = seq[i]
                key = f"unit:{uid}:{i}"
                spans[key] = Span(key, f"unit:{state}", t_phase,
                                  seq[i + 1][0], parent=container.uid,
                                  ref=uid)

    def _explicit_spans(
        self, events: list[_Event], spans: dict[str, Span], root: Span,
        t_trace_end: float,
    ) -> None:
        opened: dict[str, Span] = {}
        for ev in events:
            if ev.name == "span_open":
                attrs = {
                    key: value
                    for key, value in ev.attrs.items()
                    if key not in ("span", "ref", "parent")
                }
                span = Span(ev.uid, str(ev.attrs.get("span", "span")),
                            ev.time, t_trace_end,
                            parent=str(ev.attrs.get("parent", "")) or None,
                            ref=str(ev.attrs.get("ref", "")), attrs=attrs)
                opened[ev.uid] = span
                spans[ev.uid] = span
            elif ev.name == "span_close" and ev.uid in opened:
                opened.pop(ev.uid).t_end = ev.time
        # Resolve parents: explicit parent uid, else the ref's entity
        # span, else the session root.
        for span in spans.values():
            if not span.uid.startswith("span."):
                continue
            if span.parent and span.parent in spans:
                continue
            span.parent = self._entity_span(span.ref, spans, root)

    @staticmethod
    def _entity_span(ref: str, spans: dict[str, Span], root: Span) -> str:
        for key in (f"unit:{ref}", f"pilot:{ref}", f"pattern:{ref}"):
            if key in spans:
                return key
        return root.uid

    @staticmethod
    def _link(spans: dict[str, Span], root: Span) -> None:
        for span in spans.values():
            if span is root:
                continue
            parent = spans.get(span.parent or "", root)
            if parent is span:  # defensive: never self-parent
                parent = root
            parent.children.append(span)
        for span in spans.values():
            span.children.sort(key=lambda s: (s.t_start, s.uid))
