"""Causal telemetry over the runtime's flat event trace.

The pilot layer records a flat, append-only list of profile events
(:mod:`repro.pilot.profiler`).  This package turns that list into
*observability*:

* :mod:`repro.telemetry.span` — the causal span model: a :class:`Span`
  tree (session → pattern → unit lifecycle → agent phases) reconstructed
  from the flat trace by :class:`SpanBuilder`, plus a :class:`Tracer`
  context manager for explicit instrumentation.
* :mod:`repro.telemetry.metrics` — counters/gauges/samples recorded on
  the session clock (:class:`MetricsRegistry`), queryable by analytics
  and experiments.
* :mod:`repro.telemetry.analysis` — critical-path extraction over the
  span tree and reconciliation against the paper's
  :class:`~repro.core.profiler.OverheadBreakdown`.
* :mod:`repro.telemetry.export` — Chrome trace-event JSON export,
  loadable in Perfetto / ``about://tracing``.
* :mod:`repro.telemetry.sink` — append-only event sinks: the resident
  :class:`MemorySink` (default) and the spillable :class:`SpoolSink`
  that streams events to an NDJSON spool file, keeping only a bounded
  ring in memory (the 10^6-unit scale envelope).

Everything here is *derived* from the trace after the fact (or emitted
as extra trace events that charge no virtual time), so telemetry can
never perturb scheduling decisions — and, like the trace itself, it is
bit-deterministic under a seed.

None of these modules imports the pilot layer at runtime, so the
session can own a :class:`Tracer` and a :class:`MetricsRegistry`
without an import cycle.
"""

from repro.telemetry.analysis import (
    CriticalPath,
    PathSegment,
    critical_path,
    reconcile_with_breakdown,
)
from repro.telemetry.export import chrome_trace, write_chrome_trace
from repro.telemetry.metrics import MetricsRegistry, MetricSeries
from repro.telemetry.sink import (
    EventSink,
    MemorySink,
    ProfileEvent,
    SpoolSink,
    revive,
)
from repro.telemetry.span import Span, SpanBuilder, SpanTree, Tracer, component_of

__all__ = [
    "EventSink",
    "MemorySink",
    "ProfileEvent",
    "SpoolSink",
    "revive",
    "Span",
    "SpanBuilder",
    "SpanTree",
    "Tracer",
    "component_of",
    "MetricsRegistry",
    "MetricSeries",
    "CriticalPath",
    "PathSegment",
    "critical_path",
    "reconcile_with_breakdown",
    "chrome_trace",
    "write_chrome_trace",
]
