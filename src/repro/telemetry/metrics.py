"""Metrics time series on the session clock.

A :class:`MetricsRegistry` records counters (monotonic increments),
gauges (set to a value) and samples (observations of a distribution),
each timestamped by the injected clock — the virtual clock under
simulation, so metric timelines are bit-identical across same-seed
runs.

When constructed with an ``emit`` callable (the session wires in
``Profiler.event``), every recorded point is *also* appended to the
flat trace as a ``metric`` event (``uid`` = metric name, ``value`` =
point value).  That makes metrics part of the JSONL dump, the Chrome
export (as counter tracks) and the determinism comparison for free,
and lets the ``repro trace`` CLI rebuild series from a trace file with
:meth:`MetricsRegistry.from_events`.

Every series always maintains O(1) running aggregates (count, min,
max, sum, last).  Whether it *also* keeps the full (time, value) point
list is the registry's ``resident_points`` switch: a spooling
million-unit session turns it off so metrics stay bounded — the
points still ride inside the trace, and ``from_events`` can rebuild a
fully resident registry from the spool afterwards.

No pilot-layer imports here (the session imports us).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = ["MetricSeries", "MetricsRegistry"]


@dataclass(slots=True)
class MetricSeries:
    """One named time series: running aggregates plus, when resident,
    the (time, value) points in record order."""

    name: str
    kind: str  # "counter" | "gauge" | "sample"
    points: list[tuple[float, float]] = field(default_factory=list)
    #: Whether :attr:`points` is populated; aggregates are always kept.
    resident: bool = True
    count: int = 0
    vmin: float = 0.0
    vmax: float = 0.0
    total: float = 0.0
    _last: float = 0.0

    def _push(self, time: float, value: float) -> None:
        if self.count == 0:
            self.vmin = self.vmax = value
        else:
            if value < self.vmin:
                self.vmin = value
            if value > self.vmax:
                self.vmax = value
        self.count += 1
        self.total += value
        self._last = value
        if self.resident:
            self.points.append((time, value))

    def __len__(self) -> int:
        return self.count

    @property
    def last(self) -> float:
        return self._last

    def values(self) -> list[float]:
        """Recorded values in order (resident series only)."""
        self._require_points()
        return [value for _, value in self.points]

    def value_at(self, time: float) -> float:
        """The most recent value at or before *time* (0.0 before any);
        resident series only."""
        self._require_points()
        current = 0.0
        for t, value in self.points:
            if t > time:
                break
            current = value
        return current

    def stats(self) -> dict[str, float]:
        """min/max/mean/count over recorded values (empty series → zeros).

        Computed from the running aggregates, so it works identically
        on resident and bounded series.
        """
        if not self.count:
            return {"count": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": float(self.count),
            "min": self.vmin,
            "max": self.vmax,
            "mean": self.total / self.count,
        }

    def _require_points(self) -> None:
        if not self.resident and self.count:
            raise RuntimeError(
                f"metric series {self.name!r} was recorded without resident "
                "points (bounded/spooling session); rebuild a resident "
                "registry from the trace with MetricsRegistry.from_events"
            )


class MetricsRegistry:
    """Counters, gauges and samples stamped by the session clock.

    ``clock`` is a zero-argument callable returning the current time
    (``Session`` passes its clock's ``now``); ``emit``, when given, is
    called as ``emit("metric", name, value=...)`` for every point so the
    series ride inside the profiler trace.  ``resident_points=False``
    bounds memory: series keep running aggregates only (see
    :class:`MetricSeries`).
    """

    def __init__(
        self,
        clock: Callable[[], float],
        emit: Callable[..., Any] | None = None,
        resident_points: bool = True,
    ) -> None:
        self._clock = clock
        self._emit = emit
        self._resident = resident_points
        self._series: dict[str, MetricSeries] = {}
        # Local-mode units advance from executor worker threads; the
        # read-modify-write in count()/adjust() needs the same guard
        # the profiler's append has.
        self._lock = threading.Lock()

    def _record(self, name: str, kind: str, value: float, delta: bool) -> None:
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = MetricSeries(
                    name=name, kind=kind, resident=self._resident
                )
                self._series[name] = series
            if delta and series.count:
                value += series.last
            value = float(value)
            series._push(self._clock(), value)
        if self._emit is not None:
            self._emit("metric", name, value=value, kind=kind)

    def count(self, name: str, delta: float = 1.0) -> None:
        """Increment counter *name* by *delta*; records the new total."""
        self._record(name, "counter", delta, delta=True)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self._record(name, "gauge", value, delta=False)

    def adjust(self, name: str, delta: float) -> None:
        """Adjust gauge *name* by *delta* from its last value."""
        self._record(name, "gauge", delta, delta=True)

    def sample(self, name: str, value: float) -> None:
        """Record one observation of distribution *name*."""
        self._record(name, "sample", value, delta=False)

    # -- queries -----------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._series)

    def series(self, name: str) -> MetricSeries:
        """The series for *name* (an empty gauge series if never recorded)."""
        return self._series.get(name, MetricSeries(name=name, kind="gauge"))

    def __contains__(self, name: str) -> bool:
        return name in self._series

    # -- reconstruction from a trace --------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Any]) -> "MetricsRegistry":
        """Rebuild a registry from ``metric`` events in a trace.

        Accepts live profile events or dicts parsed from a JSONL dump
        (including spool files).  The returned registry's clock is
        frozen (recording into it stamps time 0.0); it is meant for
        querying only.
        """
        registry = cls(lambda: 0.0)
        for event in events:
            if isinstance(event, Mapping):
                name, uid = str(event["name"]), str(event.get("uid", ""))
                attrs: Mapping[str, Any] = event
                time = float(event["time"])
            else:
                name, uid = event.name, event.uid
                attrs = event.attrs
                time = event.time
            if name != "metric":
                continue
            kind = str(attrs.get("kind", "gauge"))
            series = registry._series.get(uid)
            if series is None:
                series = MetricSeries(name=uid, kind=kind)
                registry._series[uid] = series
            series._push(time, float(attrs.get("value", 0.0)))
        return registry
