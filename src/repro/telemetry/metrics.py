"""Metrics time series on the session clock.

A :class:`MetricsRegistry` records counters (monotonic increments),
gauges (set to a value) and samples (observations of a distribution),
each timestamped by the injected clock — the virtual clock under
simulation, so metric timelines are bit-identical across same-seed
runs.

When constructed with an ``emit`` callable (the session wires in
``Profiler.event``), every recorded point is *also* appended to the
flat trace as a ``metric`` event (``uid`` = metric name, ``value`` =
point value).  That makes metrics part of the JSONL dump, the Chrome
export (as counter tracks) and the determinism comparison for free,
and lets the ``repro trace`` CLI rebuild series from a trace file with
:meth:`MetricsRegistry.from_events`.

No pilot-layer imports here (the session imports us).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = ["MetricSeries", "MetricsRegistry"]


@dataclass
class MetricSeries:
    """One named time series: (time, value) points in record order."""

    name: str
    kind: str  # "counter" | "gauge" | "sample"
    points: list[tuple[float, float]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def last(self) -> float:
        return self.points[-1][1] if self.points else 0.0

    def values(self) -> list[float]:
        return [value for _, value in self.points]

    def value_at(self, time: float) -> float:
        """The most recent value at or before *time* (0.0 before any)."""
        current = 0.0
        for t, value in self.points:
            if t > time:
                break
            current = value
        return current

    def stats(self) -> dict[str, float]:
        """min/max/mean/count over recorded values (empty series → zeros)."""
        values = self.values()
        if not values:
            return {"count": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": float(len(values)),
            "min": min(values),
            "max": max(values),
            "mean": sum(values) / len(values),
        }


class MetricsRegistry:
    """Counters, gauges and samples stamped by the session clock.

    ``clock`` is a zero-argument callable returning the current time
    (``Session`` passes its clock's ``now``); ``emit``, when given, is
    called as ``emit("metric", name, value=...)`` for every point so the
    series ride inside the profiler trace.
    """

    def __init__(
        self,
        clock: Callable[[], float],
        emit: Callable[..., Any] | None = None,
    ) -> None:
        self._clock = clock
        self._emit = emit
        self._series: dict[str, MetricSeries] = {}
        # Local-mode units advance from executor worker threads; the
        # read-modify-write in count()/adjust() needs the same guard
        # the profiler's append has.
        self._lock = threading.Lock()

    def _record(self, name: str, kind: str, value: float, delta: bool) -> None:
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = MetricSeries(name=name, kind=kind)
                self._series[name] = series
            points = series.points
            if delta and points:
                value += points[-1][1]
            value = float(value)
            points.append((self._clock(), value))
        if self._emit is not None:
            self._emit("metric", name, value=value, kind=kind)

    def count(self, name: str, delta: float = 1.0) -> None:
        """Increment counter *name* by *delta*; records the new total."""
        self._record(name, "counter", delta, delta=True)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value*."""
        self._record(name, "gauge", value, delta=False)

    def adjust(self, name: str, delta: float) -> None:
        """Adjust gauge *name* by *delta* from its last value."""
        self._record(name, "gauge", delta, delta=True)

    def sample(self, name: str, value: float) -> None:
        """Record one observation of distribution *name*."""
        self._record(name, "sample", value, delta=False)

    # -- queries -----------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._series)

    def series(self, name: str) -> MetricSeries:
        """The series for *name* (an empty gauge series if never recorded)."""
        return self._series.get(name, MetricSeries(name=name, kind="gauge"))

    def __contains__(self, name: str) -> bool:
        return name in self._series

    # -- reconstruction from a trace --------------------------------------

    @classmethod
    def from_events(cls, events: Iterable[Any]) -> "MetricsRegistry":
        """Rebuild a registry from ``metric`` events in a trace.

        Accepts live profile events or dicts parsed from a JSONL dump.
        The returned registry's clock is frozen (recording into it
        stamps time 0.0); it is meant for querying only.
        """
        registry = cls(lambda: 0.0)
        for event in events:
            if isinstance(event, Mapping):
                name, uid = str(event["name"]), str(event.get("uid", ""))
                attrs: Mapping[str, Any] = event
                time = float(event["time"])
            else:
                name, uid = event.name, event.uid
                attrs = event.attrs
                time = event.time
            if name != "metric":
                continue
            kind = str(attrs.get("kind", "gauge"))
            series = registry._series.get(uid)
            if series is None:
                series = MetricSeries(name=uid, kind=kind)
                registry._series[uid] = series
            series.points.append((time, float(attrs.get("value", 0.0))))
        return registry
