"""``python -m repro trace`` — inspect a JSONL trace dump.

Operates on the files written by ``Profiler.write_jsonl`` (and the
harness's ``--trace-out``).  Subcommands:

``summarize PATH``       event/span/metric overview of one trace
``export PATH -o OUT``   render Chrome trace-event JSON for Perfetto
``critical-path PATH``   the blocking-activity tiling of the TTC window

Exit codes follow ``repro lint``: 0 success, 2 usage error (missing or
malformed trace file).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.telemetry.analysis import critical_path
from repro.telemetry.export import write_chrome_trace
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.span import SpanBuilder, component_of

__all__ = ["add_trace_arguments", "run_trace"]


def add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    sub = parser.add_subparsers(
        dest="trace_command", required=True, metavar="subcommand",
        title="subcommands",
    )

    summarize = sub.add_parser(
        "summarize", help="event/span/metric overview of one trace"
    )
    summarize.add_argument("trace", help="JSONL trace file "
                                         "(Profiler.write_jsonl output)")

    export = sub.add_parser(
        "export",
        help="render Chrome trace-event JSON (Perfetto / about://tracing)",
    )
    export.add_argument("trace", help="JSONL trace file")
    export.add_argument("-o", "--output", required=True,
                        help="output .json path")

    cpath = sub.add_parser(
        "critical-path",
        help="blocking-activity tiling of the pattern's TTC window",
    )
    cpath.add_argument("trace", help="JSONL trace file")
    cpath.add_argument("--pattern", default=None,
                       help="pattern uid (default: innermost pattern span)")


def _load(path_str: str) -> list[dict[str, Any]]:
    path = Path(path_str)
    if not path.is_file():
        raise ValueError(f"no such trace file: {path}")
    events = []
    with path.open(encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{lineno}: bad JSONL: {exc}") from exc
    if not events:
        raise ValueError(f"empty trace file: {path}")
    return events


def _cmd_summarize(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    tree = SpanBuilder().add_events(events).build()

    print(f"trace    : {args.trace}")
    print(f"events   : {len(events)}")
    print(f"spans    : {len(tree)}")
    print(f"window   : [{tree.root.t_start:.3f}, {tree.root.t_end:.3f}] s "
          f"({tree.root.duration:.3f} s)")

    counts: dict[str, int] = {}
    seconds: dict[str, float] = {}
    for span in tree:
        counts[span.name] = counts.get(span.name, 0) + 1
        seconds[span.name] = seconds.get(span.name, 0.0) + span.duration
    print("\nspans by name (count, total seconds, component):")
    for name in sorted(counts):
        sample = next(s for s in tree if s.name == name)
        print(f"  {name:<28} {counts[name]:>6}  {seconds[name]:>12.3f}  "
              f"{component_of(sample)}")

    registry = MetricsRegistry.from_events(events)
    names = registry.names()
    if names:
        print("\nmetrics (points, min, max, mean of recorded values):")
        for name in names:
            stats = registry.series(name).stats()
            print(f"  {name:<32} {int(stats['count']):>6}  "
                  f"{stats['min']:>10.3f} {stats['max']:>10.3f} "
                  f"{stats['mean']:>10.3f}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    write_chrome_trace(events, args.output)
    print(f"wrote {args.output} — open in https://ui.perfetto.dev")
    return 0


def _cmd_critical_path(args: argparse.Namespace) -> int:
    events = _load(args.trace)
    tree = SpanBuilder().add_events(events).build()
    path = critical_path(tree, pattern_uid=args.pattern)

    print(f"window  : [{path.t_start:.3f}, {path.t_end:.3f}] s  "
          f"ref={path.ref or '-'}")
    print(f"total   : {path.total:.3f} s over {len(path.segments)} segment(s)")
    print("\ncomponent totals:")
    for component, total in sorted(path.by_component().items()):
        share = total / path.total if path.total else 0.0
        print(f"  {component:<10} {total:>12.3f} s  {share:>6.1%}")
    print("\nsegments:")
    for segment in path.segments:
        print(f"  [{segment.t_start:>12.3f}, {segment.t_end:>12.3f}] "
              f"{segment.duration:>10.3f} s  {segment.component:<10} "
              f"{segment.name}")
    return 0


def run_trace(args: argparse.Namespace) -> int:
    handlers = {
        "summarize": _cmd_summarize,
        "export": _cmd_export,
        "critical-path": _cmd_critical_path,
    }
    try:
        return handlers[args.trace_command](args)
    except ValueError as exc:
        print(f"repro trace: {exc}", file=sys.stderr)
        return 2
