"""Critical-path extraction and reconciliation with the Fig. 3 breakdown.

At every instant inside a pattern's TTC window the run is blocked on
exactly one class of activity: tasks executing, the toolkit charging
pattern overhead, or the runtime doing everything else (scheduling,
staging, queue wait).  :func:`critical_path` materializes that as a
sequence of :class:`PathSegment`\\ s that *tile* the window — so the
path's total duration equals TTC exactly, and its per-component sums
can be reconciled against :class:`~repro.core.profiler.OverheadBreakdown`
(:func:`reconcile_with_breakdown`).

Attribution uses the same precedence the breakdown implies: time under
at least one ``unit:EXECUTING`` span is *execution*; remaining time
under a pattern-overhead span is *pattern*; remaining time under a
core span is *core*; everything else is *runtime* (the breakdown's
``runtime_overhead = ttc - execution - pattern`` catch-all).

Pure interval arithmetic over the span tree — no pilot imports, fully
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.telemetry.span import Span, SpanTree, component_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.profiler import OverheadBreakdown

__all__ = [
    "PathSegment",
    "CriticalPath",
    "critical_path",
    "reconcile_with_breakdown",
]

_Interval = tuple[float, float]


def _union(intervals: list[_Interval]) -> list[_Interval]:
    """Merge overlapping/touching intervals; drops empty ones."""
    merged: list[_Interval] = []
    for start, stop in sorted(intervals):
        if stop <= start:
            continue
        if merged and start <= merged[-1][1]:
            if stop > merged[-1][1]:
                merged[-1] = (merged[-1][0], stop)
        else:
            merged.append((start, stop))
    return merged


def _subtract(base: list[_Interval], cut: list[_Interval]) -> list[_Interval]:
    """``base`` minus ``cut``; both must be sorted disjoint unions."""
    result: list[_Interval] = []
    for start, stop in base:
        pos = start
        for c_start, c_stop in cut:
            if c_stop <= pos:
                continue
            if c_start >= stop:
                break
            if c_start > pos:
                result.append((pos, c_start))
            pos = max(pos, c_stop)
            if pos >= stop:
                break
        if pos < stop:
            result.append((pos, stop))
    return result


def _clip(spans: list[Span], window: _Interval) -> list[_Interval]:
    t0, t1 = window
    return [
        (max(span.t_start, t0), min(span.t_end, t1))
        for span in spans
        if span.t_end > t0 and span.t_start < t1
    ]


def _length(intervals: list[_Interval]) -> float:
    return sum(stop - start for start, stop in intervals)


@dataclass(frozen=True)
class PathSegment:
    """One tile of the critical path.

    ``span_uid`` names a representative blocking span (``""`` when the
    runtime was between recorded activities — pure wait).
    """

    t_start: float
    t_end: float
    component: str
    span_uid: str
    name: str

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start


@dataclass(frozen=True)
class CriticalPath:
    """The tiled critical path over one pattern's TTC window."""

    t_start: float
    t_end: float
    ref: str
    segments: tuple[PathSegment, ...]

    @property
    def total(self) -> float:
        return self.t_end - self.t_start

    def by_component(self) -> dict[str, float]:
        """Seconds attributed to each component (keys always present)."""
        totals = {"execution": 0.0, "pattern": 0.0, "core": 0.0,
                  "runtime": 0.0}
        for segment in self.segments:
            totals[segment.component] = (
                totals.get(segment.component, 0.0) + segment.duration
            )
        return totals


def _representative(
    spans: list[Span], t_start: float, t_end: float
) -> tuple[str, str]:
    """The covering span that started earliest (ties: by uid)."""
    covering = [
        span
        for span in spans
        if span.t_start < t_end and span.t_end > t_start
    ]
    if not covering:
        return "", "wait"
    covering.sort(key=lambda span: (span.t_start, span.uid))
    return covering[0].uid, covering[0].name


def critical_path(
    tree: SpanTree, pattern_uid: str | None = None
) -> CriticalPath:
    """Extract the blocking-activity tiling of a pattern's TTC window.

    ``pattern_uid`` selects which pattern span frames the window; by
    default the innermost pattern span is used, falling back to the
    session root when the trace holds no pattern at all.
    """
    frame = tree.pattern(pattern_uid) or tree.root
    window = (frame.t_start, frame.t_end)

    by_component: dict[str, list[Span]] = {
        "execution": [], "pattern": [], "core": [], "runtime": [],
    }
    for span in tree.leaves():
        by_component[component_of(span)].append(span)

    execution = _union(_clip(by_component["execution"], window))
    pattern = _subtract(
        _union(_clip(by_component["pattern"], window)), execution
    )
    core = _subtract(
        _subtract(_union(_clip(by_component["core"], window)), execution),
        pattern,
    )
    claimed = _union(execution + pattern + core)
    runtime = _subtract([window], claimed)

    tiles: list[tuple[float, float, str, list[Span]]] = []
    for component, intervals in (
        ("execution", execution),
        ("pattern", pattern),
        ("core", core),
        ("runtime", runtime),
    ):
        tiles.extend(
            (start, stop, component, by_component[component])
            for start, stop in intervals
        )
    tiles.sort(key=lambda tile: tile[0])

    segments = []
    for start, stop, component, spans in tiles:
        uid, name = _representative(spans, start, stop)
        segments.append(PathSegment(start, stop, component, uid, name))

    return CriticalPath(
        t_start=window[0],
        t_end=window[1],
        ref=frame.ref,
        segments=tuple(segments),
    )


def reconcile_with_breakdown(
    path: CriticalPath, breakdown: "OverheadBreakdown"
) -> dict[str, float]:
    """Deltas between the path's component sums and the Fig. 3 breakdown.

    Returns ``{"ttc": ..., "execution": ..., "pattern": ...,
    "runtime": ...}`` where each value is *path seconds minus breakdown
    seconds*.  For workloads where pattern-overhead charges do not
    overlap execution (the paper's characterization runs) every delta
    is zero up to float rounding; a large delta flags either trace
    corruption or genuinely overlapping overheads.

    Core overhead is excluded: it falls outside the pattern's TTC
    window by construction (init/alloc before, cancel after).
    """
    totals = path.by_component()
    return {
        "ttc": path.total - breakdown.ttc,
        "execution": totals["execution"] - breakdown.execution_time,
        "pattern": totals["pattern"] - breakdown.pattern_overhead,
        "runtime": (totals["runtime"] + totals["core"])
        - breakdown.runtime_overhead,
    }
