"""Spillable append-only sinks for the flat event trace.

The profiler used to keep every :class:`ProfileEvent` in one resident
Python list — fine at 10^4 units, but the dominant memory term at 10^6
(a unit's lifecycle is ~30 events and each event is an object plus an
attrs dict).  A *sink* abstracts where appended events live:

* :class:`MemorySink` — the historical behaviour: every event resident,
  O(1) random access.  The default; nothing changes for existing runs.
* :class:`SpoolSink` — events are serialized to a newline-delimited
  JSON spool file as they are appended (the exact format of
  ``Profiler.write_jsonl``, so ``repro trace`` subcommands read spool
  files directly) and only a bounded ring of recent events stays
  resident.  Iteration re-reads the spool and *revives* each line as a
  :class:`ProfileEvent`, so every consumer — ``SpanBuilder``,
  ``MetricsRegistry.from_events``, the Chrome export, analytics
  readers — works identically on either sink.

Revival is exact: JSON floats round-trip through ``repr`` so a trace
digested from a spool is byte-identical to one digested live (the
golden-hash determinism tests pin this).

``ProfileEvent`` itself is defined here (and re-exported by
:mod:`repro.pilot.profiler` under its historical import path) so this
module does not import the pilot layer — the session imports telemetry.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = ["ProfileEvent", "EventSink", "MemorySink", "SpoolSink"]


@dataclass(slots=True)
class ProfileEvent:
    # Not frozen: a frozen dataclass pays object.__setattr__ per field on
    # every init, and this is the hottest allocation in a simulated run.
    # Treat instances as immutable all the same — nothing may mutate a
    # recorded event.
    time: float
    name: str
    uid: str
    attrs: dict[str, Any] = field(default_factory=dict)

    def row(self) -> dict[str, Any]:
        """The event as one flat JSONL row: ``{"time","name","uid",**attrs}``."""
        record = {"time": self.time, "name": self.name, "uid": self.uid}
        record.update(self.attrs)
        return record


def revive(row: dict[str, Any]) -> ProfileEvent:
    """The inverse of :meth:`ProfileEvent.row` for one parsed JSONL row."""
    time = row.pop("time")
    name = row.pop("name")
    uid = row.pop("uid", "")
    return ProfileEvent(float(time), str(name), str(uid), row)


class EventSink:
    """Append-only event storage; the profiler serializes all access.

    The contract is deliberately tiny: ``append`` one event, ``events``
    from an index onward, ``len``, and lifecycle ``flush``/``close``.
    Sinks need no locking of their own — the owning profiler already
    guards every call.
    """

    __slots__ = ()

    def append(self, ev: ProfileEvent) -> None:
        raise NotImplementedError

    def events(self, since: int = 0) -> list[ProfileEvent]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[ProfileEvent]:
        return iter(self.events())

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


class MemorySink(EventSink):
    """Every event resident in one list (the historical profiler store)."""

    __slots__ = ("_events",)

    def __init__(self) -> None:
        self._events: list[ProfileEvent] = []

    def append(self, ev: ProfileEvent) -> None:
        self._events.append(ev)

    def events(self, since: int = 0) -> list[ProfileEvent]:
        return self._events[since:] if since else list(self._events)

    def __len__(self) -> int:
        return len(self._events)


class SpoolSink(EventSink):
    """Stream events to an NDJSON spool file; keep a bounded ring resident.

    ``path`` is created (parents included) and truncated on first
    append.  ``ring`` bounds how many recent events stay in memory for
    cheap :meth:`tail` access; the full history lives only in the file.
    Reading (``events``/``__iter__``) flushes the stream and revives the
    file's rows, so reads are O(file) — fine for end-of-run export and
    analytics, which is the only read pattern the runtime has.
    """

    __slots__ = ("path", "_ring", "_stream", "_count", "_opened")

    def __init__(self, path: str | Path, ring: int = 1024) -> None:
        self.path = Path(path)
        self._ring: deque[ProfileEvent] = deque(maxlen=max(ring, 1))
        self._stream = None
        self._count = 0
        self._opened = False

    def append(self, ev: ProfileEvent) -> None:
        if self._stream is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            # Truncate on the sink's first-ever open; a close()d sink that
            # sees further appends (session teardown events) reopens in
            # append mode so the history survives.
            self._stream = self.path.open("a" if self._opened else "w")
            self._opened = True
        self._stream.write(json.dumps(ev.row(), default=str) + "\n")
        self._ring.append(ev)
        self._count += 1

    def events(self, since: int = 0) -> list[ProfileEvent]:
        self.flush()
        if not self._opened:
            return []
        out: list[ProfileEvent] = []
        with self.path.open() as stream:
            for index, line in enumerate(stream):
                if index >= since and line.strip():
                    out.append(revive(json.loads(line)))
        return out

    def tail(self) -> list[ProfileEvent]:
        """The most recent events still resident (at most the ring size)."""
        return list(self._ring)

    def __len__(self) -> int:
        return self._count

    def flush(self) -> None:
        if self._stream is not None:
            self._stream.flush()

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
            self._stream = None
