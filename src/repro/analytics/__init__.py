"""Analysis of runtime traces into the paper's metrics and tables."""

from repro.analytics.faults import (
    FaultRecoverySummary,
    fault_recovery_overhead,
    fault_recovery_summary,
)
from repro.analytics.metrics import (
    group_units,
    phase_execution_time,
    phase_total_time,
    speedup,
    parallel_efficiency,
    utilization,
)
from repro.analytics.tables import format_table, Series
from repro.analytics.validation import (
    check_core_accounting,
    check_state_timestamps_monotonic,
    peak_concurrent_cores,
)

__all__ = [
    "FaultRecoverySummary",
    "fault_recovery_overhead",
    "fault_recovery_summary",
    "group_units",
    "phase_execution_time",
    "phase_total_time",
    "speedup",
    "parallel_efficiency",
    "utilization",
    "format_table",
    "Series",
    "peak_concurrent_cores",
    "check_core_accounting",
    "check_state_timestamps_monotonic",
]
