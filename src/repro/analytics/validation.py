"""Trace validators: check runtime invariants after the fact.

These are the paper-critical invariants of DESIGN.md §6, checked against
executed units' timestamps.  The property-based test suite throws random
workloads at the runtime and runs these validators over the outcome.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.pilot.states import UnitState

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit

__all__ = [
    "peak_concurrent_cores",
    "check_core_accounting",
    "check_state_timestamps_monotonic",
]


def _exec_spans(units: Iterable["ComputeUnit"]):
    for unit in units:
        start = unit.timestamps.get(UnitState.EXECUTING.value)
        stop = unit.timestamps.get(UnitState.AGENT_STAGING_OUTPUT.value)
        if stop is None:
            stop = unit.timestamps.get(unit.state.value)
        if start is not None and stop is not None:
            yield start, stop, unit.description.cores


def peak_concurrent_cores(units: Iterable["ComputeUnit"]) -> int:
    """Maximum cores simultaneously occupied by EXECUTING units.

    Sweep line over (start, +cores) / (stop, -cores) events; stop sorts
    before start at equal timestamps (a core freed at *t* is reusable at
    *t*, which matches the agent's reschedule-on-completion behaviour).
    """
    events: list[tuple[float, int, int]] = []
    for start, stop, cores in _exec_spans(units):
        events.append((start, 1, cores))
        events.append((stop, 0, -cores))
    events.sort()
    active = peak = 0
    for _, _, delta in events:
        active += delta
        peak = max(peak, active)
    return peak


def check_core_accounting(
    units: Iterable["ComputeUnit"], total_cores: int
) -> None:
    """Raise AssertionError if occupied cores ever exceeded the pilot size."""
    peak = peak_concurrent_cores(units)
    assert peak <= total_cores, (
        f"core accounting violated: peak {peak} cores on a "
        f"{total_cores}-core pilot"
    )


_STATE_ORDER = [
    UnitState.NEW,
    UnitState.UMGR_SCHEDULING,
    UnitState.AGENT_STAGING_INPUT,
    UnitState.AGENT_SCHEDULING,
    UnitState.EXECUTING,
    UnitState.AGENT_STAGING_OUTPUT,
    UnitState.DONE,
]


def check_state_timestamps_monotonic(units: Iterable["ComputeUnit"]) -> None:
    """Raise AssertionError unless every unit's recorded state timestamps
    are non-decreasing along the canonical state order."""
    for unit in units:
        previous = None
        for state in _STATE_ORDER:
            stamp = unit.timestamps.get(state.value)
            if stamp is None:
                continue
            if previous is not None:
                assert stamp >= previous - 1e-9, (
                    f"unit {unit.uid}: {state.value} stamped before its "
                    f"predecessor ({stamp} < {previous})"
                )
            previous = stamp
