"""Metrics over executed patterns: phase times, speedups, utilization."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable

from repro.core.profiler import merge_interval_length
from repro.pilot.states import UnitState

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.unit import ComputeUnit

__all__ = [
    "group_units",
    "phase_execution_time",
    "phase_total_time",
    "speedup",
    "parallel_efficiency",
    "utilization",
]


def group_units(
    units: Iterable["ComputeUnit"],
    key: str | Callable[["ComputeUnit"], Any],
) -> dict[Any, list["ComputeUnit"]]:
    """Group units by a tag name (from ``description.tags``) or a key function.

    Units lacking the tag land under ``None``.
    """
    if isinstance(key, str):
        tag = key

        def key_fn(u: "ComputeUnit") -> Any:
            return u.description.tags.get(tag)
    else:
        key_fn = key
    groups: dict[Any, list["ComputeUnit"]] = {}
    for unit in units:
        groups.setdefault(key_fn(unit), []).append(unit)
    return groups


def _exec_intervals(units: Iterable["ComputeUnit"]) -> list[tuple[float, float]]:
    intervals = []
    for u in units:
        start = u.timestamps.get(UnitState.EXECUTING.value)
        stop = u.timestamps.get(UnitState.AGENT_STAGING_OUTPUT.value)
        if stop is None:
            stop = u.timestamps.get(u.state.value)
        if start is not None and stop is not None:
            intervals.append((start, stop))
    return intervals


def phase_execution_time(units: Iterable["ComputeUnit"]) -> float:
    """Union length of the units' EXECUTING intervals (wall view).

    This is "how long did this phase run" — concurrent units overlap, and
    waves on an undersized pilot accumulate, exactly what the paper's
    per-phase plots (simulation time, exchange time, analysis time) show.
    """
    return merge_interval_length(_exec_intervals(units))


def phase_total_time(units: Iterable["ComputeUnit"]) -> float:
    """Sum of per-unit execution durations (total core-time view)."""
    return sum(stop - start for start, stop in _exec_intervals(units))


def speedup(t_base: float, t: float) -> float:
    """Classical speedup of *t* relative to the baseline duration."""
    if t <= 0:
        raise ValueError("t must be positive")
    return t_base / t


def parallel_efficiency(t_base: float, t: float, scale: float) -> float:
    """Speedup divided by the resource scale factor."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    return speedup(t_base, t) / scale


def utilization(
    units: Iterable["ComputeUnit"], total_cores: int, span: float
) -> float:
    """Fraction of core-seconds spent executing over *span* seconds."""
    if total_cores <= 0 or span <= 0:
        raise ValueError("total_cores and span must be positive")
    busy = 0.0
    for u in units:
        intervals = _exec_intervals([u])
        if intervals:
            start, stop = intervals[0]
            busy += (stop - start) * u.description.cores
    return busy / (total_cores * span)
