"""Plain-text tables and series, the benchmark harness' output format."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

__all__ = ["format_table", "Series"]


def _fmt(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Iterable[dict[str, Any]] | Sequence[Sequence[Any]],
    headers: Sequence[str] | None = None,
    precision: int = 2,
    title: str = "",
) -> str:
    """Render rows as an aligned ASCII table.

    Accepts either a list of dicts (headers default to the first row's
    keys) or a list of sequences with explicit *headers*.
    """
    rows = list(rows)
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if isinstance(rows[0], dict):
        if headers is None:
            headers = list(rows[0].keys())
        body = [[_fmt(row.get(h, ""), precision) for h in headers] for row in rows]
    else:
        if headers is None:
            raise ValueError("sequence rows require explicit headers")
        body = [[_fmt(v, precision) for v in row] for row in rows]

    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in body))
        for i in range(len(headers))
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for r in body:
        lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


@dataclass
class Series:
    """A named x/y series, the unit of figure reproduction.

    ``expectation`` documents the paper's qualitative claim about the
    series ("halves per doubling", "constant", "grows linearly") that the
    benchmark assertions verify.
    """

    name: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)
    x_label: str = "x"
    y_label: str = "seconds"
    expectation: str = ""

    def append(self, x: float, y: float) -> None:
        self.x.append(float(x))
        self.y.append(float(y))

    def __len__(self) -> int:
        return len(self.x)

    # -- shape checks used by the benchmark harness -------------------------------

    def is_constant(self, tolerance: float = 0.25) -> bool:
        """All values within ±tolerance of the series mean."""
        if not self.y:
            return True
        mean = sum(self.y) / len(self.y)
        if mean == 0:
            return all(abs(v) < 1e-12 for v in self.y)
        return all(abs(v - mean) <= tolerance * abs(mean) for v in self.y)

    def is_decreasing(self) -> bool:
        return all(b < a for a, b in zip(self.y, self.y[1:]))

    def is_increasing(self) -> bool:
        return all(b > a for a, b in zip(self.y, self.y[1:]))

    def halves_per_doubling(self, tolerance: float = 0.3) -> bool:
        """y ~ 1/x: check y_i * x_i roughly constant (strong scaling)."""
        if len(self.y) < 2:
            return True
        products = [x * y for x, y in zip(self.x, self.y)]
        mean = sum(products) / len(products)
        return all(abs(p - mean) <= tolerance * mean for p in products)

    def grows_linearly(self, tolerance: float = 0.35) -> bool:
        """y ~ a + b·x with positive b: check first differences scale with x."""
        if len(self.y) < 3:
            return self.is_increasing()
        # Ratios y/x converge for linear-through-origin growth; with an
        # offset, compare slope estimates between the ends.
        slope_lo = (self.y[1] - self.y[0]) / (self.x[1] - self.x[0])
        slope_hi = (self.y[-1] - self.y[-2]) / (self.x[-1] - self.x[-2])
        if slope_hi <= 0:
            return False
        return abs(slope_hi - slope_lo) <= tolerance * max(abs(slope_hi), abs(slope_lo))

    def as_rows(self) -> list[dict[str, float]]:
        return [{self.x_label: x, self.y_label: y} for x, y in zip(self.x, self.y)]
