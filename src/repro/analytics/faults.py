"""Fault-recovery accounting from profiler traces.

The fault-tolerance subsystem (node faults, pilot resubmission, retry
policies) records every failure and every recovery action in the session
profiler.  This module folds those events into a single *fault-recovery
overhead* figure — the seconds a run spent coping with failures instead
of making progress — so ablations can report TTC inflation in the
paper's decomposition style.

Overhead components (all in virtual seconds, summed per affected unit —
with many concurrent victims the total is aggregate core-time and can
exceed the run's wall-clock TTC, like wasted core-hours):

* **wasted execution** — time victims had already spent on cores when a
  node/pilot death (or an injected task fault) threw their work away,
* **backoff delay** — time the retry policy deliberately waited before
  resubmitting (runtime requeues and pattern-level task retries),
* **resubmit downtime** — time between a pilot's resubmission and its
  replacement agent starting (submit latency + queue wait + bootstrap).

Node repair intervals are reported separately (``node_downtime``): a down
node only costs TTC when the workload needed its cores, which the three
components above already capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.pilot.profiler import Profiler

__all__ = [
    "FaultRecoverySummary",
    "fault_recovery_summary",
    "fault_recovery_overhead",
]


@dataclass(frozen=True)
class FaultRecoverySummary:
    """Counts and durations of every fault-recovery mechanism in one trace."""

    node_failures: int = 0
    node_repairs: int = 0
    pilot_faults: int = 0
    pilot_resubmits: int = 0
    task_faults: int = 0
    units_killed: int = 0
    unit_requeues: int = 0
    task_retries: int = 0
    wasted_execution: float = 0.0
    backoff_delay: float = 0.0
    resubmit_downtime: float = 0.0
    node_downtime: float = 0.0

    @property
    def overhead(self) -> float:
        """Total fault-recovery seconds (aggregate across affected units)."""
        return self.wasted_execution + self.backoff_delay + self.resubmit_downtime

    def as_dict(self) -> dict[str, float]:
        return {
            "node_failures": self.node_failures,
            "node_repairs": self.node_repairs,
            "pilot_faults": self.pilot_faults,
            "pilot_resubmits": self.pilot_resubmits,
            "task_faults": self.task_faults,
            "units_killed": self.units_killed,
            "unit_requeues": self.unit_requeues,
            "task_retries": self.task_retries,
            "wasted_execution": self.wasted_execution,
            "backoff_delay": self.backoff_delay,
            "resubmit_downtime": self.resubmit_downtime,
            "node_downtime": self.node_downtime,
            "overhead": self.overhead,
        }


def fault_recovery_summary(prof: "Profiler") -> FaultRecoverySummary:
    """Fold one session trace into a :class:`FaultRecoverySummary`.

    A fault-free trace yields the all-zero summary, so callers can apply
    this unconditionally.
    """
    node_fails = prof.events("node_fail")
    node_repairs = prof.events("node_repair")
    pilot_faults = prof.events("pilot_fault")
    resubmits = prof.events("pilot_resubmit")
    task_faults = prof.events("task_fault")
    node_kills = prof.events("unit_node_kill")
    pilot_kills = prof.events("unit_pilot_kill")
    requeues = prof.events("unit_requeue")
    retries = prof.events("entk_task_retry")

    wasted = sum(ev.attrs.get("wasted", 0.0) for ev in node_kills)
    wasted += sum(ev.attrs.get("wasted", 0.0) for ev in pilot_kills)
    # An injected task fault strikes `at` seconds into the execution: that
    # much core time was burned before the failure surfaced.
    wasted += sum(ev.attrs.get("at", 0.0) for ev in task_faults)

    backoff = sum(ev.attrs.get("delay", 0.0) for ev in requeues)
    backoff += sum(ev.attrs.get("delay", 0.0) for ev in retries)

    # Resubmit downtime: from each pilot_resubmit to the next agent_start
    # of the same pilot (the replacement allocation coming up).  A pilot
    # that never came back is charged up to the trace's last event.
    trace_end = max((ev.time for ev in prof), default=0.0)
    agent_starts: dict[str, list[float]] = {}
    for ev in prof.events("agent_start"):
        agent_starts.setdefault(ev.uid, []).append(ev.time)
    resubmit_downtime = 0.0
    for ev in resubmits:
        later = [t for t in agent_starts.get(ev.uid, []) if t >= ev.time]
        resubmit_downtime += (min(later) if later else trace_end) - ev.time

    # Node downtime: pair each node_fail with the next node_repair of the
    # same (pilot, node); unrepaired nodes count until trace end.
    repair_times: dict[tuple[str, int], list[float]] = {}
    for ev in node_repairs:
        key = (ev.uid, ev.attrs.get("node", -1))
        repair_times.setdefault(key, []).append(ev.time)
    node_downtime = 0.0
    for ev in node_fails:
        key = (ev.uid, ev.attrs.get("node", -1))
        later = [t for t in repair_times.get(key, []) if t >= ev.time]
        node_downtime += (min(later) if later else trace_end) - ev.time

    return FaultRecoverySummary(
        node_failures=len(node_fails),
        node_repairs=len(node_repairs),
        pilot_faults=len(pilot_faults),
        pilot_resubmits=len(resubmits),
        task_faults=len(task_faults),
        units_killed=len(node_kills) + len(pilot_kills),
        unit_requeues=len(requeues),
        task_retries=len(retries),
        wasted_execution=wasted,
        backoff_delay=backoff,
        resubmit_downtime=resubmit_downtime,
        node_downtime=node_downtime,
    )


def fault_recovery_overhead(prof: "Profiler") -> float:
    """Shortcut: the scalar fault-recovery overhead of one trace."""
    return fault_recovery_summary(prof).overhead
