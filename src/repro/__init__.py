"""repro — a reproduction of "Ensemble Toolkit: Scalable and Flexible
Execution of Ensembles of Tasks" (Balasubramanian et al., ICPP 2016).

The public API mirrors the paper's application-development workflow:

1. pick an execution pattern (:class:`EnsembleOfPipelines`,
   :class:`EnsembleExchange`, :class:`SimulationAnalysisLoop`,
   :class:`BagOfTasks`),
2. define the kernels of its stages (:class:`Kernel`),
3. create a :class:`ResourceHandle` and :meth:`~ResourceHandle.allocate`,
4. :meth:`~ResourceHandle.run` the pattern,
5. :meth:`~ResourceHandle.deallocate`.

See ``examples/quickstart.py`` for a complete five-minute tour; the lower
layers (pilot runtime, simulated clusters, toy MD) are importable from
``repro.pilot``, ``repro.cluster`` and ``repro.md``.
"""

from repro.core import (
    AdaptDecision,
    AdaptiveSimulationAnalysisLoop,
    BagOfTasks,
    ConcurrentPatterns,
    EnsembleExchange,
    EnsembleOfPipelines,
    ExecutionPattern,
    Kernel,
    KernelPlugin,
    OverheadBreakdown,
    PatternSequence,
    ResourceHandle,
    SimulationAnalysisLoop,
    SingleClusterEnvironment,
    breakdown_from_profile,
    register_kernel,
)
from repro.exceptions import (
    EnTKError,
    KernelError,
    PatternError,
    ReproError,
    ResourceHandleError,
)

__version__ = "1.0.0"

__all__ = [
    "Kernel",
    "KernelPlugin",
    "register_kernel",
    "ExecutionPattern",
    "BagOfTasks",
    "AdaptDecision",
    "AdaptiveSimulationAnalysisLoop",
    "EnsembleOfPipelines",
    "EnsembleExchange",
    "SimulationAnalysisLoop",
    "PatternSequence",
    "ConcurrentPatterns",
    "ResourceHandle",
    "SingleClusterEnvironment",
    "OverheadBreakdown",
    "breakdown_from_profile",
    "ReproError",
    "EnTKError",
    "PatternError",
    "KernelError",
    "ResourceHandleError",
    "__version__",
]
