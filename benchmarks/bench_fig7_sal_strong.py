"""Fig. 7 — SAL strong scaling at paper scale.

1024 Amber-CoCo simulations (0.6 ps, 1 core each) on simulated Stampede,
cores swept 64..1024.  Reproduces: simulation time decreasing linearly
with cores, serial analysis time constant.
"""

import pytest

from repro.experiments import fig7


def test_fig7_sal_strong_scaling(figure_bench):
    result = figure_bench(
        fig7.run, simulations=1024, core_counts=(64, 128, 256, 512, 1024)
    )
    sim = result.series["simulation"]
    assert sim.y[0] / sim.y[-1] == pytest.approx(16.0, rel=0.1)
    analysis = result.series["analysis"]
    assert max(analysis.y) <= 1.05 * min(analysis.y)
