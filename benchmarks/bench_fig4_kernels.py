"""Fig. 4 — kernel-plugin validation at paper scale.

Gromacs + LSDMap via SAL on simulated Comet, tasks = cores in
{24, 48, 96, 192}; the reproduced claim is kernel invariance of the
toolkit's overheads (compared against the Fig. 3 utility-kernel SAL).
"""

from repro.experiments import fig4


def test_fig4_kernel_validation(figure_bench):
    result = figure_bench(fig4.run, task_counts=(24, 48, 96, 192))
    assert len(result.rows) == 8  # md + reference at each size
