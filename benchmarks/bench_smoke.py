"""Reduced micro-benchmark smoke run: seeds the perf trajectory.

Runs shrunken versions of the ``bench_runtime_micro.py`` cases without
needing pytest-benchmark and emits ``BENCH_micro.json`` — one record per
case::

    {"bench": <name>, "config": {...}, "wall_s": <float>,
     "peak_kb": <float>, "sim_ttc_s": <float>}

``wall_s`` is this machine's wall time (informational, machine-dependent);
``peak_kb`` is the tracemalloc peak of one dedicated pass (informational,
non-gating — measured separately so the allocation tracer never pollutes
``wall_s``); ``sim_ttc_s`` is the *virtual* outcome of the same run, which
is a pure function of (workload, seed) and therefore must match the
committed baseline bit-for-bit on every machine.  ``--check`` verifies
exactly that, giving CI a cheap end-to-end regression gate over the DES,
the pilot state model, the batch queue and the pattern layer.

``--spool DIR`` additionally reruns the EoP case with the trace streamed
to an NDJSON spool file in DIR (kept as a CI artifact) and gates that the
spooled run's virtual outcome is identical.

Usage::

    PYTHONPATH=src python benchmarks/bench_smoke.py -o BENCH_micro.json
    PYTHONPATH=src python benchmarks/bench_smoke.py --check BENCH_micro.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc
from pathlib import Path

from repro.utils.ids import reset_id_counters


def bench_des_event_throughput() -> tuple[dict, float]:
    from repro.eventsim import Simulator

    n = 5000
    sim = Simulator()
    for i in range(n):
        sim.schedule(float(i % 97), lambda: None)
    sim.run()
    assert sim.events_processed == n
    return {"events": n}, sim.now


def bench_pilot_unit_churn() -> tuple[dict, float]:
    from repro.pilot import (
        ComputePilotDescription,
        ComputeUnitDescription,
        PilotManager,
        Session,
        UnitManager,
    )

    n, cores = 200, 128
    session = Session(mode="sim", platform="xsede.stampede")
    pmgr = PilotManager(session)
    pilot = pmgr.submit_pilots(
        ComputePilotDescription(
            resource="xsede.stampede", cores=cores, runtime=600, mode="sim"
        )
    )[0]
    umgr = UnitManager(session)
    umgr.add_pilots(pilot)
    units = umgr.submit_units(
        [
            ComputeUnitDescription(executable="t", modelled_duration=10.0)
            for _ in range(n)
        ]
    )
    umgr.wait_units()
    ttc = session.now()
    pmgr.cancel_pilots()
    session.close()
    assert sum(u.state.value == "DONE" for u in units) == n
    return {"units": n, "cores": cores}, ttc


def bench_batch_scheduler_placement() -> tuple[dict, float]:
    from repro.cluster.batch import BatchScheduler
    from repro.cluster.job import BatchJob
    from repro.cluster.platforms import get_platform
    from repro.eventsim import Simulator

    n = 300
    sim = Simulator()
    scheduler = BatchScheduler(sim, get_platform("xsede.comet"))
    jobs = [
        BatchJob(nodes=1 + (i % 8), walltime=3600.0, duration=60.0 + i % 50)
        for i in range(n)
    ]
    for job in jobs:
        scheduler.submit(job)
    sim.run()
    assert sum(j.state.value == "COMPLETED" for j in jobs) == n
    return {"jobs": n}, sim.now


def bench_sched_pressure() -> tuple[dict, float]:
    """Scheduler-heavy churn: thousands of mixed-width units on 4096 cores.

    Exercises the indexed slot schedulers and the batched wake-up path at
    a scale where the old O(cores) scans dominated (this case took ~250 s
    before the indexed rewrite, ~3.5 s after).
    """
    from repro.pilot import (
        ComputePilotDescription,
        ComputeUnitDescription,
        PilotManager,
        Session,
        UnitManager,
    )

    n, cores = 3000, 4096
    session = Session(mode="sim", platform="xsede.stampede")
    pmgr = PilotManager(session)
    pilot = pmgr.submit_pilots(
        ComputePilotDescription(
            resource="xsede.stampede", cores=cores, runtime=600, mode="sim"
        )
    )[0]
    umgr = UnitManager(session)
    umgr.add_pilots(pilot)
    units = umgr.submit_units(
        [
            ComputeUnitDescription(
                executable="t",
                cores=1 + (7 * i) % 16,
                mpi=(7 * i) % 16 > 0,
                modelled_duration=5.0 + (i % 13),
            )
            for i in range(n)
        ]
    )
    umgr.wait_units()
    ttc = session.now()
    pmgr.cancel_pilots()
    session.close()
    assert sum(u.state.value == "DONE" for u in units) == n
    return {"units": n, "cores": cores}, ttc


def bench_pattern_eop(spool_dir: str | None = None) -> tuple[dict, float]:
    from repro.core.kernel_plugin import Kernel
    from repro.core.patterns import EnsembleOfPipelines
    from repro.core.profiler import breakdown_from_profile
    from repro.core.resource_handle import ResourceHandle

    class EoP(EnsembleOfPipelines):
        def stage_1(self, instance):
            kernel = Kernel(name="misc.sleep")
            kernel.arguments = ["--duration=40"]
            return kernel

        def stage_2(self, instance):
            kernel = Kernel(name="misc.sleep")
            kernel.arguments = ["--duration=20"]
            return kernel

    size, cores = 16, 16
    pattern = EoP(ensemble_size=size, pipeline_size=2)
    handle = ResourceHandle(
        "xsede.comet", cores=cores, walltime=600, mode="sim", seed=0,
        spool_dir=spool_dir,
    )
    handle.allocate()
    try:
        handle.run(pattern)
    finally:
        handle.deallocate()
    breakdown = breakdown_from_profile(handle.profile, pattern)
    return {"ensemble_size": size, "cores": cores}, breakdown.ttc


CASES = [
    ("des_event_throughput", bench_des_event_throughput),
    ("pilot_unit_churn", bench_pilot_unit_churn),
    ("batch_scheduler_placement", bench_batch_scheduler_placement),
    ("sched_pressure", bench_sched_pressure),
    ("pattern_eop", bench_pattern_eop),
]

#: Wall-time repeats per case.  The recorded ``wall_s`` is the minimum
#: (the standard micro-benchmark estimator: noise only ever adds time),
#: and every repeat must produce the *same* ``sim_ttc_s`` — a free
#: intra-run determinism gate on top of the cross-run ``--check``.
REPEATS = 3


def run_cases(repeats: int = REPEATS) -> list[dict]:
    records = []
    for name, fn in CASES:
        wall = float("inf")
        config: dict = {}
        ttcs = []
        for _ in range(repeats):
            reset_id_counters()
            t0 = time.perf_counter()
            config, sim_ttc = fn()
            wall = min(wall, time.perf_counter() - t0)
            ttcs.append(sim_ttc)
        if len(set(ttcs)) != 1:
            raise AssertionError(
                f"{name}: sim_ttc_s varies across repeats: {ttcs!r}"
            )
        # One dedicated pass under tracemalloc: the tracer costs 2-4x in
        # wall time, so it must never run during the timed repeats.
        reset_id_counters()
        tracemalloc.start()
        _, memory_ttc = fn()
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        if memory_ttc != ttcs[0]:
            raise AssertionError(
                f"{name}: sim_ttc_s differs under tracemalloc: "
                f"{memory_ttc!r} != {ttcs[0]!r}"
            )
        records.append(
            {
                "bench": name,
                "config": config,
                "wall_s": round(wall, 4),
                "peak_kb": round(peak / 1024, 1),
                "sim_ttc_s": ttcs[0],
            }
        )
        print(f"{name:<28} wall {wall:8.3f} s   peak {peak / 1024:9.1f} KiB"
              f"   sim ttc {ttcs[0]:12.3f} s")
    return records


def run_spooled_case(spool_dir: str, expected_ttc: float) -> dict:
    """The EoP case with its trace streamed to a spool file in *spool_dir*.

    The spool file is the CI artifact proving the streaming path works
    end-to-end; the virtual outcome must be identical to the resident run.
    """
    Path(spool_dir).mkdir(parents=True, exist_ok=True)
    reset_id_counters()
    t0 = time.perf_counter()
    config, sim_ttc = bench_pattern_eop(spool_dir=spool_dir)
    wall = time.perf_counter() - t0
    if sim_ttc != expected_ttc:
        raise AssertionError(
            f"pattern_eop_spooled: sim_ttc_s {sim_ttc!r} != resident run "
            f"{expected_ttc!r} (spooling must not change outcomes)"
        )
    spools = sorted(Path(spool_dir).glob("*.trace.jsonl"))
    record = {
        "bench": "pattern_eop_spooled",
        "config": config,
        "wall_s": round(wall, 4),
        "sim_ttc_s": sim_ttc,
    }
    print(f"{'pattern_eop_spooled':<28} wall {wall:8.3f} s   "
          f"sim ttc {sim_ttc:12.3f} s   spool {spools[-1].name}")
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output", default=None,
                        help="write BENCH_micro.json records here")
    parser.add_argument("--check", metavar="BASELINE", default=None,
                        help="compare sim_ttc_s against a committed baseline")
    parser.add_argument("--repeats", type=int, default=REPEATS,
                        help="wall-time repeats per case (min is recorded)")
    parser.add_argument("--spool", metavar="DIR", default=None,
                        help="also run the EoP case spooled, writing its "
                             "NDJSON trace into DIR (kept as CI artifact)")
    args = parser.parse_args(argv)

    records = run_cases(repeats=args.repeats)
    if args.spool:
        eop = next(r for r in records if r["bench"] == "pattern_eop")
        records.append(run_spooled_case(args.spool, eop["sim_ttc_s"]))

    if args.output:
        Path(args.output).write_text(json.dumps(records, indent=2) + "\n")
        print(f"wrote {args.output}")

    if args.check:
        baseline = {
            rec["bench"]: rec for rec in json.loads(Path(args.check).read_text())
        }
        failures = []
        for rec in records:
            expect = baseline.get(rec["bench"])
            if expect is None:
                failures.append(f"{rec['bench']}: not in baseline")
            elif expect["sim_ttc_s"] != rec["sim_ttc_s"]:
                failures.append(
                    f"{rec['bench']}: sim_ttc_s {rec['sim_ttc_s']!r} != "
                    f"baseline {expect['sim_ttc_s']!r}"
                )
        if failures:
            print("bench-smoke determinism check FAILED:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(f"determinism check OK ({len(records)} cases match baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
