"""Micro-benchmarks of the substrate itself.

These measure the reproduction's own machinery (DES event throughput,
unit-churn rate through the full pilot state model, batch-scheduler
placement) so regressions in the simulator do not silently distort the
figure reproductions.
"""

from repro.cluster.batch import BatchScheduler
from repro.cluster.job import BatchJob
from repro.cluster.platforms import get_platform
from repro.eventsim import Simulator
from repro.pilot import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    Session,
    UnitManager,
)


def test_des_event_throughput(benchmark):
    """Schedule-and-drain 20k chained events."""

    def run() -> int:
        sim = Simulator()
        for i in range(20_000):
            sim.schedule(float(i % 97), lambda: None)
        sim.run()
        return sim.events_processed

    events = benchmark(run)
    assert events == 20_000


def test_pilot_unit_churn(benchmark):
    """Push 2000 units through the complete simulated unit state model."""

    def run() -> int:
        session = Session(mode="sim", platform="xsede.stampede")
        pmgr = PilotManager(session)
        pilot = pmgr.submit_pilots(
            ComputePilotDescription(
                resource="xsede.stampede", cores=512, runtime=600, mode="sim"
            )
        )[0]
        umgr = UnitManager(session)
        umgr.add_pilots(pilot)
        units = umgr.submit_units(
            [
                ComputeUnitDescription(executable="t", modelled_duration=10.0)
                for _ in range(2000)
            ]
        )
        umgr.wait_units()
        pmgr.cancel_pilots()
        session.close()
        return sum(u.state.value == "DONE" for u in units)

    done = benchmark.pedantic(run, rounds=3, iterations=1)
    assert done == 2000


def test_batch_scheduler_placement(benchmark):
    """Place 3000 mixed-size jobs through the EASY backfill queue."""

    def run() -> int:
        sim = Simulator()
        scheduler = BatchScheduler(sim, get_platform("xsede.comet"))
        jobs = [
            BatchJob(nodes=1 + (i % 8), walltime=3600.0, duration=60.0 + i % 50)
            for i in range(3000)
        ]
        for job in jobs:
            scheduler.submit(job)
        sim.run()
        return sum(j.state.value == "COMPLETED" for j in jobs)

    completed = benchmark.pedantic(run, rounds=3, iterations=1)
    assert completed == 3000


def test_strategy_estimate_accuracy(benchmark):
    """The execution-strategy estimator tracks actual simulated TTC.

    Plans a 256-task workload on Comet at three pilot widths and compares
    each estimate against a real simulated run (queue wait excluded on
    both sides).  Accuracy within 20% is what makes the §V "intelligent
    execution plugin" decision layer trustworthy.
    """
    from repro.core.kernel_plugin import Kernel
    from repro.core.patterns import BagOfTasks
    from repro.core.profiler import breakdown_from_profile
    from repro.core.resource_handle import ResourceHandle
    from repro.core.strategy import WorkloadEstimate, estimate_ttc
    from repro.cluster.platforms import get_platform

    class Bag(BagOfTasks):
        def task(self, instance):
            kernel = Kernel(name="misc.sleep")
            kernel.arguments = ["--duration=120"]
            return kernel

    workload = WorkloadEstimate(ntasks=256, task_seconds=120.0)
    platform = get_platform("xsede.comet")

    def run() -> list[tuple[int, float, float]]:
        rows = []
        for cores in (72, 144, 264):
            estimate = estimate_ttc(workload, platform, cores,
                                    include_queue_wait=False)
            handle = ResourceHandle("xsede.comet", cores=cores,
                                    walltime=600, mode="sim")
            handle.allocate()
            pattern = Bag(size=256)
            handle.run(pattern)
            handle.deallocate()
            breakdown = breakdown_from_profile(handle.profile, pattern)
            rows.append((cores, estimate["execution"],
                         breakdown.execution_time))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("cores | est_exec_s | sim_exec_s")
    for cores, estimated, simulated in rows:
        print(f"{cores:5d} | {estimated:10.1f} | {simulated:10.1f}")
        assert abs(estimated - simulated) <= 0.2 * simulated
