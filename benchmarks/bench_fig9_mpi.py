"""Fig. 9 — MPI capability at paper scale.

64 concurrent Amber-CoCo simulations of 6 ps on simulated Stampede with
cores per simulation in {1, 16, 32, 64} (total cores up to 4096).
Reproduces: simulation execution time dropping linearly with the
per-simulation core count.
"""

import pytest

from repro.experiments import fig9


def test_fig9_mpi_capability(figure_bench):
    result = figure_bench(
        fig9.run, simulations=64, cores_per_sim=(1, 16, 32, 64)
    )
    sim = result.series["simulation"]
    assert sim.y[0] / sim.y[-1] == pytest.approx(64.0, rel=0.2)
