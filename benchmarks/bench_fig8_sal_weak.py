"""Fig. 8 — SAL weak scaling at paper scale.

Simulations = cores swept 64..4096 on simulated Stampede (0.6 ps each,
serial CoCo analysis).  Reproduces: constant simulation time, analysis
time growing with the simulation count.
"""

from repro.experiments import fig8


def test_fig8_sal_weak_scaling(figure_bench):
    result = figure_bench(
        fig8.run, sim_counts=(64, 128, 256, 512, 1024, 2048, 4096)
    )
    analysis = result.series["analysis"]
    assert analysis.y[-1] > 2.0 * analysis.y[0]
    sim = result.series["simulation"]
    assert max(sim.y) <= 1.1 * min(sim.y)
