"""Benchmark harness configuration.

Every benchmark runs one *paper-scale* figure reproduction exactly once
(``rounds=1``): the interesting output is the figure's rows and claims, not
the harness' own wall time, and the simulated runs are deterministic.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def figure_bench(benchmark, capsys):
    """Run a figure experiment under pytest-benchmark and report it.

    Prints the reproduced rows/series (with ``-s`` or on failure) and
    asserts every claim the paper makes about the figure.
    """

    def run(fn, *args, **kwargs):
        result = benchmark.pedantic(
            fn, args=args, kwargs=kwargs, rounds=1, iterations=1
        )
        with capsys.disabled():
            print()
            print(result.report())
        assert result.all_claims_hold, (
            f"{result.figure}: paper claims not reproduced\n{result.report()}"
        )
        return result

    return run
