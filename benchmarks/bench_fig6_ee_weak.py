"""Fig. 6 — EE weak scaling at paper scale.

Replicas = cores swept 20..2560 on simulated SuperMIC (6 ps per replica).
Reproduces: constant simulation time, exchange time growing with the
replica count.
"""

from repro.experiments import fig6


def test_fig6_ee_weak_scaling(figure_bench):
    result = figure_bench(
        fig6.run, replica_counts=(20, 40, 80, 160, 320, 640, 1280, 2560)
    )
    exchange = result.series["exchange"]
    # The serial exchange grows monotonically over the 128x sweep.
    assert exchange.y[-1] > 2.0 * exchange.y[0]
