"""Fig. 5 — EE strong scaling at paper scale.

2560 Amber temperature-exchange replicas (6 ps each, 1 core/replica) on
simulated SuperMIC, cores swept 20..2560.  Reproduces both curves of the
figure: simulation time (halves per core doubling) and exchange time
(constant).
"""

import pytest

from repro.experiments import fig5


def test_fig5_ee_strong_scaling(figure_bench):
    result = figure_bench(
        fig5.run,
        replicas=2560,
        core_counts=(20, 40, 80, 160, 320, 640, 1280, 2560),
    )
    sim = result.series["simulation"]
    # 128x more cores -> ~128x less simulation wall time.
    assert sim.y[0] / sim.y[-1] == pytest.approx(128.0, rel=0.1)
    exchange = result.series["exchange"]
    assert max(exchange.y) <= 1.1 * min(exchange.y)
