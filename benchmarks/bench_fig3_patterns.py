"""Fig. 3 — pattern characterization at paper scale.

Char-count application under all three patterns on simulated XSEDE Comet,
tasks = cores in {24, 48, 96, 192} (the paper's exact range).  Regenerates
the four subplots' series: per-pattern execution time, EnTK core overhead
and EnTK pattern overhead.
"""

from repro.experiments import fig3


def test_fig3_pattern_characterization(figure_bench):
    result = figure_bench(fig3.run, task_counts=(24, 48, 96, 192))
    # The paper's headline numbers: execution time stays flat while the
    # configuration grows 8x.
    for name in ("pipeline", "sal", "ee"):
        series = result.series[f"exec:{name}"]
        assert max(series.y) <= 1.5 * min(series.y)
