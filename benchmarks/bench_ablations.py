"""Ablation benchmarks (DESIGN.md §4).

Not figures from the paper, but quantitative probes of the design choices
it rests on: the pilot abstraction vs. per-task batch jobs, the agent's
queue policy, and the ∝-tasks overhead law.
"""

from repro.experiments import ablations


def test_ablation_pilot_vs_batch(figure_bench):
    result = figure_bench(
        ablations.pilot_vs_batch, ntasks=64, task_duration=120.0
    )
    ttcs = {row["strategy"]: row["ttc_s"] for row in result.rows}
    assert ttcs["pilot"] < ttcs["per-task batch"]


def test_ablation_scheduler_policy(figure_bench):
    figure_bench(
        ablations.scheduler_policy,
        ntasks=32,
        duration=60.0,
        wide_cores=12,
        cores=24,
    )


def test_ablation_overhead_scaling(figure_bench):
    result = figure_bench(
        ablations.overhead_scaling, task_counts=(16, 64, 256, 1024)
    )
    overheads = [row["pattern_overhead_s"] for row in result.rows]
    assert overheads[-1] > overheads[0]


def test_ablation_fault_resilience(figure_bench):
    result = figure_bench(
        ablations.fault_resilience,
        fault_rates=(0.0, 0.1, 0.2, 0.4),
        ntasks=64,
    )
    assert all(row["completed"] == 64 for row in result.rows)


def test_ablation_heterogeneity(figure_bench):
    result = figure_bench(
        ablations.heterogeneity_utilization,
        cvs=(0.0, 0.5, 1.0, 2.0),
        ntasks=128,
    )
    assert result.notes  # FIFO comparison recorded


def test_ablation_patterns_vs_dag(figure_bench):
    result = figure_bench(ablations.patterns_vs_dag, sizes=(8, 32, 128))
    dag_rows = [r for r in result.rows if r["model"] == "explicit-dag"]
    assert dag_rows[-1]["user_edges"] == 128
