"""The §V scale envelope.

The paper's discussion: "RADICAL-Pilot has been engineered to support up
to 8K tasks on XSEDE Stampede ... O(10,000) tasks are being tested
currently on NSF Blue Waters".  These benchmarks push the reproduction's
runtime through exactly those envelopes and verify it stays linear:
every task completes, core accounting holds, and the toolkit overhead per
task stays flat from 1K to 10K tasks.
"""

import os

from repro.analytics.validation import check_core_accounting
from repro.core.kernel_plugin import Kernel
from repro.core.patterns import BagOfTasks
from repro.core.profiler import breakdown_from_profile
from repro.core.resource_handle import ResourceHandle
from repro.experiments.parallel import run_sweep

#: Worker processes for the multi-point envelope sweep (0 = serial).
#: pytest owns the command line here, so the "--parallel N" switch of
#: the figure CLI arrives as an environment variable.
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))


class SleepBag(BagOfTasks):
    def task(self, instance):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = ["--duration=300"]
        return kernel


def run_at_scale(ntasks: int, resource: str, cores: int):
    handle = ResourceHandle(resource, cores=cores, walltime=12 * 60,
                            mode="sim")
    handle.allocate()
    pattern = SleepBag(size=ntasks)
    handle.run(pattern)
    handle.deallocate()
    breakdown = breakdown_from_profile(handle.profile, pattern)
    return pattern, breakdown


def _envelope_point(point: dict) -> dict:
    """Sweep-runner point: overhead per task at one envelope scale."""
    _, breakdown = run_at_scale(
        point["ntasks"], point["resource"], point["cores"]
    )
    return {
        "ntasks": point["ntasks"],
        "overhead_per_task": breakdown.pattern_overhead / point["ntasks"],
    }


def test_8k_tasks_on_stampede(benchmark):
    """The paper's stated Stampede envelope: 8K concurrent-capable tasks."""

    def run():
        return run_at_scale(8192, "xsede.stampede", cores=4096)

    pattern, breakdown = benchmark.pedantic(run, rounds=1, iterations=1)
    assert breakdown.ntasks == 8192
    assert all(u.state.value == "DONE" for u in pattern.units)
    check_core_accounting(pattern.units, 4096)
    # 8192 tasks on 4096 cores: exactly two waves of 300 s / 0.9
    # (Stampede's modelled core speed).
    assert 660.0 <= breakdown.execution_time <= 680.0


def test_10k_tasks_on_bluewaters(benchmark):
    """The paper's Blue Waters outlook: O(10,000) tasks."""

    def run():
        return run_at_scale(10_000, "ncsa.bluewaters", cores=10_016)

    pattern, breakdown = benchmark.pedantic(run, rounds=1, iterations=1)
    assert breakdown.ntasks == 10_000
    assert all(u.state.value == "DONE" for u in pattern.units)


def test_overhead_per_task_flat_from_1k_to_10k(benchmark):
    """Linearity claim: EnTK overhead per task is scale-invariant."""

    def run():
        points = [
            {"ntasks": ntasks, "resource": "ncsa.bluewaters",
             "cores": 10_016, "seed": 0}
            for ntasks in (1000, 4000, 10_000)
        ]
        records = run_sweep(_envelope_point, points, parallel=PARALLEL)
        return [record["overhead_per_task"] for record in records]

    per_task = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("tasks : overhead/task (ms):",
          [f"{1000 * v:.2f}" for v in per_task])
    assert max(per_task) <= 1.2 * min(per_task)
