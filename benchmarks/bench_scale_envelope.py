"""The §V scale envelope.

The paper's discussion: "RADICAL-Pilot has been engineered to support up
to 8K tasks on XSEDE Stampede ... O(10,000) tasks are being tested
currently on NSF Blue Waters".  These benchmarks push the reproduction's
runtime through exactly those envelopes and verify it stays linear:
every task completes, core accounting holds, and the toolkit overhead per
task stays flat from 1K to 10K tasks.

Beyond the paper's envelope, the *memory* envelope: with the columnar
unit store, batched lifecycle transitions (``bulk_lifecycle=True``) and
a trace spool file, one run sustains 10^6 units in bounded memory.  The
``units_1e6`` case measures exactly that (tracemalloc peak + wall time);
the committed numbers live in ``BENCH_micro.json`` and
``docs/performance.md``.
"""

import os
import time
import tracemalloc

from repro.analytics.validation import check_core_accounting
from repro.core.kernel_plugin import Kernel
from repro.core.patterns import BagOfTasks, EnsembleOfPipelines
from repro.core.profiler import breakdown_from_profile
from repro.core.resource_handle import ResourceHandle
from repro.experiments.parallel import run_sweep
from repro.utils.ids import reset_id_counters

#: Worker processes for the multi-point envelope sweep (0 = serial).
#: pytest owns the command line here, so the "--parallel N" switch of
#: the figure CLI arrives as an environment variable.
PARALLEL = int(os.environ.get("REPRO_BENCH_PARALLEL", "0"))


class SleepBag(BagOfTasks):
    def task(self, instance):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = ["--duration=300"]
        return kernel


def run_at_scale(ntasks: int, resource: str, cores: int):
    handle = ResourceHandle(resource, cores=cores, walltime=12 * 60,
                            mode="sim")
    handle.allocate()
    pattern = SleepBag(size=ntasks)
    handle.run(pattern)
    handle.deallocate()
    breakdown = breakdown_from_profile(handle.profile, pattern)
    return pattern, breakdown


def _envelope_point(point: dict) -> dict:
    """Sweep-runner point: overhead per task at one envelope scale."""
    _, breakdown = run_at_scale(
        point["ntasks"], point["resource"], point["cores"]
    )
    return {
        "ntasks": point["ntasks"],
        "overhead_per_task": breakdown.pattern_overhead / point["ntasks"],
    }


def test_8k_tasks_on_stampede(benchmark):
    """The paper's stated Stampede envelope: 8K concurrent-capable tasks."""

    def run():
        return run_at_scale(8192, "xsede.stampede", cores=4096)

    pattern, breakdown = benchmark.pedantic(run, rounds=1, iterations=1)
    assert breakdown.ntasks == 8192
    assert all(u.state.value == "DONE" for u in pattern.units)
    check_core_accounting(pattern.units, 4096)
    # 8192 tasks on 4096 cores: exactly two waves of 300 s / 0.9
    # (Stampede's modelled core speed).
    assert 660.0 <= breakdown.execution_time <= 680.0


def test_10k_tasks_on_bluewaters(benchmark):
    """The paper's Blue Waters outlook: O(10,000) tasks."""

    def run():
        return run_at_scale(10_000, "ncsa.bluewaters", cores=10_016)

    pattern, breakdown = benchmark.pedantic(run, rounds=1, iterations=1)
    assert breakdown.ntasks == 10_000
    assert all(u.state.value == "DONE" for u in pattern.units)


class TwoStageEoP(EnsembleOfPipelines):
    """The memory-envelope workload: n/2 pipelines of two sleep stages.

    Two stages halve the transient kernel-object spike of the initial
    bulk submission relative to a flat bag of the same unit count, which
    is what a real ensemble looks like.
    """

    def stage_1(self, instance):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = ["--duration=40"]
        return kernel

    def stage_2(self, instance):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = ["--duration=20"]
        return kernel


def run_memory_envelope(n_units: int, *, bulk: bool = False,
                        spool_dir=None, cores: int = 10_016) -> dict:
    """One EoP run of *n_units* under tracemalloc; the envelope point.

    Returns peak resident bytes (the whole run: session, pattern, driver,
    trace), bytes per unit, wall seconds and the virtual TTC — which must
    not depend on ``bulk``/``spool_dir`` (asserted by the tests below).
    """
    reset_id_counters()
    tracemalloc.start()
    t0 = time.perf_counter()
    handle = ResourceHandle(
        "ncsa.bluewaters", cores=cores, walltime=24 * 60, mode="sim",
        bulk_lifecycle=bulk, spool_dir=spool_dir,
    )
    handle.allocate()
    pattern = TwoStageEoP(ensemble_size=n_units // 2, pipeline_size=2)
    try:
        handle.run(pattern)
    finally:
        handle.deallocate()
    wall = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    n_done = sum(u.state.value == "DONE" for u in pattern.units)
    return {
        "n_units": n_units,
        "bulk": bulk,
        "spooled": spool_dir is not None,
        "peak_bytes": peak,
        "bytes_per_unit": round(peak / n_units, 1),
        "wall_s": round(wall, 2),
        "sim_ttc_s": handle.session.now(),
        "n_done": n_done,
    }


def test_memory_envelope_bulk_spool_is_5x_smaller(benchmark, tmp_path):
    """At 10^5 units, bulk+spool must cut peak bytes/unit >= 5x.

    The resident run keeps the classic per-unit trace in memory — the
    pre-columnar behaviour's closest living proxy; the envelope run
    streams its trace and batches its transitions.  Virtual time must be
    identical: the envelope is a representation change, not a semantic
    one.
    """

    def run():
        resident = run_memory_envelope(100_000)
        envelope = run_memory_envelope(
            100_000, bulk=True, spool_dir=tmp_path
        )
        return resident, envelope

    resident, envelope = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("resident:", resident)
    print("envelope:", envelope)
    assert resident["n_done"] == envelope["n_done"] == 100_000
    assert envelope["sim_ttc_s"] == resident["sim_ttc_s"]
    assert resident["peak_bytes"] >= 5 * envelope["peak_bytes"], (
        f"expected >=5x envelope reduction, got "
        f"{resident['peak_bytes'] / envelope['peak_bytes']:.1f}x"
    )


def test_units_1e6(benchmark, tmp_path):
    """The million-unit envelope: one EoP run, 10^6 units, bounded memory."""

    def run():
        return run_memory_envelope(
            1_000_000, bulk=True, spool_dir=tmp_path
        )

    record = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("units_1e6:", record)
    assert record["n_done"] == 1_000_000
    # The envelope promise: well under 2 KB resident per unit, i.e. a
    # million-unit run fits in a 2 GB budget with room to spare.
    assert record["bytes_per_unit"] < 2048


def test_overhead_per_task_flat_from_1k_to_10k(benchmark):
    """Linearity claim: EnTK overhead per task is scale-invariant."""

    def run():
        points = [
            {"ntasks": ntasks, "resource": "ncsa.bluewaters",
             "cores": 10_016, "seed": 0}
            for ntasks in (1000, 4000, 10_000)
        ]
        records = run_sweep(_envelope_point, points, parallel=PARALLEL)
        return [record["overhead_per_task"] for record in records]

    per_task = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print("tasks : overhead/task (ms):",
          [f"{1000 * v:.2f}" for v in per_task])
    assert max(per_task) <= 1.2 * min(per_task)
