"""Property tests of the paper-critical runtime invariants (DESIGN.md §6)."""

from hypothesis import given, settings, strategies as st

from repro.analytics.validation import (
    check_core_accounting,
    check_state_timestamps_monotonic,
    peak_concurrent_cores,
)
from repro.core.kernel_plugin import Kernel
from repro.core.patterns import BagOfTasks
from repro.core.resource_handle import ResourceHandle


class MixedBag(BagOfTasks):
    """Tasks with hypothesis-chosen core widths and durations."""

    def __init__(self, shapes):
        super().__init__(size=len(shapes))
        self.shapes = shapes

    def task(self, instance):
        cores, duration = self.shapes[instance - 1]
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={duration}"]
        kernel.cores = cores
        kernel.uses_mpi = cores > 1
        return kernel


@settings(max_examples=25, deadline=None)
@given(
    shapes=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=8),     # cores
            st.floats(min_value=1.0, max_value=50.0),  # duration
        ),
        min_size=1,
        max_size=20,
    ),
    pilot_cores=st.integers(min_value=8, max_value=24),
    policy=st.sampled_from(["backfill", "fifo"]),
)
def test_property_core_accounting_never_violated(shapes, pilot_cores, policy):
    """For arbitrary mixed workloads and either agent policy: occupied
    cores never exceed the pilot, all tasks finish, timestamps are
    monotonic."""
    handle = ResourceHandle(
        "xsede.comet", cores=pilot_cores, walltime=600, mode="sim",
        agent_policy=policy,
    )
    handle.allocate()
    pattern = MixedBag(shapes)
    handle.run(pattern)
    handle.deallocate()

    assert all(u.state.value == "DONE" for u in pattern.units)
    check_core_accounting(pattern.units, pilot_cores)
    check_state_timestamps_monotonic(pattern.units)


def test_peak_concurrency_reaches_pilot_size():
    """A saturating homogeneous bag drives the pilot to full occupancy."""
    handle = ResourceHandle("xsede.comet", cores=8, walltime=600, mode="sim")
    handle.allocate()

    class Bag(BagOfTasks):
        def task(self, instance):
            kernel = Kernel(name="misc.sleep")
            kernel.arguments = ["--duration=50"]
            return kernel

    pattern = Bag(size=24)
    handle.run(pattern)
    handle.deallocate()
    assert peak_concurrent_cores(pattern.units) == 8


def test_peak_concurrency_empty():
    assert peak_concurrent_cores([]) == 0
