"""Tests for repro.utils.timing."""

import pytest

from repro.utils.timing import VirtualClock, WallClock


def test_wall_clock_monotonic():
    clock = WallClock()
    a = clock.now()
    b = clock.now()
    assert b >= a >= 0.0


def test_wall_clock_sleep_advances():
    clock = WallClock()
    t0 = clock.now()
    clock.sleep(0.02)
    assert clock.now() - t0 >= 0.015


def test_virtual_clock_starts_at_given_time():
    assert VirtualClock().now() == 0.0
    assert VirtualClock(start=5.0).now() == 5.0


def test_virtual_clock_advances_forward():
    clock = VirtualClock()
    clock.advance_to(3.5)
    assert clock.now() == 3.5
    clock.advance_to(3.5)  # equal is fine
    assert clock.now() == 3.5


def test_virtual_clock_rejects_backward():
    clock = VirtualClock(start=10.0)
    with pytest.raises(ValueError, match="backward"):
        clock.advance_to(9.0)


def test_virtual_clock_cannot_sleep():
    with pytest.raises(RuntimeError, match="schedule an event"):
        VirtualClock().sleep(1.0)
