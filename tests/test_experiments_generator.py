"""Tests for the synthetic workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import ConfigurationError
from repro.experiments import ablations
from repro.experiments.generator import (
    SyntheticBag,
    WorkloadSpec,
    generate_durations,
)


class TestGenerateDurations:
    def test_cv_zero_is_constant(self):
        rng = np.random.default_rng(0)
        durations = generate_durations(10, 50.0, 0.0, rng)
        assert np.all(durations == 50.0)

    def test_moments_match_request(self):
        rng = np.random.default_rng(1)
        durations = generate_durations(200_000, 100.0, 1.0, rng)
        assert durations.mean() == pytest.approx(100.0, rel=0.02)
        cv = durations.std() / durations.mean()
        assert cv == pytest.approx(1.0, rel=0.05)

    def test_all_positive(self):
        rng = np.random.default_rng(2)
        durations = generate_durations(10_000, 10.0, 3.0, rng)
        assert (durations > 0).all()

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            generate_durations(0, 1.0, 0.0, rng)
        with pytest.raises(ConfigurationError):
            generate_durations(1, 0.0, 0.0, rng)
        with pytest.raises(ConfigurationError):
            generate_durations(1, 1.0, -0.5, rng)

    @settings(max_examples=25, deadline=None)
    @given(
        mean=st.floats(min_value=0.1, max_value=1e4),
        cv=st.floats(min_value=0.0, max_value=5.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_deterministic_and_positive(self, mean, cv, seed):
        a = generate_durations(50, mean, cv, np.random.default_rng(seed))
        b = generate_durations(50, mean, cv, np.random.default_rng(seed))
        assert np.array_equal(a, b)
        assert (a > 0).all()


class TestWorkloadSpec:
    def test_wide_fraction_realized(self):
        spec = WorkloadSpec(ntasks=100, wide_fraction=0.3, wide_cores=4)
        shapes = spec.realize()
        wide = [cores for cores, _ in shapes if cores == 4]
        assert len(wide) == 30
        assert all(cores in (1, 4) for cores, _ in shapes)

    def test_realize_is_deterministic(self):
        spec = WorkloadSpec(ntasks=20, duration_cv=1.0, seed=5)
        assert spec.realize() == spec.realize()

    def test_total_core_seconds(self):
        spec = WorkloadSpec(ntasks=10, mean_duration=100.0, duration_cv=0.0)
        assert spec.total_core_seconds == pytest.approx(1000.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(ntasks=0)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(ntasks=1, wide_fraction=1.5)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(ntasks=1, wide_cores=1)


class TestSyntheticBag:
    def test_runs_on_sim(self, sim_handle_factory):
        spec = WorkloadSpec(ntasks=12, mean_duration=50.0, duration_cv=1.0,
                            wide_fraction=0.25, wide_cores=4)
        handle = sim_handle_factory(cores=16)
        pattern = SyntheticBag(spec)
        handle.run(pattern)
        assert all(u.state.value == "DONE" for u in pattern.units)
        widths = sorted(u.description.cores for u in pattern.units)
        assert widths.count(4) == 3

    def test_heterogeneity_ablation_small(self):
        result = ablations.heterogeneity_utilization(
            cvs=(0.0, 2.0), ntasks=32, cores=24
        )
        failed = [c for c, ok in result.claims.items() if not ok]
        assert not failed, f"failed: {failed}\n{result.report()}"
