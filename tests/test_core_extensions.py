"""Tests for the paper-§V extensions: retry, adaptive SAL, strategies."""

import itertools

import pytest

from repro.core.kernel_plugin import Kernel, KernelPlugin
from repro.core.kernel_registry import register_kernel
from repro.core.patterns import (
    AdaptDecision,
    AdaptiveSimulationAnalysisLoop,
    BagOfTasks,
)
from repro.core.strategy import (
    MinimizeCostStrategy,
    MinimizeTTCStrategy,
    WorkloadEstimate,
    estimate_ttc,
    select_resource,
)
from repro.cluster.platforms import get_platform
from repro.exceptions import ConfigurationError, PatternError
from repro.pilot.states import UnitState

_FLAKY_COUNTERS = itertools.count()
_FLAKY_STATE: dict[str, int] = {}


class FlakyKernel(KernelPlugin):
    """Fails the first ``--failures`` executions of each ``--key``."""

    name = "test.flaky"
    required_args = ("key", "failures")

    def execute(self, ctx):
        key = ctx.arg("key")
        budget = int(ctx.arg("failures"))
        seen = _FLAKY_STATE.get(key, 0)
        _FLAKY_STATE[key] = seen + 1
        if seen < budget:
            raise RuntimeError(f"transient failure {seen + 1} of {key}")
        return f"ok:{key}"

    def duration(self, cores, platform, args):
        return 1.0


register_kernel(FlakyKernel, replace=True)


class FlakyBag(BagOfTasks):
    def __init__(self, size, failures, retries):
        super().__init__(size=size)
        self.failures = failures
        self.max_task_retries = retries
        self.key_prefix = f"bag{next(_FLAKY_COUNTERS)}"

    def task(self, instance):
        kernel = Kernel(name="test.flaky")
        kernel.arguments = [
            f"--key={self.key_prefix}-{instance}",
            f"--failures={self.failures}",
        ]
        return kernel


class TestRetry:
    def test_transient_failures_are_retried_to_success(self, local_handle):
        pattern = FlakyBag(size=3, failures=1, retries=2)
        local_handle.run(pattern)  # must not raise
        done = [u for u in pattern.units if u.state is UnitState.DONE]
        failed = [u for u in pattern.units if u.state is UnitState.FAILED]
        assert len(done) == 3
        assert len(failed) == 3  # the first attempts
        assert not pattern.failed_units  # failures were absorbed by retries

    def test_retry_budget_exhaustion_raises(self, local_handle):
        pattern = FlakyBag(size=2, failures=3, retries=1)
        with pytest.raises(PatternError, match="failed"):
            local_handle.run(pattern)

    def test_zero_retries_fail_immediately(self, local_handle):
        pattern = FlakyBag(size=1, failures=1, retries=0)
        with pytest.raises(PatternError):
            local_handle.run(pattern)

    def test_retry_units_tagged_with_lineage(self, local_handle):
        pattern = FlakyBag(size=1, failures=1, retries=1)
        local_handle.run(pattern)
        retried = [
            u for u in pattern.units if "__retry_root" in u.description.tags
        ]
        assert len(retried) == 1
        assert retried[0].description.tags["__retry_attempt"] == 1

    def test_retry_events_profiled(self, local_handle):
        pattern = FlakyBag(size=1, failures=1, retries=1)
        local_handle.run(pattern)
        assert len(local_handle.profile.events("entk_task_retry")) == 1


def sleep_kernel():
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = ["--duration=0"]
    return kernel


class TestAdaptiveSAL:
    class Growing(AdaptiveSimulationAnalysisLoop):
        """Doubles the simulation ensemble each iteration."""

        def simulation_stage(self, iteration, instance):
            return sleep_kernel()

        def analysis_stage(self, iteration, instance):
            return sleep_kernel()

        def adapt(self, iteration, analysis_units):
            return AdaptDecision(
                simulation_instances=self.simulation_instances * 2
            )

    class EarlyStop(AdaptiveSimulationAnalysisLoop):
        def simulation_stage(self, iteration, instance):
            return sleep_kernel()

        def analysis_stage(self, iteration, instance):
            return sleep_kernel()

        def adapt(self, iteration, analysis_units):
            return AdaptDecision(proceed=iteration < 2)

    def sims_at(self, pattern, iteration):
        return [
            u for u in pattern.units
            if u.description.tags.get("phase") == "sim"
            and u.description.tags.get("iteration") == iteration
        ]

    @pytest.mark.parametrize("mode", ["local", "sim"])
    def test_ensemble_size_varies_between_iterations(
        self, mode, local_handle, sim_handle_factory
    ):
        handle = local_handle if mode == "local" else sim_handle_factory(cores=16)
        pattern = self.Growing(iterations=3, simulation_instances=2)
        handle.run(pattern)
        assert len(self.sims_at(pattern, 1)) == 2
        assert len(self.sims_at(pattern, 2)) == 4
        assert len(self.sims_at(pattern, 3)) == 8
        assert len(pattern.decisions) == 3

    def test_early_stop_skips_remaining_iterations(self, local_handle):
        pattern = self.EarlyStop(iterations=10, simulation_instances=2)
        local_handle.run(pattern)
        assert self.sims_at(pattern, 2)
        assert not self.sims_at(pattern, 3)

    def test_adapt_hook_sees_analysis_results(self, local_handle):
        seen = []

        class Inspecting(AdaptiveSimulationAnalysisLoop):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def analysis_stage(self, iteration, instance):
                return sleep_kernel()

            def adapt(self, iteration, analysis_units):
                seen.append([u.state for u in analysis_units])
                return AdaptDecision()

        pattern = Inspecting(iterations=2, simulation_instances=2)
        local_handle.run(pattern)
        assert len(seen) == 2
        assert all(s == [UnitState.DONE] for s in seen)

    def test_invalid_decision_rejected(self, local_handle):
        class Broken(AdaptiveSimulationAnalysisLoop):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def analysis_stage(self, iteration, instance):
                return sleep_kernel()

            def adapt(self, iteration, analysis_units):
                return AdaptDecision(simulation_instances=0)

        pattern = Broken(iterations=2, simulation_instances=1)
        with pytest.raises(PatternError):
            local_handle.run(pattern)

    def test_decisions_recorded_in_profile(self, local_handle):
        pattern = self.EarlyStop(iterations=5, simulation_instances=1)
        local_handle.run(pattern)
        events = local_handle.profile.events("entk_adapt_decision")
        assert [e.attrs["proceed"] for e in events] == [True, False]


class TestExecutionStrategy:
    WORKLOAD = WorkloadEstimate(ntasks=256, task_seconds=200.0)

    def test_estimate_ttc_components(self):
        platform = get_platform("xsede.comet")
        estimate = estimate_ttc(self.WORKLOAD, platform, cores=256)
        assert estimate["waves"] == 1.0
        assert estimate["ttc"] > estimate["execution"] > 0
        half = estimate_ttc(self.WORKLOAD, platform, cores=128)
        assert half["waves"] == 2.0
        assert half["execution"] > estimate["execution"]

    def test_pilot_too_small_rejected(self):
        workload = WorkloadEstimate(ntasks=4, task_seconds=10.0, cores_per_task=8)
        with pytest.raises(ConfigurationError):
            estimate_ttc(workload, get_platform("xsede.comet"), cores=4)

    def test_ttc_strategy_prefers_wide_pilots(self):
        plan = MinimizeTTCStrategy().plan(
            self.WORKLOAD, ["xsede.comet"]
        )
        cost_plan = MinimizeCostStrategy().plan(self.WORKLOAD, ["xsede.comet"])
        assert plan.cores >= cost_plan.cores
        assert plan.estimated_ttc <= cost_plan.estimated_ttc
        assert cost_plan.estimated_cost_core_hours <= plan.estimated_cost_core_hours

    def test_strategy_picks_faster_machine(self):
        # Comet's cores are modelled faster than Stampede's and its queue is
        # shorter; for a core-bound workload it must win.
        plan = select_resource(self.WORKLOAD, ["xsede.stampede", "xsede.comet"])
        assert plan.resource == "xsede.comet"

    def test_select_resource_objectives(self):
        ttc_plan = select_resource(self.WORKLOAD, ["xsede.comet"], objective="ttc")
        cost_plan = select_resource(self.WORKLOAD, ["xsede.comet"], objective="cost")
        assert ttc_plan.estimated_ttc <= cost_plan.estimated_ttc
        with pytest.raises(ConfigurationError):
            select_resource(self.WORKLOAD, ["xsede.comet"], objective="karma")

    def test_no_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            MinimizeTTCStrategy().plan(self.WORKLOAD, [])

    def test_workload_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadEstimate(ntasks=0, task_seconds=1.0)
        with pytest.raises(ConfigurationError):
            WorkloadEstimate(ntasks=1, task_seconds=-1.0)

    def test_plan_respects_machine_size(self):
        tiny = ["local.localhost"]
        plan = MinimizeTTCStrategy().plan(
            WorkloadEstimate(ntasks=1000, task_seconds=1.0), tiny
        )
        assert plan.cores <= get_platform("local.localhost").total_cores

    def test_estimated_plan_matches_simulated_run(self, sim_handle_factory):
        """The strategy's estimate agrees with an actual simulated run."""
        from repro.core.profiler import breakdown_from_profile

        class Bag(BagOfTasks):
            def task(self, instance):
                kernel = Kernel(name="misc.sleep")
                kernel.arguments = ["--duration=200"]
                return kernel

        workload = WorkloadEstimate(ntasks=64, task_seconds=200.0)
        platform = get_platform("xsede.comet")
        estimate = estimate_ttc(
            workload, platform, cores=72, include_queue_wait=False
        )
        handle = sim_handle_factory(cores=72)
        pattern = Bag(size=64)
        handle.run(pattern)
        breakdown = breakdown_from_profile(handle.profile, pattern)
        assert breakdown.execution_time == pytest.approx(
            estimate["execution"], rel=0.15
        )
