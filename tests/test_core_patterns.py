"""Tests for pattern classes (parametrization, validation, hooks)."""

import pytest

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import (
    BagOfTasks,
    EnsembleExchange,
    EnsembleOfPipelines,
    PatternSequence,
    SimulationAnalysisLoop,
)
from repro.exceptions import PatternError


def sleep_kernel() -> Kernel:
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = ["--duration=0"]
    return kernel


class TestEnsembleOfPipelines:
    def test_stage_dispatch_to_methods(self):
        class App(EnsembleOfPipelines):
            def stage_1(self, instance):
                return sleep_kernel()

        app = App(ensemble_size=2, pipeline_size=1)
        app.validate()
        assert isinstance(app.get_stage(1, 1), Kernel)

    def test_missing_stage_method_caught_by_validate(self):
        class App(EnsembleOfPipelines):
            def stage_1(self, instance):
                return sleep_kernel()

        app = App(ensemble_size=2, pipeline_size=2)  # stage_2 missing
        with pytest.raises(PatternError, match="stage_2"):
            app.validate()

    def test_generic_stage_override(self):
        class App(EnsembleOfPipelines):
            def stage(self, stage_number, instance):
                return sleep_kernel()

        app = App(ensemble_size=1, pipeline_size=3)
        app.validate()
        assert isinstance(app.get_stage(3, 1), Kernel)

    def test_out_of_range_rejected(self):
        class App(EnsembleOfPipelines):
            def stage_1(self, instance):
                return sleep_kernel()

        app = App(ensemble_size=2, pipeline_size=1)
        with pytest.raises(PatternError):
            app.get_stage(2, 1)
        with pytest.raises(PatternError):
            app.get_stage(1, 3)
        with pytest.raises(PatternError):
            app.get_stage(0, 1)

    def test_non_kernel_return_rejected(self):
        class App(EnsembleOfPipelines):
            def stage_1(self, instance):
                return "not a kernel"

        app = App(ensemble_size=1, pipeline_size=1)
        with pytest.raises(PatternError, match="must return a Kernel"):
            app.get_stage(1, 1)

    @pytest.mark.parametrize("size,stages", [(0, 1), (1, 0), (-3, 2)])
    def test_positive_parameters_required(self, size, stages):
        class App(EnsembleOfPipelines):
            def stage_1(self, instance):
                return sleep_kernel()

        with pytest.raises(PatternError):
            App(ensemble_size=size, pipeline_size=stages)

    def test_bool_is_not_a_valid_size(self):
        class App(EnsembleOfPipelines):
            def stage_1(self, instance):
                return sleep_kernel()

        with pytest.raises(PatternError):
            App(ensemble_size=True, pipeline_size=1)


class TestBagOfTasks:
    def test_task_hook_required(self):
        bag = BagOfTasks(size=3)
        with pytest.raises(PatternError, match="task"):
            bag.validate()

    def test_stage_routes_to_task(self):
        class Bag(BagOfTasks):
            def task(self, instance):
                return sleep_kernel()

        bag = Bag(size=3)
        bag.validate()
        assert isinstance(bag.get_stage(1, 2), Kernel)
        assert bag.pipeline_size == 1


class TestSimulationAnalysisLoop:
    def make(self, **kwargs):
        class App(SimulationAnalysisLoop):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def analysis_stage(self, iteration, instance):
                return sleep_kernel()

        defaults = dict(iterations=2, simulation_instances=4, analysis_instances=1)
        defaults.update(kwargs)
        return App(**defaults)

    def test_valid_pattern(self):
        app = self.make()
        app.validate()
        assert isinstance(app.get_simulation(1, 1), Kernel)
        assert isinstance(app.get_analysis(2, 1), Kernel)

    def test_hooks_required(self):
        class NoSim(SimulationAnalysisLoop):
            def analysis_stage(self, iteration, instance):
                return sleep_kernel()

        with pytest.raises(PatternError, match="simulation_stage"):
            NoSim(iterations=1, simulation_instances=1).validate()

        class NoAna(SimulationAnalysisLoop):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

        with pytest.raises(PatternError, match="analysis_stage"):
            NoAna(iterations=1, simulation_instances=1).validate()

    def test_default_pre_post_loop_are_none(self):
        app = self.make()
        assert app.pre_loop() is None
        assert app.post_loop() is None


class TestEnsembleExchange:
    def make(self, **kwargs):
        class App(EnsembleExchange):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def exchange_stage(self, iteration, instances):
                return sleep_kernel()

        defaults = dict(ensemble_size=4, iterations=1)
        defaults.update(kwargs)
        return App(**defaults)

    def test_valid_pattern(self):
        app = self.make()
        app.validate()
        assert isinstance(app.get_simulation(1, 1), Kernel)
        assert isinstance(app.get_exchange(1, (1, 2)), Kernel)

    def test_exchange_mode_validated(self):
        with pytest.raises(PatternError, match="exchange_mode"):
            self.make(exchange_mode="ring")

    def test_default_pairing_is_neighbours(self):
        app = self.make(ensemble_size=6)
        assert app.select_pairs([1, 2, 3, 4]) == [(1, 2), (3, 4)]
        # Gaps break pairs: 2 and 4 are not ladder neighbours.
        assert app.select_pairs([2, 4]) == []
        assert app.select_pairs([3]) == []
        assert app.select_pairs([4, 3]) == [(3, 4)]

    def test_hooks_required(self):
        class NoExchange(EnsembleExchange):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

        with pytest.raises(PatternError, match="exchange_stage"):
            NoExchange(ensemble_size=2).validate()


class TestPatternSequence:
    def test_requires_patterns(self):
        with pytest.raises(PatternError):
            PatternSequence([])
        with pytest.raises(PatternError):
            PatternSequence(["not a pattern"])

    def test_no_nesting(self):
        class Bag(BagOfTasks):
            def task(self, instance):
                return sleep_kernel()

        inner = PatternSequence([Bag(size=1)])
        with pytest.raises(PatternError, match="nest"):
            PatternSequence([inner])

    def test_validate_cascades(self):
        bad = BagOfTasks(size=1)  # no task() defined
        seq = PatternSequence([bad])
        with pytest.raises(PatternError):
            seq.validate()


def test_pattern_single_use():
    class Bag(BagOfTasks):
        def task(self, instance):
            return sleep_kernel()

    bag = Bag(size=1)
    bag.executed = True
    with pytest.raises(PatternError, match="already executed"):
        bag.validate()
