"""Tests for profiler, session store, session, launch methods and staging."""

from pathlib import Path

import pytest

from repro.cluster.platforms import get_platform
from repro.exceptions import ConfigurationError, LaunchError, StagingError
from repro.pilot.agent.launch_method import ForkLaunch, MPIExecLaunch, get_launch_method
from repro.pilot.agent.staging import LocalStager, resolve_placeholders
from repro.pilot.db import SessionStore
from repro.pilot.description import ComputeUnitDescription, StagingDirective
from repro.pilot.profiler import Profiler
from repro.pilot.session import Session
from repro.pilot.unit import ComputeUnit


class TestProfiler:
    def make(self):
        clock = iter(range(100))
        return Profiler(lambda: float(next(clock)))

    def test_events_recorded_in_order(self):
        prof = self.make()
        prof.event("a", "x")
        prof.event("b", "x")
        names = [e.name for e in prof]
        assert names == ["a", "b"]
        assert len(prof) == 2

    def test_filtering_by_name_and_uid(self):
        prof = self.make()
        prof.event("state", "u1", state="NEW")
        prof.event("state", "u2", state="NEW")
        prof.event("other", "u1")
        assert len(prof.events("state")) == 2
        assert len(prof.events("state", "u1")) == 1
        assert len(prof.events(uid="u1")) == 2

    def test_first_last_span(self):
        prof = self.make()
        prof.event("start", "x")  # t=0
        prof.event("noise", "x")  # t=1
        prof.event("stop", "x")   # t=2
        assert prof.first("start").time == 0.0
        assert prof.last("stop").time == 2.0
        assert prof.span("start", "stop") == 2.0
        assert prof.span("start", "missing") is None

    def test_attrs_stored(self):
        prof = self.make()
        event = prof.event("x", "u", n=42)
        assert event.attrs == {"n": 42}


class TestSessionStore:
    def test_insert_get(self):
        store = SessionStore()
        store.insert("units", "u1", {"state": "NEW"})
        doc = store.get("units", "u1")
        assert doc["state"] == "NEW"
        assert doc["_id"] == "u1"

    def test_duplicate_insert_rejected(self):
        store = SessionStore()
        store.insert("units", "u1", {})
        with pytest.raises(KeyError):
            store.insert("units", "u1", {})

    def test_update_and_find(self):
        store = SessionStore()
        store.insert("units", "u1", {"state": "NEW", "pilot": "p1"})
        store.insert("units", "u2", {"state": "DONE", "pilot": "p1"})
        store.update("units", "u1", {"state": "DONE"})
        done = store.find("units", state="DONE")
        assert {d["_id"] for d in done} == {"u1", "u2"}
        assert store.find("units", state="NEW") == []

    def test_update_missing_raises(self):
        with pytest.raises(KeyError):
            SessionStore().update("units", "ghost", {})

    def test_documents_are_copies(self):
        store = SessionStore()
        original = {"nested": {"a": 1}}
        store.insert("c", "x", original)
        fetched = store.get("c", "x")
        fetched["nested"]["a"] = 99
        assert store.get("c", "x")["nested"]["a"] == 1

    def test_count_and_collections(self):
        store = SessionStore()
        store.insert("a", "1", {})
        store.insert("b", "2", {})
        assert store.count("a") == 1
        assert store.count("ghost") == 0
        assert store.collections() == ["a", "b"]


class TestSession:
    def test_local_session_has_sandbox(self):
        session = Session(mode="local")
        assert session.sandbox is not None and session.sandbox.exists()
        sandbox = session.sandbox
        session.close()
        assert not sandbox.exists()  # owned temp dir removed

    def test_explicit_sandbox_not_removed(self, tmp_path):
        sandbox = tmp_path / "keep"
        session = Session(mode="local", sandbox=sandbox)
        session.close()
        assert sandbox.exists()

    def test_sim_session_uses_virtual_clock(self):
        session = Session(mode="sim", platform="xsede.comet")
        assert session.now() == 0.0
        session.sim.schedule(5.0, lambda: None)
        session.run_events()
        assert session.now() == 5.0
        session.close()

    def test_local_session_has_no_simulator(self):
        session = Session(mode="local")
        with pytest.raises(ConfigurationError):
            _ = session.sim
        session.close()

    def test_invalid_mode(self):
        with pytest.raises(ConfigurationError):
            Session(mode="quantum")

    def test_context_manager_and_idempotent_close(self):
        with Session(mode="local") as session:
            pass
        assert session.closed
        session.close()  # second close is a no-op


class TestLaunchMethods:
    def test_fork_for_serial(self):
        description = ComputeUnitDescription(executable="x")
        assert isinstance(get_launch_method(description), ForkLaunch)

    def test_mpi_for_multicore(self):
        description = ComputeUnitDescription(executable="x", cores=4, mpi=True)
        assert isinstance(get_launch_method(description), MPIExecLaunch)

    def test_fork_rejects_multicore(self):
        with pytest.raises(LaunchError):
            ForkLaunch().validate(
                ComputeUnitDescription(executable="x", cores=2, mpi=True)
            )

    def test_mpi_overhead_grows_with_ranks(self):
        platform = get_platform("xsede.stampede")
        method = MPIExecLaunch()
        assert method.launch_overhead(64, platform) > method.launch_overhead(
            2, platform
        )

    def test_command_lines(self):
        description = ComputeUnitDescription(
            executable="pmemd", arguments=["-i", "in"], cores=8, mpi=True
        )
        assert get_launch_method(description).command_line(description) == (
            "mpirun -np 8 pmemd -i in"
        )


class TestStaging:
    def test_placeholder_resolution(self):
        pilot_sandbox = Path("/p")
        unit_sandboxes = {"unit.1": Path("/p/unit.1")}
        assert resolve_placeholders("$SHARED/f", pilot_sandbox, unit_sandboxes) == Path("/p/f")
        assert resolve_placeholders("$PILOT_SANDBOX/g", pilot_sandbox, unit_sandboxes) == Path("/p/g")
        assert resolve_placeholders("$UNIT_unit.1/out.txt", pilot_sandbox, unit_sandboxes) == Path("/p/unit.1/out.txt")
        assert resolve_placeholders("/abs/path", pilot_sandbox, unit_sandboxes) == Path("/abs/path")

    def test_unknown_unit_placeholder_raises(self):
        with pytest.raises(StagingError):
            resolve_placeholders("$UNIT_ghost/x", Path("/p"), {})

    def make_stager_and_unit(self, tmp_path):
        session = Session(mode="local", sandbox=tmp_path)
        stager = LocalStager(tmp_path)
        unit = ComputeUnit(ComputeUnitDescription(executable="x"), session)
        stager.register_unit(unit)
        return session, stager, unit

    def test_register_creates_sandbox(self, tmp_path):
        session, stager, unit = self.make_stager_and_unit(tmp_path)
        assert Path(unit.sandbox).is_dir()
        session.close()

    def test_link_and_copy_directives(self, tmp_path):
        session, stager, unit = self.make_stager_and_unit(tmp_path)
        (tmp_path / "shared.txt").write_text("shared-data")
        unit.description.input_staging.extend(
            [
                StagingDirective(source="$SHARED/shared.txt", target="linked.txt",
                                 action="link"),
                StagingDirective(source="$SHARED/shared.txt", target="copied.txt",
                                 action="copy"),
            ]
        )
        done = []
        stager.stage_in(unit, lambda: done.append(True))
        assert done == [True]
        sandbox = Path(unit.sandbox)
        assert (sandbox / "linked.txt").is_symlink()
        assert (sandbox / "copied.txt").read_text() == "shared-data"
        session.close()

    def test_stage_out_to_shared(self, tmp_path):
        session, stager, unit = self.make_stager_and_unit(tmp_path)
        Path(unit.sandbox, "result.txt").write_text("out")
        unit.description.output_staging.append(
            StagingDirective(source="result.txt", target="$SHARED/collected.txt")
        )
        stager.stage_out(unit, lambda: None)
        assert (tmp_path / "collected.txt").read_text() == "out"
        session.close()

    def test_missing_source_raises(self, tmp_path):
        session, stager, unit = self.make_stager_and_unit(tmp_path)
        unit.description.input_staging.append(
            StagingDirective(source="$SHARED/ghost.txt", target="x")
        )
        with pytest.raises(StagingError, match="does not exist"):
            stager.stage_in(unit, lambda: None)
        session.close()
