"""Tests for free-energy estimation, incl. Boltzmann validation of MD."""

import numpy as np
import pytest

from repro.md.analysis.free_energy import (
    boltzmann_weights,
    free_energy_profile,
)
from repro.md.engine import MDEngine
from repro.md.potentials import DoubleWell2D, Harmonic
from repro.md.system import MDSystem, alanine_dipeptide_surface


class TestBoltzmannWeights:
    def test_normalized(self):
        weights = boltzmann_weights(np.array([0.0, 1.0, 2.0]), 1.0)
        assert weights.sum() == pytest.approx(1.0)

    def test_lower_energy_heavier(self):
        weights = boltzmann_weights(np.array([0.0, 1.0]), 1.0)
        assert weights[0] > weights[1]
        assert weights[0] / weights[1] == pytest.approx(np.e)

    def test_high_temperature_flattens(self):
        energies = np.array([0.0, 5.0])
        cold = boltzmann_weights(energies, 0.5)
        hot = boltzmann_weights(energies, 50.0)
        assert hot[1] > cold[1]

    def test_overflow_safe(self):
        weights = boltzmann_weights(np.array([-1e6, -1e6 + 1]), 1.0)
        assert np.isfinite(weights).all()

    def test_temperature_validation(self):
        with pytest.raises(ValueError):
            boltzmann_weights(np.zeros(3), 0.0)


class TestProfileEstimator:
    def test_input_validation(self):
        with pytest.raises(ValueError):
            free_energy_profile(np.zeros((5, 2)), 1.0)
        with pytest.raises(ValueError):
            free_energy_profile(np.zeros((100, 2)), -1.0)

    def test_minimum_is_zero(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(5000, 2))
        profile = free_energy_profile(samples, temperature=1.0)
        finite = profile.values[np.isfinite(profile.values)]
        assert finite.min() == pytest.approx(0.0)

    def test_gaussian_samples_give_quadratic_profile(self):
        """Samples from exp(-k x^2 / 2T) must recover F = k x^2 / 2."""
        k, temperature = 2.0, 1.0
        rng = np.random.default_rng(1)
        x = rng.normal(scale=np.sqrt(temperature / k), size=(200_000, 1))
        profile = free_energy_profile(x, temperature, bins=21,
                                      bounds=(-2.0, 2.0))
        for target in (-1.0, -0.5, 0.5, 1.0):
            expected = 0.5 * k * target**2
            assert profile.value_at(target) == pytest.approx(expected, abs=0.15)

    def test_value_at_interpolates(self):
        rng = np.random.default_rng(2)
        samples = rng.normal(size=(10_000, 1))
        profile = free_energy_profile(samples, 1.0)
        assert np.isfinite(profile.value_at(0.0))

    def test_barrier_estimate_double_well(self):
        rng = np.random.default_rng(3)
        # Two equal Gaussians at +-1: barrier ~ depth of the gap.
        samples = np.concatenate(
            [rng.normal(-1.0, 0.25, 50_000), rng.normal(1.0, 0.25, 50_000)]
        )[:, None]
        profile = free_energy_profile(samples, 1.0, bins=41, bounds=(-2, 2))
        assert 1.0 < profile.barrier_estimate < 10.0

    def test_single_basin_has_no_barrier(self):
        rng = np.random.default_rng(4)
        samples = rng.normal(size=(50_000, 1))
        profile = free_energy_profile(samples, 1.0, bins=31)
        assert profile.barrier_estimate == float("inf")


class TestMDSamplingIsBoltzmann:
    """The deepest end-to-end science check: long Langevin trajectories on
    a known potential reproduce its free-energy surface."""

    def test_harmonic_free_energy_matches_potential(self):
        system = MDSystem(
            name="harmonic", potential=Harmonic(k=2.0),
            x0=np.zeros(2), dt=0.05, friction=1.0, reference_temperature=1.0,
        )
        engine = MDEngine(system, seed=0)
        trajectory = engine.run(nsteps=300_000, stride=10, temperature=1.0)
        profile = free_energy_profile(
            trajectory.positions, temperature=1.0, bins=15, bounds=(-1.2, 1.2)
        )
        for target in (-0.8, 0.0, 0.8):
            expected = 0.5 * 2.0 * target**2
            assert profile.value_at(target) == pytest.approx(expected, abs=0.25)

    def test_double_well_barrier_recovered_at_high_temperature(self):
        system = alanine_dipeptide_surface(barrier=2.0)
        engine = MDEngine(system, seed=1)
        # Hot enough to cross often; the sampled barrier must approximate
        # the potential's barrier height.
        trajectory = engine.run(nsteps=400_000, stride=10, temperature=2.0)
        x = trajectory.positions[:, 0]
        assert (x > 0.5).any() and (x < -0.5).any(), "no crossings sampled"
        profile = free_energy_profile(
            trajectory.positions, temperature=2.0, bins=31,
            bounds=(-1.6, 1.6),
        )
        barrier = profile.barrier_estimate
        assert barrier == pytest.approx(2.0, rel=0.4)
