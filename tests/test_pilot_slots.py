"""Tests for agent core-slot scheduling, incl. the no-double-booking property."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SchedulingError
from repro.pilot.agent.slots import (
    ContiguousSlotScheduler,
    ScatteredSlotScheduler,
    make_slot_scheduler,
)


@pytest.mark.parametrize("cls", [ContiguousSlotScheduler, ScatteredSlotScheduler])
class TestCommonBehaviour:
    def test_alloc_returns_distinct_slots(self, cls):
        sched = cls(8)
        slots = sched.alloc(4)
        assert len(slots) == len(set(slots)) == 4
        assert all(0 <= s < 8 for s in slots)
        assert sched.free_cores == 4

    def test_alloc_all_then_none(self, cls):
        sched = cls(4)
        assert sched.alloc(4) is not None
        assert sched.alloc(1) is None

    def test_dealloc_restores_capacity(self, cls):
        sched = cls(4)
        slots = sched.alloc(3)
        sched.dealloc(slots)
        assert sched.free_cores == 4
        assert sched.alloc(4) is not None

    def test_oversized_request_raises(self, cls):
        sched = cls(4)
        with pytest.raises(SchedulingError, match="pilot holds"):
            sched.alloc(5)

    def test_nonpositive_request_raises(self, cls):
        with pytest.raises(SchedulingError):
            cls(4).alloc(0)

    def test_double_free_raises(self, cls):
        sched = cls(4)
        slots = sched.alloc(2)
        sched.dealloc(slots)
        with pytest.raises(SchedulingError, match="freed twice"):
            sched.dealloc(slots)

    def test_used_cores_accounting(self, cls):
        sched = cls(8)
        sched.alloc(3)
        assert sched.used_cores == 3
        assert sched.free_cores == 5


class TestContiguous:
    def test_allocations_are_contiguous(self):
        sched = ContiguousSlotScheduler(8)
        slots = sched.alloc(4)
        assert slots == list(range(slots[0], slots[0] + 4))

    def test_fragmentation_can_refuse(self):
        sched = ContiguousSlotScheduler(8)
        a = sched.alloc(3)  # 0,1,2
        b = sched.alloc(3)  # 3,4,5
        sched.dealloc(a)    # free: 0,1,2,6,7
        assert sched.free_cores == 5
        # 4 contiguous cores do not exist although 5 are free.
        assert sched.alloc(4) is None
        assert sched.alloc(3) == [0, 1, 2]
        sched.dealloc(b)

    def test_first_fit_prefers_lowest_block(self):
        sched = ContiguousSlotScheduler(8)
        a = sched.alloc(2)
        sched.alloc(2)
        sched.dealloc(a)
        assert sched.alloc(2) == [0, 1]


class TestScattered:
    def test_never_fragments(self):
        sched = ScatteredSlotScheduler(8)
        a = sched.alloc(3)
        sched.alloc(3)
        sched.dealloc(a)
        # 5 free (scattered) -> a 4-core request succeeds regardless.
        assert sched.alloc(4) is not None

    def test_picks_lowest_numbered(self):
        sched = ScatteredSlotScheduler(8)
        assert sched.alloc(3) == [0, 1, 2]


def test_factory():
    assert isinstance(make_slot_scheduler("contiguous", 4), ContiguousSlotScheduler)
    assert isinstance(make_slot_scheduler("scattered", 4), ScatteredSlotScheduler)
    with pytest.raises(SchedulingError):
        make_slot_scheduler("random", 4)
    with pytest.raises(SchedulingError):
        make_slot_scheduler("scattered", 0)


@settings(max_examples=60, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.booleans(), st.integers(min_value=1, max_value=8)),
        max_size=80,
    ),
    kind=st.sampled_from(["contiguous", "scattered"]),
)
def test_property_no_double_booking(ops, kind):
    """Random alloc/dealloc traffic never double-books or leaks slots."""
    sched = make_slot_scheduler(kind, 8)
    held: list[list[int]] = []
    for is_alloc, n in ops:
        if is_alloc:
            slots = sched.alloc(n) if n <= 8 else None
            if slots is not None:
                held.append(slots)
        elif held:
            sched.dealloc(held.pop())
        # Invariant: the slots held by live allocations are disjoint and
        # the accounting matches.
        flat = [s for slots in held for s in slots]
        assert len(flat) == len(set(flat))
        assert sched.used_cores == len(flat)
        assert sched.free_cores == 8 - len(flat)
    for slots in held:
        sched.dealloc(slots)
    assert sched.free_cores == 8
