"""Tests for analytics: tables, series shape checks, metrics."""

import pytest

from repro.analytics.metrics import (
    group_units,
    parallel_efficiency,
    phase_execution_time,
    phase_total_time,
    speedup,
    utilization,
)
from repro.analytics.tables import Series, format_table
from repro.core.kernel_plugin import Kernel
from repro.core.patterns import BagOfTasks


class TestFormatTable:
    def test_dict_rows(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123}])
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "a"
        assert "10" in lines[3]
        assert "0.12" in lines[3]

    def test_sequence_rows_need_headers(self):
        with pytest.raises(ValueError):
            format_table([[1, 2]])
        text = format_table([[1, 2]], headers=["x", "y"])
        assert "x" in text and "y" in text

    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_title_and_precision(self):
        text = format_table([{"v": 1.23456}], precision=4, title="T")
        assert text.startswith("T\n")
        assert "1.2346" in text


class TestSeries:
    def test_constant_detection(self):
        flat = Series("s", x=[1, 2, 4], y=[10.0, 10.5, 9.8])
        assert flat.is_constant(tolerance=0.1)
        steep = Series("s", x=[1, 2, 4], y=[10.0, 20.0, 40.0])
        assert not steep.is_constant(tolerance=0.1)

    def test_monotonicity(self):
        up = Series("s", x=[1, 2, 3], y=[1.0, 2.0, 3.0])
        assert up.is_increasing() and not up.is_decreasing()
        down = Series("s", x=[1, 2, 3], y=[3.0, 2.0, 1.0])
        assert down.is_decreasing() and not down.is_increasing()

    def test_halves_per_doubling(self):
        ideal = Series("s", x=[1, 2, 4, 8], y=[80.0, 40.0, 20.0, 10.0])
        assert ideal.halves_per_doubling()
        sublinear = Series("s", x=[1, 2, 4, 8], y=[80.0, 60.0, 50.0, 45.0])
        assert not sublinear.halves_per_doubling()

    def test_grows_linearly(self):
        linear = Series("s", x=[1, 2, 4, 8], y=[3.0, 5.0, 9.0, 17.0])  # 1+2x
        assert linear.grows_linearly()
        flat = Series("s", x=[1, 2, 4, 8], y=[3.0, 3.0, 3.0, 3.0])
        assert not flat.grows_linearly()

    def test_append_and_len(self):
        series = Series("s")
        series.append(1, 2.0)
        assert len(series) == 1
        assert series.as_rows() == [{"x": 1.0, "seconds": 2.0}]

    def test_empty_series_edge_cases(self):
        empty = Series("s")
        assert empty.is_constant()
        assert empty.halves_per_doubling()


class TestMetrics:
    def run_bag(self, sim_handle_factory, n=4, duration=10.0, cores=48):
        class Bag(BagOfTasks):
            def task(self, instance):
                kernel = Kernel(name="misc.sleep")
                kernel.arguments = [f"--duration={duration}"]
                return kernel

        handle = sim_handle_factory(cores=cores)
        pattern = Bag(size=n)
        handle.run(pattern)
        return pattern, handle

    def test_phase_execution_time_concurrent(self, sim_handle_factory):
        pattern, _ = self.run_bag(sim_handle_factory, n=4, duration=10.0)
        # All concurrent -> union ~ 10 s; total ~ 40 s.
        assert phase_execution_time(pattern.units) == pytest.approx(10.0, rel=0.05)
        assert phase_total_time(pattern.units) == pytest.approx(40.0, rel=0.05)

    def test_phase_execution_time_waves(self, sim_handle_factory):
        pattern, _ = self.run_bag(sim_handle_factory, n=8, duration=10.0, cores=4)
        # 8 tasks on 4 cores -> two waves -> ~20 s wall.
        assert phase_execution_time(pattern.units) == pytest.approx(20.0, rel=0.1)

    def test_group_units_by_tag_and_function(self, sim_handle_factory):
        pattern, _ = self.run_bag(sim_handle_factory)
        by_stage = group_units(pattern.units, "stage")
        assert set(by_stage) == {1}
        by_name = group_units(pattern.units, lambda u: u.description.name)
        assert set(by_name) == {"misc.sleep"}

    def test_utilization(self, sim_handle_factory):
        pattern, _ = self.run_bag(sim_handle_factory, n=4, duration=10.0, cores=4)
        span = phase_execution_time(pattern.units)
        value = utilization(pattern.units, total_cores=4, span=span)
        assert value == pytest.approx(1.0, rel=0.05)
        with pytest.raises(ValueError):
            utilization(pattern.units, total_cores=0, span=1.0)

    def test_speedup_and_efficiency(self):
        assert speedup(100.0, 25.0) == 4.0
        assert parallel_efficiency(100.0, 25.0, scale=4) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)
        with pytest.raises(ValueError):
            parallel_efficiency(10.0, 1.0, scale=0)
