"""Tests for pattern composition: sequences and concurrency."""

import pytest

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import (
    BagOfTasks,
    ConcurrentPatterns,
    PatternSequence,
    SimulationAnalysisLoop,
)
from repro.exceptions import PatternError
from repro.pilot.states import UnitState


def sleep_kernel(duration=0.0):
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = [f"--duration={duration}"]
    return kernel


class Bag(BagOfTasks):
    def __init__(self, size, duration=0.0):
        super().__init__(size=size)
        self.duration = duration

    def task(self, instance):
        return sleep_kernel(self.duration)


class SAL(SimulationAnalysisLoop):
    def __init__(self, duration=0.0):
        super().__init__(iterations=2, simulation_instances=2)
        self.duration = duration

    def simulation_stage(self, iteration, instance):
        return sleep_kernel(self.duration)

    def analysis_stage(self, iteration, instance):
        return sleep_kernel(self.duration)


class TestConcurrentValidation:
    def test_needs_patterns(self):
        with pytest.raises(PatternError):
            ConcurrentPatterns([])

    def test_nesting_rules(self):
        with pytest.raises(PatternError, match="nest"):
            ConcurrentPatterns([PatternSequence([Bag(1)])])
        with pytest.raises(PatternError, match="nest"):
            ConcurrentPatterns([ConcurrentPatterns([Bag(1)])])
        with pytest.raises(PatternError, match="nest"):
            PatternSequence([PatternSequence([Bag(1)])])
        # The canonical campaign shape IS allowed: a sequence step may be
        # a concurrent group.
        PatternSequence([Bag(1), ConcurrentPatterns([Bag(1), Bag(2)])])

    def test_sequence_with_concurrent_step_runs(self, local_handle):
        setup = Bag(size=2)
        concurrent = ConcurrentPatterns([Bag(size=2), Bag(size=3)])
        campaign = PatternSequence([setup, concurrent])
        local_handle.run(campaign)
        assert campaign.executed
        assert len(campaign.units) == 2 + 5
        setup_end = max(
            u.timestamps["AGENT_STAGING_OUTPUT"] for u in setup.units
        )
        concurrent_start = min(
            u.timestamps["EXECUTING"] for u in concurrent.units
        )
        assert concurrent_start >= setup_end


class TestConcurrentExecution:
    @pytest.mark.parametrize("mode", ["local", "sim"])
    def test_all_constituents_complete(self, mode, local_handle,
                                       sim_handle_factory):
        handle = local_handle if mode == "local" else sim_handle_factory()
        bag, sal = Bag(size=3), SAL()
        composite = ConcurrentPatterns([bag, sal])
        handle.run(composite)
        assert composite.executed
        assert bag.executed and sal.executed
        # bag: 3 tasks; SAL: 2 iterations x (2 sims + 1 analysis) = 6.
        assert len(composite.units) == 3 + 2 * (2 + 1)
        assert all(u.state is UnitState.DONE for u in composite.units)

    def test_constituents_really_interleave(self, sim_handle_factory):
        """Two bags with long tasks share the pilot concurrently: total
        time is one wave, not the sum of the two patterns' times."""
        handle = sim_handle_factory(cores=8)
        a, b = Bag(size=4, duration=100.0), Bag(size=4, duration=100.0)
        composite = ConcurrentPatterns([a, b])
        handle.run(composite)
        starts = [u.timestamps["EXECUTING"] for u in composite.units]
        stops = [u.timestamps["AGENT_STAGING_OUTPUT"] for u in composite.units]
        # All 8 tasks (4+4) fit the 8-core pilot at once -> single wave.
        assert max(stops) - min(starts) < 150.0

    def test_sal_barriers_hold_within_concurrency(self, sim_handle_factory):
        """A SAL's internal barrier is not broken by a concurrent bag."""
        handle = sim_handle_factory(cores=16)
        sal = SAL(duration=50.0)
        bag = Bag(size=8, duration=10.0)
        composite = ConcurrentPatterns([sal, bag])
        handle.run(composite)
        for iteration in (1, 2):
            sims = [
                u for u in sal.units
                if u.description.tags.get("phase") == "sim"
                and u.description.tags.get("iteration") == iteration
            ]
            anas = [
                u for u in sal.units
                if u.description.tags.get("phase") == "ana"
                and u.description.tags.get("iteration") == iteration
            ]
            last_sim = max(u.timestamps["AGENT_STAGING_OUTPUT"] for u in sims)
            first_ana = min(u.timestamps["EXECUTING"] for u in anas)
            assert first_ana >= last_sim

    def test_failure_in_one_constituent_reported(self, local_handle):
        class Failing(BagOfTasks):
            def task(self, instance):
                kernel = Kernel(name="misc.ccount")
                kernel.arguments = ["--inputfile=no.txt", "--outputfile=o"]
                return kernel

        good, bad = Bag(size=2), Failing(size=1)
        composite = ConcurrentPatterns([good, bad])
        with pytest.raises(PatternError, match="concurrent"):
            local_handle.run(composite)
        assert all(u.state is UnitState.DONE for u in good.units)
        assert bad.failed_units

    def test_profile_has_child_pattern_events(self, sim_handle_factory):
        handle = sim_handle_factory()
        bag, sal = Bag(size=2), SAL()
        composite = ConcurrentPatterns([bag, sal])
        handle.run(composite)
        prof = handle.profile
        for child in (bag, sal):
            assert prof.first("entk_pattern_start", child.uid) is not None
            assert prof.last("entk_pattern_stop", child.uid) is not None
