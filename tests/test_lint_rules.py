"""Rule-family tests for repro.lint: true positives, false-positive guards,
inline suppression, and the seeded illegal-transition acceptance case.

Fixture code lives in strings (never on disk as importable modules), so the
linter's own CI run over ``tests/`` does not trip on the deliberate bugs.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source


def _ids(source: str, select=None) -> list[str]:
    return [f.rule_id for f in lint_source(textwrap.dedent(source), select=select)]


# -- DET001: wall clock -------------------------------------------------------


def test_det001_flags_time_time():
    assert "DET001" in _ids(
        """
        import time
        def stamp():
            return time.time()
        """
    )


def test_det001_flags_datetime_now_from_import():
    assert "DET001" in _ids(
        """
        from datetime import datetime
        def stamp():
            return datetime.now()
        """
    )


def test_det001_ignores_injected_clock():
    assert _ids(
        """
        def stamp(clock):
            return clock.now()
        """
    ) == []


def test_det001_noqa_suppression():
    assert _ids(
        """
        import time
        def stamp():
            return time.time()  # repro: noqa[DET001]
        """
    ) == []


def test_noqa_with_wrong_id_does_not_suppress():
    assert "DET001" in _ids(
        """
        import time
        def stamp():
            return time.time()  # repro: noqa[DET004]
        """
    )


def test_bare_noqa_suppresses_everything_on_the_line():
    assert _ids(
        """
        import time
        def stamp():
            return time.time()  # repro: noqa
        """
    ) == []


# -- DET002: global RNG state -------------------------------------------------


def test_det002_flags_stdlib_random():
    ids = _ids(
        """
        import random
        def draw():
            random.seed(1)
            return random.random()
        """
    )
    assert ids.count("DET002") == 2


def test_det002_flags_numpy_global_under_alias():
    assert "DET002" in _ids(
        """
        import numpy as np
        def draw():
            return np.random.rand(3)
        """
    )


def test_det002_allows_seeded_generators():
    assert _ids(
        """
        import random
        import numpy as np
        def make():
            a = random.Random(7)
            b = np.random.default_rng(7)
            return a, b
        """
    ) == []


def test_det002_ignores_draws_on_generator_instances():
    assert _ids(
        """
        def draw(rng):
            return rng.normal()
        """
    ) == []


# -- DET003: OS entropy -------------------------------------------------------


def test_det003_flags_uuid4_and_urandom():
    ids = _ids(
        """
        import os
        import uuid
        def fresh():
            return uuid.uuid4(), os.urandom(8)
        """
    )
    assert ids.count("DET003") == 2


def test_det003_allows_deterministic_uuid5():
    assert _ids(
        """
        import uuid
        def name_id(ns, name):
            return uuid.uuid5(ns, name)
        """
    ) == []


# -- DET004: hash-order iteration --------------------------------------------


def test_det004_flags_for_over_set_call():
    assert "DET004" in _ids(
        """
        def walk(items):
            for i in set(items):
                yield i
        """
    )


def test_det004_flags_set_literal_in_comprehension_and_list():
    ids = _ids(
        """
        def walk():
            a = [i for i in {3, 1, 2}]
            b = list({3, 1, 2})
            return a, b
        """
    )
    assert ids.count("DET004") == 2


def test_det004_allows_sorted_wrapping():
    assert _ids(
        """
        def walk(items):
            for i in sorted(set(items)):
                yield i
        """
    ) == []


def test_det004_allows_membership_and_dict_iteration():
    assert _ids(
        """
        def use(routing, wide):
            hits = [k for k in routing.values() if k in set(wide)]
            return hits
        """
    ) == []


# -- DC001: dataclass field discipline ----------------------------------------


def test_dc001_flags_undeclared_attribute():
    findings = lint_source(
        textwrap.dedent(
            """
            from dataclasses import dataclass

            @dataclass
            class FaultModel:
                rate: float = 0.0
                def seed(self, rng):
                    self._rng = rng
            """
        )
    )
    assert [f.rule_id for f in findings] == ["DC001"]
    assert "_rng" in findings[0].message


def test_dc001_reports_each_attribute_once():
    ids = _ids(
        """
        from dataclasses import dataclass

        @dataclass
        class Model:
            def a(self):
                self.cache = {}
            def b(self):
                self.cache = {}
        """
    )
    assert ids.count("DC001") == 1


def test_dc001_allows_declared_fields_and_post_init():
    assert _ids(
        """
        from dataclasses import dataclass, field

        @dataclass
        class Model:
            rate: float = 0.0
            _rng: object = field(init=False, default=None)
            def __post_init__(self):
                self._rng = object()
                self.rate = 2 * self.rate
        """
    ) == []


def test_dc001_ignores_plain_classes():
    assert _ids(
        """
        class Plain:
            def __init__(self):
                self.anything = 1
        """
    ) == []


# -- SM rules -----------------------------------------------------------------


def test_sm001_flags_unknown_member():
    assert "SM001" in _ids(
        """
        from repro.pilot.states import PilotState
        def go(pilot):
            pilot.advance(PilotState.RUNNING_TYPO)
        """
    )


def test_sm002_flags_seeded_illegal_transition():
    # The acceptance-criteria case: an injected illegal PilotState edge.
    findings = lint_source(
        textwrap.dedent(
            """
            from repro.pilot.states import PilotState
            def go(pilot):
                pilot.advance(PilotState.ACTIVE)
                pilot.advance(PilotState.NEW)
            """
        )
    )
    assert [f.rule_id for f in findings] == ["SM002"]
    assert "ACTIVE -> NEW" in findings[0].message


def test_sm002_flags_advance_out_of_final_state_under_guard():
    assert "SM002" in _ids(
        """
        from repro.pilot.states import UnitState
        def go(unit):
            if unit.state is UnitState.DONE:
                unit.advance(UnitState.EXECUTING)
        """
    )


def test_sm002_allows_legal_chain_and_requeue_edge():
    assert _ids(
        """
        from repro.pilot.states import PilotState, UnitState
        def go(pilot, unit):
            pilot.advance(PilotState.PENDING)
            pilot.advance(PilotState.ACTIVE)
            if unit.state is UnitState.EXECUTING:
                unit.advance(UnitState.UMGR_SCHEDULING)
        """
    ) == []


def test_sm002_helper_call_between_advances_clears_knowledge():
    # `handoff(pilot)` may transition the pilot elsewhere; no false positive.
    assert _ids(
        """
        from repro.pilot.states import PilotState
        def go(pilot, handoff):
            pilot.advance(PilotState.PENDING)
            handoff(pilot)
            pilot.advance(PilotState.PENDING)
        """
    ) == []


def test_sm002_else_branch_does_not_inherit_guard_state():
    assert _ids(
        """
        from repro.pilot.states import PilotState
        def go(pilot):
            if pilot.state is PilotState.ACTIVE:
                pass
            else:
                pilot.advance(PilotState.ACTIVE)
        """
    ) == []


def test_sm003_flags_direct_state_assignment():
    assert "SM003" in _ids(
        """
        from repro.pilot.states import UnitState
        def finish(unit):
            unit._state = UnitState.DONE
        """
    )


def test_sm003_allows_init_and_advance():
    assert _ids(
        """
        from repro.pilot.states import UnitState
        class Unit:
            def __init__(self):
                self._state = UnitState.NEW
            def advance(self, target):
                self._state = target
        """
    ) == []


def test_sm004_reports_unproduced_states(tmp_path):
    from repro.lint import LintConfig, lint_paths

    # A scan that includes the defining module but produces only PENDING.
    states = tmp_path / "pilot" / "states.py"
    states.parent.mkdir()
    states.write_text("'''edge tables live here in the real tree'''\n")
    producer = tmp_path / "manager.py"
    producer.write_text(
        textwrap.dedent(
            """
            from repro.pilot.states import PilotState
            def submit(pilot):
                pilot.advance(PilotState.PENDING)
            """
        )
    )
    result = lint_paths([tmp_path], LintConfig(root=tmp_path))
    sm004 = [f for f in result.findings if f.rule_id == "SM004"]
    missing = {f.message.split()[0] for f in sm004}
    assert missing == {
        "PilotState.ACTIVE",
        "PilotState.DONE",
        "PilotState.FAILED",
        "PilotState.CANCELED",
    }
    assert all(f.file.endswith("pilot/states.py") for f in sm004)


def test_sm004_silent_when_defining_module_not_scanned(tmp_path):
    from repro.lint import LintConfig, lint_paths

    producer = tmp_path / "manager.py"
    producer.write_text(
        "from repro.pilot.states import PilotState\n"
        "def submit(pilot):\n"
        "    pilot.advance(PilotState.PENDING)\n"
    )
    result = lint_paths([tmp_path], LintConfig(root=tmp_path))
    assert [f for f in result.findings if f.rule_id == "SM004"] == []


# -- EVT rules ----------------------------------------------------------------


def test_evt001_flags_unbound_loop_capture():
    findings = lint_source(
        textwrap.dedent(
            """
            def arm(sim, nodes):
                for node in nodes:
                    sim.schedule(1.0, lambda: fail(node))
            """
        )
    )
    assert [f.rule_id for f in findings] == ["EVT001"]
    assert "'node'" in findings[0].message


def test_evt001_allows_default_binding():
    assert _ids(
        """
        def arm(sim, nodes):
            for node in nodes:
                sim.schedule(1.0, lambda n=node: fail(n))
        """
    ) == []


def test_evt001_ignores_lambda_outside_loops():
    assert _ids(
        """
        def arm(sim, node):
            sim.schedule(1.0, lambda: fail(node))
        """
    ) == []


def test_evt001_flags_comprehension_capture():
    assert "EVT001" in _ids(
        """
        def arm(sim, nodes):
            return [sim.schedule(1.0, lambda: fail(n)) for n in nodes]
        """
    )


def test_evt002_flags_mutable_default():
    assert "EVT002" in _ids(
        """
        def on_event(event, seen=[]):
            seen.append(event)
            return seen
        """
    )


def test_evt002_allows_none_default():
    assert _ids(
        """
        def on_event(event, seen=None):
            seen = [] if seen is None else seen
            seen.append(event)
            return seen
        """
    ) == []


# -- selection ----------------------------------------------------------------


@pytest.mark.parametrize("select,expected", [
    (["DET"], {"DET001", "DET002"}),
    (["DET001"], {"DET001"}),
    (["EVT"], set()),
])
def test_family_and_exact_selection(select, expected):
    source = """
        import time
        import random
        def f():
            return time.time(), random.random()
        """
    assert set(_ids(source, select=select)) == expected
