"""Tests for task-fault injection and its interplay with retries."""

import pytest

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import BagOfTasks
from repro.core.resource_handle import ResourceHandle
from repro.eventsim import RandomStreams
from repro.exceptions import ConfigurationError, PatternError
from repro.pilot.faults import FaultModel, TaskFault
from repro.pilot.states import UnitState


class SleepBag(BagOfTasks):
    def __init__(self, size, retries=0):
        super().__init__(size=size)
        self.max_task_retries = retries

    def task(self, instance):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = ["--duration=100"]
        return kernel


def run_with_faults(rate, size=32, retries=0, seed=0, cores=32):
    handle = ResourceHandle(
        "xsede.comet", cores=cores, walltime=600, mode="sim",
        fault_rate=rate, seed=seed,
    )
    handle.allocate()
    pattern = SleepBag(size, retries=retries)
    try:
        handle.run(pattern)
    finally:
        handle.deallocate()
    return pattern, handle


class TestFaultModel:
    def test_rate_validation(self):
        with pytest.raises(ConfigurationError):
            FaultModel(rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultModel(rate=1.0)
        FaultModel(rate=0.0)

    def test_disabled_model_never_fires(self):
        model = FaultModel(0.0).bind(RandomStreams(0))
        assert all(model.draw(100.0) is None for _ in range(100))

    def test_unbound_enabled_model_raises(self):
        with pytest.raises(ConfigurationError, match="bind"):
            FaultModel(0.5).draw(10.0)

    def test_failure_point_within_runtime(self):
        model = FaultModel(0.9).bind(RandomStreams(1))
        offsets = [model.draw(100.0) for _ in range(300)]
        fired = [o for o in offsets if o is not None]
        assert fired, "rate 0.9 must fire"
        assert all(10.0 <= o <= 90.0 for o in fired)

    def test_empirical_rate(self):
        model = FaultModel(0.25).bind(RandomStreams(2))
        fired = sum(model.draw(1.0) is not None for _ in range(4000))
        assert fired / 4000 == pytest.approx(0.25, abs=0.03)

    def test_local_sessions_reject_faults(self):
        with pytest.raises(ConfigurationError, match="simulated"):
            ResourceHandle(
                "local.localhost", 2, 5, mode="local", fault_rate=0.1
            ).allocate()


class TestFaultInjection:
    def test_zero_rate_changes_nothing(self):
        pattern, handle = run_with_faults(0.0, size=8)
        assert all(u.state is UnitState.DONE for u in pattern.units)
        assert not handle.profile.events("task_fault")

    def test_faults_without_retries_fail_pattern(self):
        with pytest.raises(PatternError, match="TaskFault"):
            run_with_faults(0.5, size=32, retries=0, seed=1)

    def test_retries_absorb_faults(self):
        pattern, handle = run_with_faults(0.3, size=32, retries=10, seed=3)
        done = [u for u in pattern.units if u.state is UnitState.DONE]
        assert len(done) == 32
        faults = handle.profile.events("task_fault")
        retries = handle.profile.events("entk_task_retry")
        assert len(faults) == len(retries) > 0
        assert not pattern.failed_units

    def test_faulted_units_carry_task_fault(self):
        pattern, _ = run_with_faults(0.3, size=32, retries=10, seed=3)
        failed = [u for u in pattern.units if u.state is UnitState.FAILED]
        assert failed
        assert all(isinstance(u.exception, TaskFault) for u in failed)

    def test_faults_cost_wall_time(self):
        """A faulted-and-retried run takes longer than a clean one."""
        clean, clean_handle = run_with_faults(0.0, size=32, seed=5)
        faulty, faulty_handle = run_with_faults(0.3, size=32, retries=10, seed=5)
        clean_ttc = clean_handle.profile.span(
            "entk_pattern_start", "entk_pattern_stop", clean.uid
        )
        faulty_ttc = faulty_handle.profile.span(
            "entk_pattern_start", "entk_pattern_stop", faulty.uid
        )
        assert faulty_ttc > clean_ttc

    def test_fault_draws_are_deterministic(self):
        a, handle_a = run_with_faults(0.3, size=16, retries=10, seed=11)
        b, handle_b = run_with_faults(0.3, size=16, retries=10, seed=11)
        assert len(handle_a.profile.events("task_fault")) == len(
            handle_b.profile.events("task_fault")
        )
        assert len(a.units) == len(b.units)
