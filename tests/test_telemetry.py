"""Unit tests for the telemetry subsystem on synthetic traces."""

import json
import random

import pytest

from repro.pilot.profiler import Profiler
from repro.telemetry import (
    MetricsRegistry,
    SpanBuilder,
    Tracer,
    chrome_trace,
    component_of,
    critical_path,
    write_chrome_trace,
)
from repro.utils.ids import reset_id_counters


def synthetic_trace() -> list[dict]:
    """A hand-written EoP-shaped trace: one pattern, one pilot, two units."""
    events = [
        {"time": 0.0, "name": "session_start", "uid": "sess", "mode": "sim"},
        {"time": 0.1, "name": "entk_init_start", "uid": "sess"},
        {"time": 0.6, "name": "entk_init_stop", "uid": "sess"},
        {"time": 0.6, "name": "entk_alloc_start", "uid": "sess"},
        {"time": 0.7, "name": "pilot_submit", "uid": "pilot.1", "cores": 8},
        {"time": 1.5, "name": "agent_start", "uid": "pilot.1"},
        {"time": 2.0, "name": "entk_alloc_stop", "uid": "sess"},
        {"time": 2.0, "name": "entk_pattern_start", "uid": "p1"},
        {"time": 2.0, "name": "entk_stage_create_start", "uid": "p1", "n": 2},
        {"time": 2.2, "name": "entk_stage_create_stop", "uid": "p1", "n": 2},
        {"time": 2.2, "name": "entk_pattern_overhead", "uid": "p1",
         "seconds": 0.8, "n": 2},
        {"time": 2.2, "name": "unit_new", "uid": "u1", "pattern": "p1"},
        {"time": 2.25, "name": "unit_new", "uid": "u2", "pattern": "p1"},
        {"time": 2.3, "name": "unit_state", "uid": "u1",
         "state": "UMGR_SCHEDULING"},
        {"time": 2.35, "name": "unit_state", "uid": "u2",
         "state": "UMGR_SCHEDULING"},
        {"time": 4.0, "name": "unit_state", "uid": "u1",
         "state": "AGENT_STAGING_INPUT"},
        {"time": 4.1, "name": "unit_state", "uid": "u2",
         "state": "AGENT_STAGING_INPUT"},
        {"time": 5.0, "name": "unit_state", "uid": "u1",
         "state": "AGENT_SCHEDULING"},
        {"time": 5.1, "name": "unit_state", "uid": "u2",
         "state": "AGENT_SCHEDULING"},
        {"time": 6.0, "name": "unit_state", "uid": "u1", "state": "EXECUTING"},
        {"time": 6.1, "name": "unit_state", "uid": "u2", "state": "EXECUTING"},
        {"time": 46.0, "name": "unit_state", "uid": "u1",
         "state": "AGENT_STAGING_OUTPUT"},
        {"time": 46.5, "name": "unit_state", "uid": "u2",
         "state": "AGENT_STAGING_OUTPUT"},
        {"time": 47.0, "name": "unit_state", "uid": "u1", "state": "DONE"},
        {"time": 47.5, "name": "unit_state", "uid": "u2", "state": "DONE"},
        {"time": 48.0, "name": "entk_pattern_stop", "uid": "p1"},
        {"time": 50.0, "name": "agent_stop", "uid": "pilot.1"},
        {"time": 50.0, "name": "entk_cancel_start", "uid": "sess"},
        {"time": 51.0, "name": "entk_cancel_stop", "uid": "sess"},
        {"time": 52.0, "name": "session_close", "uid": "sess"},
        # One explicit span attached to a unit by ref.
        {"time": 5.0, "name": "span_open", "uid": "span.000000",
         "span": "agent.stage_in", "ref": "u1", "parent": ""},
        {"time": 5.9, "name": "span_close", "uid": "span.000000"},
    ]
    return events


class TestSpanBuilder:
    def test_tree_shape(self):
        tree = SpanBuilder().add_events(synthetic_trace()).build()
        root = tree.root
        assert root.name == "session"
        assert root.t_start == 0.0 and root.t_end == 52.0

        (pattern,) = tree.find(name="pattern")
        assert pattern.ref == "p1"
        assert (pattern.t_start, pattern.t_end) == (2.0, 48.0)
        assert pattern.parent == root.uid

        u1 = tree.spans["unit:u1"]
        assert u1.parent == pattern.uid
        assert u1.t_start == 2.2 and u1.t_end == 47.0

        executing = tree.spans["unit:u1:3"]
        assert executing.name == "unit:EXECUTING"
        assert (executing.t_start, executing.t_end) == (6.0, 46.0)
        assert component_of(executing) == "execution"

        init = tree.find(name="entk_init")[0]
        assert component_of(init) == "core"
        charge = tree.find(name="entk_pattern_overhead")[0]
        assert charge.t_end == pytest.approx(3.0)
        assert component_of(charge) == "pattern"
        assert charge.parent == pattern.uid

        pilot = tree.spans["pilot:pilot.1"]
        assert (pilot.t_start, pilot.t_end) == (0.7, 50.0)
        startup = tree.find(name="pilot_startup")[0]
        assert (startup.t_start, startup.t_end) == (0.7, 1.5)
        assert startup.parent == pilot.uid

        explicit = tree.spans["span.000000"]
        assert explicit.name == "agent.stage_in"
        assert explicit.parent == "unit:u1"
        assert (explicit.t_start, explicit.t_end) == (5.0, 5.9)

    def test_out_of_order_events_build_identical_tree(self):
        events = synthetic_trace()
        shuffled = list(events)
        random.Random(1234).shuffle(shuffled)

        def shape(tree):
            return sorted(
                (s.uid, s.name, s.t_start, s.t_end, s.parent, s.ref)
                for s in tree
            )

        in_order = SpanBuilder().add_events(events).build()
        scrambled = SpanBuilder().add_events(shuffled).build()
        assert shape(in_order) == shape(scrambled)

    def test_ingest_uses_snapshot_cursor(self):
        prof = Profiler(lambda: 1.0)
        prof.event("session_start", "s")
        builder = SpanBuilder()
        assert builder.ingest(prof) == 1
        prof.event("unit_new", "u1", pattern="")
        prof.event("unit_state", "u1", state="UMGR_SCHEDULING")
        assert builder.ingest(prof) == 2
        assert builder.ingest(prof) == 0
        tree = builder.build()
        assert "unit:u1" in tree.spans

    def test_empty_trace_raises(self):
        with pytest.raises(ValueError):
            SpanBuilder().build()

    def test_unclosed_spans_end_at_trace_end(self):
        events = [
            {"time": 0.0, "name": "session_start", "uid": "s"},
            {"time": 1.0, "name": "span_open", "uid": "span.000001",
             "span": "dangling", "ref": "", "parent": ""},
            {"time": 5.0, "name": "session_close", "uid": "s"},
        ]
        tree = SpanBuilder().add_events(events).build()
        dangling = tree.spans["span.000001"]
        assert dangling.t_end == 5.0
        assert dangling.parent == tree.root.uid


class TestTracer:
    def test_nesting_records_parents(self):
        reset_id_counters()
        prof = Profiler(lambda: 0.0)
        tracer = Tracer(prof)
        with tracer.span("outer", "a") as outer_uid:
            with tracer.span("inner", "b"):
                pass
        opens = prof.events("span_open")
        assert opens[0].attrs["parent"] == ""
        assert opens[1].attrs["parent"] == outer_uid
        assert len(prof.events("span_close")) == 2

    def test_begin_end_does_not_occupy_stack(self):
        reset_id_counters()
        prof = Profiler(lambda: 0.0)
        tracer = Tracer(prof)
        with tracer.span("outer", "a") as outer_uid:
            async_uid = tracer.begin("async", "x")
            with tracer.span("sibling", "y"):
                pass
        tracer.end(async_uid)
        opens = {ev.attrs["span"]: ev.attrs["parent"]
                 for ev in prof.events("span_open")}
        assert opens["async"] == outer_uid
        assert opens["sibling"] == outer_uid  # not parented to "async"

    def test_null_tracer_is_silent_noop(self):
        tracer = Tracer(None)
        with tracer.span("anything", "x") as uid:
            assert uid == ""
        assert tracer.begin("more") == ""
        tracer.end("")


class TestMetrics:
    def test_counter_gauge_sample(self):
        clock = iter(float(i) for i in range(100))
        registry = MetricsRegistry(lambda: next(clock))
        registry.count("submitted")
        registry.count("submitted", 2)
        registry.gauge("depth", 5)
        registry.adjust("depth", -2)
        registry.sample("wait", 7.5)

        assert registry.names() == ["depth", "submitted", "wait"]
        assert registry.series("submitted").last == 3.0
        assert registry.series("depth").last == 3.0
        assert registry.series("depth").value_at(2.0) == 5.0
        assert registry.series("wait").stats()["mean"] == 7.5
        assert "nope" not in registry
        assert registry.series("nope").points == []

    def test_emit_and_rebuild_roundtrip(self):
        prof = Profiler(lambda: 42.0)
        registry = MetricsRegistry(lambda: 42.0, emit=prof.event)
        registry.gauge("depth", 3)
        registry.count("done")
        rebuilt = MetricsRegistry.from_events(list(prof))
        assert rebuilt.names() == ["depth", "done"]
        assert rebuilt.series("depth").points == [(42.0, 3.0)]
        assert rebuilt.series("done").kind == "counter"


class TestCriticalPath:
    def test_tiles_cover_window_exactly(self):
        tree = SpanBuilder().add_events(synthetic_trace()).build()
        path = critical_path(tree)
        assert path.ref == "p1"
        assert path.total == pytest.approx(46.0)  # pattern window 2.0..48.0
        assert sum(seg.duration for seg in path.segments) == pytest.approx(
            path.total
        )
        # Segments tile: contiguous, no overlap.
        for left, right in zip(path.segments, path.segments[1:]):
            assert left.t_end == pytest.approx(right.t_start)

        totals = path.by_component()
        # Units execute 6.0..46.5 (union of both units).
        assert totals["execution"] == pytest.approx(40.5)
        # stage_create 0.2s + charged 0.8s, disjoint from execution.
        assert totals["pattern"] == pytest.approx(1.0)
        assert totals["runtime"] == pytest.approx(46.0 - 40.5 - 1.0)

    def test_execution_has_priority_over_pattern(self):
        events = [
            {"time": 0.0, "name": "session_start", "uid": "s"},
            {"time": 1.0, "name": "entk_pattern_start", "uid": "p"},
            # Charge overlapping execution: execution wins the overlap.
            {"time": 2.0, "name": "entk_pattern_overhead", "uid": "p",
             "seconds": 4.0},
            {"time": 0.0, "name": "unit_new", "uid": "u", "pattern": "p"},
            {"time": 3.0, "name": "unit_state", "uid": "u",
             "state": "EXECUTING"},
            {"time": 9.0, "name": "unit_state", "uid": "u", "state": "DONE"},
            {"time": 11.0, "name": "entk_pattern_stop", "uid": "p"},
            {"time": 11.0, "name": "session_close", "uid": "s"},
        ]
        tree = SpanBuilder().add_events(events).build()
        totals = critical_path(tree).by_component()
        assert totals["execution"] == pytest.approx(6.0)   # 3..9
        assert totals["pattern"] == pytest.approx(1.0)     # 2..3 only
        assert totals["runtime"] == pytest.approx(3.0)     # 1..2 and 9..11


class TestChromeExport:
    def test_document_structure(self):
        doc = chrome_trace(synthetic_trace())
        assert set(doc) == {"displayTimeUnit", "traceEvents"}
        phases = {ev["ph"] for ev in doc["traceEvents"]}
        assert phases == {"M", "X"}
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        executing = min(
            (ev for ev in spans if ev["name"] == "unit:EXECUTING"),
            key=lambda ev: ev["ts"],
        )
        assert executing["cat"] == "execution"
        assert executing["ts"] == pytest.approx(6.0e6)
        assert executing["dur"] == pytest.approx(40.0e6)
        # Entity tracks get thread-name metadata.
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert {"client", "pilot pilot.1", "unit u1", "unit u2"} <= names

    def test_metrics_and_faults_become_counters_and_instants(self):
        events = synthetic_trace() + [
            {"time": 10.0, "name": "metric", "uid": "depth", "value": 4.0,
             "kind": "gauge"},
            {"time": 20.0, "name": "node_fail", "uid": "pilot.1", "node": 0},
        ]
        doc = chrome_trace(events)
        counters = [ev for ev in doc["traceEvents"] if ev["ph"] == "C"]
        assert counters[0]["name"] == "depth"
        assert counters[0]["args"]["value"] == 4.0
        instants = [ev for ev in doc["traceEvents"] if ev["ph"] == "i"]
        assert instants[0]["name"] == "node_fail pilot.1"

    def test_write_is_byte_deterministic(self, tmp_path):
        events = synthetic_trace()
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        write_chrome_trace(events, first)
        write_chrome_trace(list(reversed(events)), second)
        assert first.read_bytes() == second.read_bytes()
        assert json.loads(first.read_text())["traceEvents"]


class TestTraceCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with path.open("w") as stream:
            for event in synthetic_trace():
                stream.write(json.dumps(event) + "\n")
        return path

    def test_summarize(self, trace_file, capsys):
        from repro.__main__ import main

        assert main(["trace", "summarize", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "unit:EXECUTING" in out
        assert "spans" in out

    def test_export(self, trace_file, tmp_path, capsys):
        from repro.__main__ import main

        out_path = tmp_path / "chrome.json"
        assert main(["trace", "export", str(trace_file),
                     "-o", str(out_path)]) == 0
        doc = json.loads(out_path.read_text())
        assert doc["traceEvents"]

    def test_critical_path(self, trace_file, capsys):
        from repro.__main__ import main

        assert main(["trace", "critical-path", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "execution" in out
        assert "ref=p1" in out

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        from repro.__main__ import main

        missing = tmp_path / "nope.jsonl"
        assert main(["trace", "summarize", str(missing)]) == 2
        assert "no such trace file" in capsys.readouterr().err
