"""Acceptance regressions for telemetry on real simulated runs.

ISSUE 3 acceptance criteria, verified end to end:

- exporting a Fig. 3-style EoP run yields valid Chrome trace-event JSON
  whose critical-path duration equals the run's TTC within 1e-6 s and
  whose per-component sums reconcile with ``OverheadBreakdown``;
- two same-seed runs produce byte-identical trace exports, with fault
  injection off and on;
- the harness ``trace_out`` hook and the ``repro trace`` CLI work on
  real dumps;
- ``repro lint`` reports zero findings over ``src/repro/telemetry``.
"""

import json
from pathlib import Path

import pytest

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import EnsembleOfPipelines
from repro.core.profiler import breakdown_from_profile
from repro.core.resource_handle import ResourceHandle
from repro.pilot.retry import RetryPolicy
from repro.telemetry import (
    SpanBuilder,
    chrome_trace,
    critical_path,
    reconcile_with_breakdown,
    write_chrome_trace,
)
from repro.utils.ids import reset_id_counters


def _sleep(duration):
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = [f"--duration={duration}"]
    return kernel


class TwoStageEoP(EnsembleOfPipelines):
    def stage_1(self, instance):
        return _sleep(40)

    def stage_2(self, instance):
        return _sleep(20)


FAULT_KWARGS = dict(
    node_mtbf=120.0,
    node_repair_time=120.0,
    retry_policy=RetryPolicy(
        max_attempts=8, backoff_base=2.0, backoff_factor=2.0,
        backoff_cap=60.0, jitter=0.5, exclude_failed_nodes=False,
    ),
)


def run_eop(seed=42, cores=16, size=16, **handle_kwargs):
    """One Fig. 3-style EoP run; returns (pattern, profiler)."""
    reset_id_counters()
    pattern = TwoStageEoP(ensemble_size=size, pipeline_size=2)
    handle = ResourceHandle(
        "xsede.comet", cores=cores, walltime=600, mode="sim",
        seed=seed, **handle_kwargs,
    )
    handle.allocate()
    try:
        handle.run(pattern)
    finally:
        handle.deallocate()
    return pattern, handle.profile


@pytest.fixture(scope="module")
def eop_run():
    return run_eop()


class TestCriticalPathReconciliation:
    def test_critical_path_equals_ttc(self, eop_run):
        pattern, profile = eop_run
        breakdown = breakdown_from_profile(profile, pattern)
        tree = SpanBuilder().add_events(list(profile)).build()
        path = critical_path(tree, pattern.uid)
        assert path.total == pytest.approx(breakdown.ttc, abs=1e-6)

    def test_components_reconcile_with_breakdown(self, eop_run):
        pattern, profile = eop_run
        breakdown = breakdown_from_profile(profile, pattern)
        tree = SpanBuilder().add_events(list(profile)).build()
        path = critical_path(tree, pattern.uid)
        deltas = reconcile_with_breakdown(path, breakdown)
        for component, delta in deltas.items():
            assert abs(delta) < 1e-6, (component, delta)

    def test_path_tiles_without_gaps_or_overlap(self, eop_run):
        _, profile = eop_run
        path = critical_path(SpanBuilder().add_events(list(profile)).build())
        assert path.segments, "critical path must not be empty"
        assert path.segments[0].t_start == pytest.approx(path.t_start)
        assert path.segments[-1].t_end == pytest.approx(path.t_end)
        for left, right in zip(path.segments, path.segments[1:]):
            assert left.t_end == pytest.approx(right.t_start)

    def test_chrome_export_is_valid_trace_event_json(self, eop_run, tmp_path):
        _, profile = eop_run
        out = tmp_path / "eop.trace.json"
        write_chrome_trace(list(profile), out)
        doc = json.loads(out.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert isinstance(doc["traceEvents"], list) and doc["traceEvents"]
        for ev in doc["traceEvents"]:
            assert ev["ph"] in {"M", "X", "C", "i"}
            assert ev["pid"] == 1
        spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
        assert all(ev["dur"] >= 0 for ev in spans)
        cats = {ev["cat"] for ev in spans}
        assert "execution" in cats


class TestByteIdenticalExports:
    def _export_bytes(self, tmp_path, tag, **kwargs):
        _, profile = run_eop(**kwargs)
        path = tmp_path / f"{tag}.json"
        write_chrome_trace(list(profile), path)
        return path.read_bytes()

    def test_same_seed_same_bytes_no_faults(self, tmp_path):
        first = self._export_bytes(tmp_path, "a", seed=42)
        second = self._export_bytes(tmp_path, "b", seed=42)
        assert first == second

    def test_same_seed_same_bytes_with_faults(self, tmp_path):
        kwargs = dict(FAULT_KWARGS, seed=7, size=48, cores=32)
        first = self._export_bytes(tmp_path, "a", **kwargs)
        second = self._export_bytes(tmp_path, "b", **kwargs)
        assert first == second
        doc = json.loads(first)
        assert any(
            ev["ph"] == "i" and ev["name"].startswith("node_fail")
            for ev in doc["traceEvents"]
        ), "fixture must actually exercise the fault machinery"

    def test_different_seed_different_bytes_with_faults(self, tmp_path):
        kwargs = dict(FAULT_KWARGS, size=48, cores=32)
        first = self._export_bytes(tmp_path, "a", seed=7, **kwargs)
        second = self._export_bytes(tmp_path, "b", seed=8, **kwargs)
        assert first != second


class TestMetricsOnRealRuns:
    def test_unit_state_and_agent_metrics_recorded(self, eop_run):
        from repro.telemetry import MetricsRegistry

        _, profile = eop_run
        registry = MetricsRegistry.from_events(list(profile))
        names = registry.names()
        assert "units.NEW" in names
        assert "units.DONE" in names
        assert registry.series("units.DONE").last == 32.0
        assert any(name.endswith(".queue_depth") for name in names)
        assert any(name.endswith(".cores_busy") for name in names)
        assert "pilot.queue_wait" in names

    def test_units_done_counts_up_to_ensemble_size(self, eop_run):
        from repro.telemetry import MetricsRegistry

        _, profile = eop_run
        series = MetricsRegistry.from_events(list(profile))
        values = series.series("units.DONE").values()
        assert values == sorted(values)
        assert values[-1] == 32.0


class TestHarnessTraceOut:
    def test_run_on_sim_dumps_chrome_trace(self, tmp_path):
        from repro.experiments.harness import run_on_sim

        reset_id_counters()
        pattern = TwoStageEoP(ensemble_size=4, pipeline_size=2)
        run_on_sim(pattern, "xsede.comet", cores=4, seed=0,
                   trace_out=tmp_path)
        dumps = list(Path(tmp_path).glob("*.trace.json"))
        assert len(dumps) == 1
        assert dumps[0].name == f"{pattern.uid}.trace.json"
        doc = json.loads(dumps[0].read_text())
        assert doc["traceEvents"]

    def test_module_level_hook(self, tmp_path):
        from repro.experiments import harness

        reset_id_counters()
        pattern = TwoStageEoP(ensemble_size=4, pipeline_size=2)
        harness.set_trace_out(tmp_path)
        try:
            harness.run_on_sim(pattern, "xsede.comet", cores=4, seed=0)
        finally:
            harness.set_trace_out(None)
        assert list(Path(tmp_path).glob("*.trace.json"))


class TestTraceCliOnRealDump:
    @pytest.fixture()
    def dump(self, tmp_path, eop_run):
        _, profile = eop_run
        path = tmp_path / "run.jsonl"
        with path.open("w") as stream:
            for ev in profile:
                record = {"time": ev.time, "name": ev.name, "uid": ev.uid}
                record.update(ev.attrs)
                stream.write(json.dumps(record) + "\n")
        return path

    def test_summarize_and_critical_path(self, dump, capsys):
        from repro.__main__ import main

        assert main(["trace", "summarize", str(dump)]) == 0
        assert "unit:EXECUTING" in capsys.readouterr().out
        assert main(["trace", "critical-path", str(dump)]) == 0
        assert "execution" in capsys.readouterr().out

    def test_export_matches_direct_api(self, dump, tmp_path, eop_run, capsys):
        from repro.__main__ import main

        _, profile = eop_run
        via_cli = tmp_path / "cli.json"
        via_api = tmp_path / "api.json"
        assert main(["trace", "export", str(dump), "-o", str(via_cli)]) == 0
        capsys.readouterr()
        write_chrome_trace(list(profile), via_api)
        assert via_cli.read_bytes() == via_api.read_bytes()


class TestLintCleanOverTelemetry:
    def test_zero_findings(self):
        from repro.lint.config import LintConfig
        from repro.lint.engine import lint_paths

        root = Path(__file__).resolve().parents[1]
        config = LintConfig(root=root)
        result = lint_paths([root / "src" / "repro" / "telemetry"], config)
        assert result.files_scanned >= 5
        assert result.findings == []
