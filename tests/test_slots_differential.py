"""Differential test: indexed slot schedulers vs. the scan reference.

The indexed rewrite of :mod:`repro.pilot.agent.slots` must be *placement
identical* to the boolean-array implementation it replaced — same slots,
in the same order, for every alloc/dealloc/fail/repair/avoid sequence —
because placements feed the deterministic traces.  The pre-rewrite
implementation is kept here, verbatim in behavior, as the executable
specification; hypothesis drives both through random operation sequences
and compares every observable after every step.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import SchedulingError
from repro.pilot.agent.slots import (
    ContiguousSlotScheduler,
    ScatteredSlotScheduler,
)


# -- reference implementation (pre-index, O(cores) scans) ---------------------


class _ReferenceScheduler:
    """The original boolean-array scheduler, minus the abc scaffolding."""

    def __init__(self, total_cores, cores_per_node=None):
        self.total_cores = total_cores
        self.cores_per_node = cores_per_node or total_cores
        self._free = [True] * total_cores
        self._offline = [False] * total_cores
        self._nfree = total_cores

    @property
    def nnodes(self):
        return -(-self.total_cores // self.cores_per_node)

    def node_of(self, slot):
        return slot // self.cores_per_node

    def node_slots(self, node):
        start = node * self.cores_per_node
        return range(start, min(start + self.cores_per_node, self.total_cores))

    @property
    def free_cores(self):
        return self._nfree

    @property
    def used_cores(self):
        return sum(1 for free in self._free if not free)

    @property
    def offline_nodes(self):
        return {self.node_of(i) for i, off in enumerate(self._offline) if off}

    def eligible_cores(self, avoid_nodes=frozenset()):
        if not avoid_nodes:
            return self.total_cores
        return sum(
            1
            for i in range(self.total_cores)
            if self.node_of(i) not in avoid_nodes
        )

    def fail_node(self, node):
        for slot in self.node_slots(node):
            if not self._offline[slot]:
                self._offline[slot] = True
                if self._free[slot]:
                    self._nfree -= 1

    def repair_node(self, node):
        for slot in self.node_slots(node):
            if self._offline[slot]:
                self._offline[slot] = False
                if self._free[slot]:
                    self._nfree += 1

    def alloc(self, ncores, avoid_nodes=frozenset()):
        if ncores < 1:
            raise SchedulingError("must allocate at least one core")
        if ncores > self.total_cores:
            raise SchedulingError(
                f"unit wants {ncores} cores; pilot holds {self.total_cores}"
            )
        if ncores > self._nfree:
            return None
        slots = self._pick(ncores, avoid_nodes)
        if slots is None:
            return None
        for slot in slots:
            self._free[slot] = False
        self._nfree -= len(slots)
        return slots

    def dealloc(self, slots):
        for slot in slots:
            self._free[slot] = True
            if not self._offline[slot]:
                self._nfree += 1

    def _usable(self, slot, avoid_nodes):
        return (
            self._free[slot]
            and not self._offline[slot]
            and (not avoid_nodes or self.node_of(slot) not in avoid_nodes)
        )


class _RefContiguous(_ReferenceScheduler):
    def _pick(self, ncores, avoid_nodes):
        run_start = None
        run_len = 0
        for i in range(self.total_cores):
            if self._usable(i, avoid_nodes):
                if run_start is None:
                    run_start = i
                run_len += 1
                if run_len == ncores:
                    return list(range(run_start, run_start + ncores))
            else:
                run_start = None
                run_len = 0
        return None


class _RefScattered(_ReferenceScheduler):
    def _pick(self, ncores, avoid_nodes):
        slots = [
            i for i in range(self.total_cores) if self._usable(i, avoid_nodes)
        ][:ncores]
        return slots if len(slots) == ncores else None


_PAIRS = {
    "contiguous": (_RefContiguous, ContiguousSlotScheduler),
    "scattered": (_RefScattered, ScatteredSlotScheduler),
}


# -- random operation sequences ----------------------------------------------

_OPS = st.lists(
    st.tuples(
        st.sampled_from(["alloc", "dealloc", "fail", "repair"]),
        st.integers(min_value=0, max_value=10_000),
        st.integers(min_value=0, max_value=63),
    ),
    max_size=60,
)


def _interpret_and_compare(kind, total_cores, cores_per_node, ops):
    ref_cls, new_cls = _PAIRS[kind]
    ref = ref_cls(total_cores, cores_per_node)
    new = new_cls(total_cores, cores_per_node)
    outstanding = []  # placements live in both schedulers

    for op, a, b in ops:
        if op == "alloc":
            ncores = 1 + a % total_cores
            # b is a bitmask over the first few nodes.
            avoid = frozenset(
                node for node in range(min(ref.nnodes, 6)) if b >> node & 1
            )
            got_ref = ref.alloc(ncores, avoid)
            got_new = new.alloc(ncores, avoid)
            assert got_ref == got_new, (
                f"alloc({ncores}, avoid={sorted(avoid)}) placed "
                f"{got_ref} (reference) vs {got_new} (indexed)"
            )
            if got_new is not None:
                outstanding.append(got_new)
        elif op == "dealloc" and outstanding:
            slots = outstanding.pop(a % len(outstanding))
            ref.dealloc(slots)
            new.dealloc(list(slots))
        elif op == "fail":
            node = a % ref.nnodes
            ref.fail_node(node)
            new.fail_node(node)
        elif op == "repair":
            node = a % ref.nnodes
            ref.repair_node(node)
            new.repair_node(node)

        assert new.free_cores == ref.free_cores
        assert new.used_cores == ref.used_cores
        assert new.offline_nodes == ref.offline_nodes

    for avoid in (frozenset(), frozenset({0}), frozenset(range(ref.nnodes))):
        assert new.eligible_cores(avoid) == ref.eligible_cores(avoid)


@pytest.mark.parametrize("kind", sorted(_PAIRS))
class TestDifferential:
    @settings(max_examples=80, deadline=None)
    @given(
        total_cores=st.integers(min_value=1, max_value=48),
        cores_per_node=st.one_of(
            st.none(), st.integers(min_value=1, max_value=17)
        ),
        ops=_OPS,
    )
    def test_random_sequences_place_identically(
        self, kind, total_cores, cores_per_node, ops
    ):
        _interpret_and_compare(kind, total_cores, cores_per_node, ops)

    def test_fragmentation_refusal_matches(self, kind):
        """A checkerboard of holes: contiguous refuses, scattered places."""
        ref_cls, new_cls = _PAIRS[kind]
        ref, new = ref_cls(16), new_cls(16)
        keep = []
        for _ in range(8):
            block_ref = ref.alloc(2)
            block_new = new.alloc(2)
            assert block_ref == block_new
            keep.append(block_new)
        for block in keep[::2]:
            ref.dealloc(block)
            new.dealloc(list(block))
        assert ref.alloc(4) == new.alloc(4)
        assert ref.alloc(2) == new.alloc(2)

    def test_fail_repair_while_occupied_matches(self, kind):
        ref_cls, new_cls = _PAIRS[kind]
        ref, new = ref_cls(12, 4), new_cls(12, 4)
        held_ref = ref.alloc(6)
        held_new = new.alloc(6)
        assert held_ref == held_new
        for node in (0, 1):
            ref.fail_node(node)
            new.fail_node(node)
        assert new.free_cores == ref.free_cores
        # Deallocating onto an offline node keeps slots out of the pool.
        ref.dealloc(held_ref)
        new.dealloc(list(held_new))
        assert new.free_cores == ref.free_cores
        assert ref.alloc(5) == new.alloc(5)
        for node in (1, 0):
            ref.repair_node(node)
            new.repair_node(node)
        assert new.free_cores == ref.free_cores
        assert ref.alloc(7) == new.alloc(7)
