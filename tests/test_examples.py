"""Smoke tests: every shipped example must run clean end-to-end.

Each example is executed as a subprocess (its own interpreter, like a
user would run it) and its advertised output is checked.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: int = 240) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\nstderr:\n{result.stderr}"
    )
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "character counts per pipeline: [1000, 2000, 3000, 4000]" in out
    assert "TTC decomposition" in out


def test_scaling_study():
    out = run_example("scaling_study.py")
    assert out.count("[OK]") == 4
    assert "FAIL" not in out


def test_adaptive_convergence():
    out = run_example("adaptive_convergence.py")
    assert "strategy chose" in out
    assert "converged after" in out


@pytest.mark.slow
def test_replica_exchange():
    out = run_example("replica_exchange.py")
    assert "exchange acceptance" in out
    assert "basin occupancy" in out


@pytest.mark.slow
def test_adaptive_sampling():
    out = run_example("adaptive_sampling.py")
    assert "cumulative grid coverage" in out


@pytest.mark.slow
def test_concurrent_campaign():
    out = run_example("concurrent_campaign.py")
    assert "pipeline char counts: [500, 1000, 1500]" in out
