"""Tests for pilot/unit state models and entity state machines."""

import pytest

from repro.exceptions import BadParameter, StateTransitionError
from repro.pilot.description import (
    ComputePilotDescription,
    ComputeUnitDescription,
    StagingDirective,
)
from repro.pilot.session import Session
from repro.pilot.states import (
    PilotState,
    UnitState,
    validate_pilot_edge,
    validate_unit_edge,
)
from repro.pilot.unit import ComputeUnit


class TestStateTables:
    def test_happy_path_unit(self):
        order = [
            UnitState.NEW,
            UnitState.UMGR_SCHEDULING,
            UnitState.AGENT_STAGING_INPUT,
            UnitState.AGENT_SCHEDULING,
            UnitState.EXECUTING,
            UnitState.AGENT_STAGING_OUTPUT,
            UnitState.DONE,
        ]
        for current, target in zip(order, order[1:]):
            validate_unit_edge("u", current, target)

    def test_failure_reachable_from_every_non_final(self):
        for state in UnitState:
            if not state.is_final:
                validate_unit_edge("u", state, UnitState.FAILED)
                validate_unit_edge("u", state, UnitState.CANCELED)

    def test_no_skipping_states(self):
        with pytest.raises(StateTransitionError):
            validate_unit_edge("u", UnitState.NEW, UnitState.EXECUTING)
        with pytest.raises(StateTransitionError):
            validate_unit_edge("u", UnitState.EXECUTING, UnitState.DONE)

    def test_final_states_are_terminal(self):
        for final in (UnitState.DONE, UnitState.FAILED, UnitState.CANCELED):
            for target in UnitState:
                if target != final:
                    with pytest.raises(StateTransitionError):
                        validate_unit_edge("u", final, target)

    def test_pilot_edges(self):
        validate_pilot_edge("p", PilotState.NEW, PilotState.PENDING)
        validate_pilot_edge("p", PilotState.PENDING, PilotState.ACTIVE)
        validate_pilot_edge("p", PilotState.ACTIVE, PilotState.DONE)
        with pytest.raises(StateTransitionError):
            validate_pilot_edge("p", PilotState.NEW, PilotState.ACTIVE)
        with pytest.raises(StateTransitionError):
            validate_pilot_edge("p", PilotState.DONE, PilotState.ACTIVE)


class TestDescriptions:
    def test_pilot_description_validation(self):
        ComputePilotDescription(resource="x", cores=1, runtime=1).validate()
        with pytest.raises(BadParameter):
            ComputePilotDescription(resource="x", cores=0, runtime=1).validate()
        with pytest.raises(BadParameter):
            ComputePilotDescription(resource="x", cores=1, runtime=0).validate()
        with pytest.raises(BadParameter):
            ComputePilotDescription(
                resource="x", cores=1, runtime=1, mode="cloud"
            ).validate()

    def test_unit_description_validation(self):
        ComputeUnitDescription(executable="x").validate()
        with pytest.raises(BadParameter):
            ComputeUnitDescription(executable="x", cores=0).validate()
        with pytest.raises(BadParameter):
            # multi-core without mpi flag is almost always a bug
            ComputeUnitDescription(executable="x", cores=4).validate()
        ComputeUnitDescription(executable="x", cores=4, mpi=True).validate()

    def test_staging_directive_validation(self):
        StagingDirective(source="a", target="b", action="link")
        with pytest.raises(BadParameter):
            StagingDirective(source="a", target="b", action="teleport")
        with pytest.raises(BadParameter):
            StagingDirective(source="a", target="b", nbytes=-1)

    def test_modelled_runtime_prefers_model(self):
        desc = ComputeUnitDescription(
            executable="x",
            modelled_duration=5.0,
            duration_model=lambda cores, platform: 100.0 / cores,
            cores=4,
            mpi=True,
        )
        assert desc.modelled_runtime(None) == pytest.approx(25.0)

    def test_modelled_runtime_constant_fallback(self):
        desc = ComputeUnitDescription(executable="x", modelled_duration=5.0)
        assert desc.modelled_runtime(None) == 5.0


class TestComputeUnitEntity:
    def make_unit(self):
        session = Session(mode="local")
        unit = ComputeUnit(ComputeUnitDescription(executable="x"), session)
        return session, unit

    def test_advance_records_timestamps_once(self):
        session, unit = self.make_unit()
        unit.advance(UnitState.UMGR_SCHEDULING)
        t = unit.timestamps["UMGR_SCHEDULING"]
        assert t >= unit.timestamps["NEW"]
        session.close()

    def test_illegal_advance_raises(self):
        session, unit = self.make_unit()
        with pytest.raises(StateTransitionError):
            unit.advance(UnitState.DONE)
        session.close()

    def test_callbacks_receive_transitions(self):
        session, unit = self.make_unit()
        seen = []
        unit.add_callback(lambda u, s: seen.append(s))
        unit.advance(UnitState.UMGR_SCHEDULING)
        unit.advance(UnitState.AGENT_STAGING_INPUT)
        assert seen == [UnitState.UMGR_SCHEDULING, UnitState.AGENT_STAGING_INPUT]
        session.close()

    def test_duration_helper(self):
        session, unit = self.make_unit()
        unit.advance(UnitState.UMGR_SCHEDULING)
        d = unit.duration(UnitState.NEW, UnitState.UMGR_SCHEDULING)
        assert d is not None and d >= 0
        assert unit.duration(UnitState.NEW, UnitState.DONE) is None
        session.close()

    def test_profiler_records_state_events(self):
        session, unit = self.make_unit()
        unit.advance(UnitState.UMGR_SCHEDULING)
        events = session.prof.events("unit_state", unit.uid)
        assert [e.attrs["state"] for e in events] == ["UMGR_SCHEDULING"]
        session.close()
