"""The million-unit scale envelope: columnar store, sinks, bulk lifecycle.

Three layers under test:

* :class:`repro.pilot.unit_store.UnitStore` — the struct-of-arrays
  backing store behind the :class:`ComputeUnit` view;
* :mod:`repro.telemetry.sink` — the spillable event sinks the profiler
  writes through, and the bounded (aggregate-only) metrics mode that
  rides with spooling;
* ``Session(bulk_lifecycle=True)`` — batched submission and state
  transitions, which must leave virtual time untouched relative to the
  classic per-unit path.
"""

import json

import pytest

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import EnsembleOfPipelines
from repro.core.resource_handle import ResourceHandle
from repro.exceptions import ConfigurationError, StateTransitionError
from repro.pilot.description import ComputeUnitDescription
from repro.pilot.session import Session
from repro.pilot.states import UnitState
from repro.pilot.unit import ComputeUnit
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.sink import MemorySink, ProfileEvent, SpoolSink, revive
from repro.utils.ids import reset_id_counters


@pytest.fixture
def session():
    reset_id_counters()
    with Session(mode="sim", platform="xsede.comet") as s:
        yield s


def _desc(cores=1):
    return ComputeUnitDescription(
        executable="sleep", cores=cores, mpi=cores > 1
    )


# -- the columnar store ------------------------------------------------------


class TestUnitStore:
    def test_add_assigns_sequential_lazy_uids(self, session):
        store = session.unit_store
        a = store.add(_desc())
        b = store.add(_desc())
        assert store.uid(a) == "unit.000000"
        assert store.uid(b) == "unit.000001"
        assert len(store) == 2

    def test_add_bulk_matches_per_unit_serials(self, session):
        store = session.unit_store
        store.add(_desc())
        rows = store.add_bulk([_desc() for _ in range(3)])
        assert list(rows) == [1, 2, 3]
        assert [store.uid(i) for i in rows] == [
            "unit.000001", "unit.000002", "unit.000003",
        ]
        # The classic path continues from the same counter.
        assert store.uid(store.add(_desc())) == "unit.000004"

    def test_view_round_trips_every_field(self, session):
        unit = ComputeUnit(_desc(cores=4), session)
        assert unit.state is UnitState.NEW
        assert unit.description.cores == 4
        unit.pilot_uid = "pilot.000000"
        unit.slots = [3, 7, 9]
        unit.result = {"answer": 42}
        unit.sandbox = "/sim/unit.000000"
        unit.attempts = 2
        unit.exclude_node("pilot.000000", 5)
        assert unit.pilot_uid == "pilot.000000"
        assert unit.slots == [3, 7, 9]
        assert unit.result == {"answer": 42}
        assert unit.sandbox == "/sim/unit.000000"
        assert unit.attempts == 2
        assert unit.excluded_nodes == {("pilot.000000", 5)}
        unit.result = None
        unit.sandbox = None
        assert unit.result is None
        assert unit.sandbox is None
        # Cleared sparse fields release their side-table entries.
        assert unit._i not in session.unit_store._results
        assert unit._i not in session.unit_store._sandboxes

    def test_timestamps_view_is_mapping_like(self, session):
        unit = ComputeUnit(_desc(), session)
        stamps = unit.timestamps
        assert "NEW" in stamps
        assert "EXECUTING" not in stamps
        assert stamps.get("EXECUTING") is None
        assert stamps.get("EXECUTING", -1.0) == -1.0
        with pytest.raises(KeyError):
            stamps["EXECUTING"]
        unit.advance(UnitState.UMGR_SCHEDULING)
        assert set(stamps.keys()) == {"NEW", "UMGR_SCHEDULING"}
        assert len(stamps) == 2
        assert dict(stamps.items())["NEW"] == pytest.approx(
            stamps["NEW"]
        )

    def test_advance_validates_edges(self, session):
        unit = ComputeUnit(_desc(), session)
        with pytest.raises(StateTransitionError):
            unit.advance(UnitState.EXECUTING)

    def test_advance_updates_state_gauges(self, session):
        unit = ComputeUnit(_desc(), session)
        assert session.metrics.series("units.NEW").last == 1
        unit.advance(UnitState.UMGR_SCHEDULING)
        assert session.metrics.series("units.NEW").last == 0
        assert session.metrics.series("units.UMGR_SCHEDULING").last == 1

    def test_slots_are_independent_snapshots(self, session):
        unit = ComputeUnit(_desc(), session)
        unit.slots = [1, 2]
        first = unit.slots
        first.append(99)
        assert unit.slots == [1, 2]

    def test_callbacks_shared_plus_extra_order(self, session):
        store = session.unit_store
        rows = store.add_bulk([_desc(), _desc()])
        calls = []
        store.set_group_callbacks(
            rows, [lambda u, s: calls.append(("shared", u.uid, s))]
        )
        units = [ComputeUnit._of(store, i) for i in rows]
        units[0].add_callback(lambda u, s: calls.append(("extra", u.uid, s)))
        store.advance_many(units, UnitState.UMGR_SCHEDULING)
        assert calls == [
            ("shared", "unit.000000", UnitState.UMGR_SCHEDULING),
            ("extra", "unit.000000", UnitState.UMGR_SCHEDULING),
            ("shared", "unit.000001", UnitState.UMGR_SCHEDULING),
        ]

    def test_advance_many_emits_one_batch_event_per_group(self, session):
        store = session.unit_store
        rows = store.add_bulk([_desc() for _ in range(5)])
        units = [ComputeUnit._of(store, i) for i in rows]
        before = len(session.prof)
        store.advance_many(units, UnitState.UMGR_SCHEDULING)
        batch = [
            ev for ev in session.prof.events()[before:]
            if ev.name == "units_state"
        ]
        assert len(batch) == 1
        assert batch[0].uid == "unit.000000"
        assert batch[0].attrs["n"] == 5
        assert batch[0].attrs["last"] == "unit.000004"
        assert batch[0].attrs["state"] == "UMGR_SCHEDULING"
        assert all(u.state is UnitState.UMGR_SCHEDULING for u in units)
        assert session.metrics.series("units.UMGR_SCHEDULING").last == 5

    def test_advance_many_groups_by_current_state(self, session):
        store = session.unit_store
        rows = store.add_bulk([_desc() for _ in range(4)])
        units = [ComputeUnit._of(store, i) for i in rows]
        # Put half the batch one state ahead, then cancel all: two
        # homogeneous groups (NEW and UMGR_SCHEDULING), two batch events.
        store.advance_many(units[:2], UnitState.UMGR_SCHEDULING)
        before = len(session.prof)
        store.advance_many(units, UnitState.CANCELED)
        sizes = [
            ev.attrs["n"] for ev in session.prof.events()[before:]
            if ev.name == "units_state"
        ]
        assert sorted(sizes) == [2, 2]
        assert all(u.state is UnitState.CANCELED for u in units)

    def test_advance_many_validates_every_group(self, session):
        store = session.unit_store
        rows = store.add_bulk([_desc()])
        units = [ComputeUnit._of(store, i) for i in rows]
        with pytest.raises(StateTransitionError):
            store.advance_many(units, UnitState.EXECUTING)


# -- sinks -------------------------------------------------------------------


class TestSinks:
    def test_memory_sink_is_default(self, session):
        assert isinstance(session.prof.sink, MemorySink)

    def test_profile_event_row_round_trip(self):
        ev = ProfileEvent(1.5, "unit_state", "unit.000001",
                          {"state": "EXECUTING", "n": 3})
        row = ev.row()
        assert row == {"time": 1.5, "name": "unit_state",
                       "uid": "unit.000001", "state": "EXECUTING", "n": 3}
        assert revive(dict(row)) == ev

    def test_spool_sink_writes_ndjson_and_revives(self, tmp_path):
        sink = SpoolSink(tmp_path / "trace.jsonl", ring=2)
        events = [
            ProfileEvent(float(i), "tick", f"uid.{i}", {"i": i})
            for i in range(5)
        ]
        for ev in events:
            sink.append(ev)
        assert len(sink) == 5
        assert sink.tail() == events[-2:]  # bounded ring
        assert sink.events() == events
        assert sink.events(since=3) == events[3:]
        with (tmp_path / "trace.jsonl").open() as stream:
            rows = [json.loads(line) for line in stream]
        assert rows[0] == {"time": 0.0, "name": "tick", "uid": "uid.0", "i": 0}
        sink.close()

    def test_spool_sink_append_after_close_preserves_history(self, tmp_path):
        sink = SpoolSink(tmp_path / "trace.jsonl")
        sink.append(ProfileEvent(0.0, "a", "u"))
        sink.close()
        # Post-close appends (session teardown events) must not truncate.
        sink.append(ProfileEvent(1.0, "b", "u"))
        sink.close()
        assert [ev.name for ev in sink.events()] == ["a", "b"]

    def test_spool_sink_empty_reads(self, tmp_path):
        sink = SpoolSink(tmp_path / "missing" / "trace.jsonl")
        assert sink.events() == []
        assert len(sink) == 0
        sink.close()

    def test_session_spool_dir_streams_trace(self, tmp_path):
        reset_id_counters()
        with Session(mode="sim", platform="xsede.comet",
                     spool_dir=tmp_path) as s:
            ComputeUnit(_desc(), s)
            spool = s.spool_path
        assert spool is not None and spool.exists()
        names = [ev.name for ev in s.prof.events()]
        assert names[0] == "session_start"
        assert "session_close" in names


# -- bounded metrics ---------------------------------------------------------


class TestBoundedMetrics:
    def _registry(self, resident):
        clock = {"t": 0.0}
        reg = MetricsRegistry(lambda: clock["t"], resident_points=resident)
        for value in (3.0, 1.0, 4.0, 1.0, 5.0):
            clock["t"] += 1.0
            reg.sample("latency", value)
        reg.adjust("gauge", 2)
        reg.adjust("gauge", -1)
        return reg

    def test_stats_identical_with_and_without_points(self):
        resident = self._registry(True)
        bounded = self._registry(False)
        assert (resident.series("latency").stats()
                == bounded.series("latency").stats())
        assert bounded.series("latency").last == 5.0
        assert bounded.series("gauge").last == 1
        assert len(bounded.series("latency")) == 5

    def test_bounded_series_refuses_point_reads(self):
        bounded = self._registry(False)
        with pytest.raises(RuntimeError, match="latency"):
            bounded.series("latency").values()
        with pytest.raises(RuntimeError, match="latency"):
            bounded.series("latency").value_at(1.0)
        assert bounded.series("latency").points == []


# -- bulk lifecycle ----------------------------------------------------------


def _sleep(duration):
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = [f"--duration={duration}"]
    return kernel


class TwoStage(EnsembleOfPipelines):
    def stage_1(self, instance):
        return _sleep(40)

    def stage_2(self, instance):
        return _sleep(20)


def _run(n=48, **handle_kwargs):
    reset_id_counters()
    handle = ResourceHandle(
        "xsede.comet", cores=32, walltime=60, mode="sim", **handle_kwargs
    )
    handle.allocate()
    pattern = TwoStage(ensemble_size=n, pipeline_size=2)
    try:
        handle.run(pattern)
        ttc = handle.session.now()
    finally:
        handle.deallocate()
    return handle, pattern, ttc


class TestBulkLifecycle:
    def test_bulk_run_matches_classic_virtual_time(self):
        _, classic_pattern, classic_ttc = _run()
        handle, pattern, ttc = _run(bulk_lifecycle=True)
        assert ttc == classic_ttc
        assert len(pattern.units) == len(classic_pattern.units)
        assert all(u.state is UnitState.DONE for u in pattern.units)

    def test_bulk_run_emits_batch_events(self):
        handle, _, _ = _run(bulk_lifecycle=True)
        names = [ev.name for ev in handle.profile]
        assert "units_new" in names
        assert "units_state" in names
        assert "units_slots" in names
        assert "unit_new" not in names
        assert "unit_state" not in names

    def test_bulk_trace_is_much_smaller(self):
        classic_handle, _, _ = _run()
        bulk_handle, _, _ = _run(bulk_lifecycle=True)
        assert len(list(bulk_handle.profile)) * 5 < len(
            list(classic_handle.profile)
        )

    def test_bulk_matches_classic_when_wave_mixes_stages(self):
        """Regression: a scheduling pass that launches stage-1 leftovers
        and stage-2 units together produces *two* executor groups from
        one ``launch_units`` call.  The group callbacks used to close
        over the loop variable ``finish``, so every group's start
        scheduled the last group's completion — one group finished
        twice (an illegal DONE -> AGENT_STAGING_OUTPUT edge) and the
        other never finished.  100 pipelines on 32 cores hits a mixed
        wave; bulk must match classic exactly."""
        _, classic_pattern, classic_ttc = _run(n=100)
        handle, pattern, ttc = _run(n=100, bulk_lifecycle=True)
        assert ttc == classic_ttc
        assert all(u.state is UnitState.DONE for u in pattern.units)
        assert len(pattern.units) == len(classic_pattern.units) == 200

    def test_bulk_with_spool_matches_too(self, tmp_path):
        _, _, classic_ttc = _run()
        handle, pattern, ttc = _run(bulk_lifecycle=True, spool_dir=tmp_path)
        assert ttc == classic_ttc
        assert all(u.state is UnitState.DONE for u in pattern.units)
        assert handle.session.spool_path.exists()

    def test_bulk_rejects_local_mode(self):
        with pytest.raises(ConfigurationError):
            Session(mode="local", bulk_lifecycle=True)

    def test_bulk_rejects_fault_injection(self):
        with pytest.raises(ConfigurationError):
            Session(mode="sim", platform="xsede.comet",
                    bulk_lifecycle=True, node_mtbf=120.0)
        with pytest.raises(ConfigurationError):
            Session(mode="sim", platform="xsede.comet",
                    bulk_lifecycle=True, fault_rate=0.1)
