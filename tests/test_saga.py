"""Tests for the SAGA-like job API (states, fork adaptor, sim adaptor)."""

import threading

import pytest

from repro.cluster.platforms import get_platform
from repro.exceptions import BadParameter, IncorrectState, StateTransitionError
from repro.saga import Job, JobDescription, JobService, JobState
from repro.saga.adaptors.sim import SimContext
from repro.saga.states import validate_transition


class TestStates:
    def test_final_states(self):
        assert JobState.DONE.is_final
        assert JobState.FAILED.is_final
        assert JobState.CANCELED.is_final
        assert not JobState.RUNNING.is_final

    def test_legal_path(self):
        validate_transition("j", JobState.NEW, JobState.PENDING)
        validate_transition("j", JobState.PENDING, JobState.RUNNING)
        validate_transition("j", JobState.RUNNING, JobState.DONE)

    @pytest.mark.parametrize(
        "current,target",
        [
            (JobState.NEW, JobState.RUNNING),
            (JobState.NEW, JobState.DONE),
            (JobState.DONE, JobState.RUNNING),
            (JobState.FAILED, JobState.DONE),
            (JobState.RUNNING, JobState.PENDING),
        ],
    )
    def test_illegal_edges(self, current, target):
        with pytest.raises(StateTransitionError):
            validate_transition("j", current, target)


class TestDescription:
    def test_validation_catches_bad_values(self):
        with pytest.raises(BadParameter):
            JobDescription(executable="x", total_cpu_count=0).validate()
        with pytest.raises(BadParameter):
            JobDescription(executable="x", wall_time_limit=0).validate()
        with pytest.raises(BadParameter):
            JobDescription().validate()  # neither executable nor payload

    def test_payload_only_is_fine(self):
        JobDescription(payload=lambda job: None).validate()


class TestForkAdaptor:
    def test_job_really_executes(self):
        service = JobService("fork://localhost")
        job = service.create_job(JobDescription(payload=lambda j: 6 * 7))
        job.run()
        assert job.wait(timeout=10) is JobState.DONE
        assert job.result == 42
        assert job.exit_code == 0

    def test_failure_is_captured(self):
        service = JobService("fork://localhost")

        def boom(job):
            raise RuntimeError("kaput")

        job = service.create_job(JobDescription(payload=boom))
        job.run()
        assert job.wait(timeout=10) is JobState.FAILED
        assert isinstance(job.exception, RuntimeError)
        assert job.exit_code == 1

    def test_double_run_rejected(self):
        service = JobService("fork://localhost")
        job = service.create_job(JobDescription(payload=lambda j: None))
        job.run()
        job.wait(timeout=10)
        with pytest.raises(IncorrectState):
            job.run()

    def test_state_callbacks_fire_in_order(self):
        service = JobService("fork://localhost")
        states = []
        job = service.create_job(JobDescription(payload=lambda j: None))
        job.add_callback(lambda j, s: states.append(s))
        job.run()
        job.wait(timeout=10)
        assert states == [JobState.PENDING, JobState.RUNNING, JobState.DONE]

    def test_cancel_before_run(self):
        service = JobService("fork://localhost")
        job = service.create_job(JobDescription(payload=lambda j: None))
        job.cancel()
        assert job.state is JobState.CANCELED

    def test_cancel_cooperates_with_running_payload(self):
        service = JobService("fork://localhost")
        release = threading.Event()

        def payload(job):
            release.wait(5)

        job = service.create_job(JobDescription(payload=payload))
        job.run()
        job.cancel()
        release.set()
        assert job.wait(timeout=10) is JobState.CANCELED

    def test_timestamps_recorded(self):
        service = JobService("fork://localhost")
        job = service.create_job(JobDescription(payload=lambda j: None))
        job.run()
        job.wait(timeout=10)
        assert set(job.timestamps) == {"PENDING", "RUNNING", "DONE"}
        assert job.timestamps["DONE"] >= job.timestamps["PENDING"]

    def test_close_cancels_open_jobs(self):
        service = JobService("fork://localhost")
        job = service.create_job(JobDescription(payload=lambda j: None))
        service.close()
        assert job.state is JobState.CANCELED


class TestSimAdaptor:
    def make_context(self, platform="xsede.comet"):
        return SimContext(platform=get_platform(platform))

    def test_requires_context(self):
        with pytest.raises(BadParameter):
            JobService("sim://xsede.comet")

    def test_unknown_scheme_rejected(self):
        with pytest.raises(BadParameter):
            JobService("ssh://somewhere")

    def test_job_runs_in_virtual_time(self):
        context = self.make_context()
        service = JobService("sim://xsede.comet", context=context)
        job = service.create_job(
            JobDescription(executable="x", total_cpu_count=48,
                           wall_time_limit=1000.0, modelled_duration=10.0)
        )
        job.run()
        context.sim.run()
        assert job.state is JobState.DONE
        # submit latency (1s) + duration (10s)
        assert job.timestamps["DONE"] == pytest.approx(11.0)

    def test_walltime_timeout_fails_job(self):
        context = self.make_context()
        service = JobService("sim://xsede.comet", context=context)
        job = service.create_job(
            JobDescription(executable="x", wall_time_limit=5.0,
                           modelled_duration=None)
        )
        job.run()
        context.sim.run()
        assert job.state is JobState.FAILED

    def test_cancel_releases_allocation(self):
        context = self.make_context()
        service = JobService("sim://xsede.comet", context=context)
        job = service.create_job(
            JobDescription(executable="x", total_cpu_count=24,
                           wall_time_limit=1000.0)
        )
        job.run()
        context.sim.run(until=2.0)
        assert job.state is JobState.RUNNING
        job.cancel()
        assert job.state is JobState.CANCELED
        assert context.batch.free_nodes == context.platform.nodes

    def test_payload_runs_at_job_start(self):
        context = self.make_context()
        service = JobService("sim://xsede.comet", context=context)
        started_at = []
        job = service.create_job(
            JobDescription(
                payload=lambda j: started_at.append(context.sim.now),
                wall_time_limit=100.0,
                modelled_duration=1.0,
            )
        )
        job.run()
        context.sim.run()
        assert started_at == [pytest.approx(1.0)]  # after submit latency

    def test_wait_returns_immediately_under_simulation(self):
        context = self.make_context()
        service = JobService("sim://xsede.comet", context=context)
        job = service.create_job(
            JobDescription(executable="x", wall_time_limit=100.0,
                           modelled_duration=1.0)
        )
        job.run()
        assert job.wait() in (JobState.PENDING, JobState.NEW)
