"""Tests for the Langevin integrator, engine, trajectories and systems."""

import numpy as np
import pytest

from repro.md.engine import MDEngine
from repro.md.integrators import LangevinIntegrator
from repro.md.potentials import DoubleWell2D, Harmonic
from repro.md.system import MDSystem, alanine_dipeptide_surface, mueller_brown_system
from repro.md.trajectory import Trajectory


class TestLangevinIntegrator:
    def test_parameter_validation(self):
        potential = Harmonic()
        with pytest.raises(ValueError):
            LangevinIntegrator(potential, dt=0.0)
        with pytest.raises(ValueError):
            LangevinIntegrator(potential, friction=-1.0)
        with pytest.raises(ValueError):
            LangevinIntegrator(potential, temperature=-1.0)

    def test_zero_temperature_relaxes_to_minimum(self):
        integrator = LangevinIntegrator(
            Harmonic(k=1.0), dt=0.05, friction=2.0, temperature=0.0,
            rng=np.random.default_rng(0),
        )
        xs, _ = integrator.run(np.array([2.0, -2.0]), nsteps=2000,
                               v0=np.zeros(2))
        assert np.linalg.norm(xs[-1]) < 1e-3

    def test_harmonic_equilibrium_variance_matches_temperature(self):
        """Boltzmann statistics: Var(x) = T/k for a harmonic well."""
        k, temperature = 2.0, 1.5
        integrator = LangevinIntegrator(
            Harmonic(k=k), dt=0.05, friction=1.0, temperature=temperature,
            rng=np.random.default_rng(42),
        )
        xs, _ = integrator.run(np.zeros(2), nsteps=60_000, stride=5)
        burn = len(xs) // 5
        variance = xs[burn:].var(axis=0).mean()
        assert variance == pytest.approx(temperature / k, rel=0.1)

    def test_velocity_variance_matches_temperature(self):
        temperature = 0.8
        integrator = LangevinIntegrator(
            Harmonic(k=1.0), dt=0.05, friction=1.0, temperature=temperature,
            rng=np.random.default_rng(7),
        )
        _, vs = integrator.run(np.zeros(2), nsteps=60_000, stride=5)
        burn = len(vs) // 5
        assert vs[burn:].var(axis=0).mean() == pytest.approx(temperature, rel=0.1)

    def test_run_shapes_and_stride(self):
        integrator = LangevinIntegrator(Harmonic(), rng=np.random.default_rng(0))
        xs, vs = integrator.run(np.zeros(2), nsteps=100, stride=10)
        assert xs.shape == vs.shape == (10, 2)

    def test_run_argument_validation(self):
        integrator = LangevinIntegrator(Harmonic())
        with pytest.raises(ValueError):
            integrator.run(np.zeros(2), nsteps=0)
        with pytest.raises(ValueError):
            integrator.run(np.zeros(2), nsteps=10, stride=0)

    def test_step_returns_new_arrays(self):
        integrator = LangevinIntegrator(Harmonic(), rng=np.random.default_rng(0))
        x0, v0 = np.ones(2), np.zeros(2)
        x1, v1 = integrator.step(x0, v0)
        assert x1 is not x0 and v1 is not v0
        assert np.all(x0 == 1.0)  # inputs untouched


class TestMDEngine:
    def test_run_returns_trajectory_with_energies(self):
        engine = MDEngine(alanine_dipeptide_surface(), seed=1)
        trajectory = engine.run(nsteps=200, stride=10)
        assert trajectory.nframes == 20
        expected = engine.system.potential.energy(trajectory.positions)
        assert np.allclose(trajectory.energies, expected)

    def test_seed_reproducibility(self):
        engine = MDEngine(alanine_dipeptide_surface())
        a = engine.run(nsteps=100, seed=5)
        b = engine.run(nsteps=100, seed=5)
        c = engine.run(nsteps=100, seed=6)
        assert np.array_equal(a.positions, b.positions)
        assert not np.array_equal(a.positions, c.positions)

    def test_degenerate_stride_keeps_one_frame(self):
        engine = MDEngine(alanine_dipeptide_surface(), seed=0)
        trajectory = engine.run(nsteps=5, stride=100)
        assert trajectory.nframes == 1

    def test_custom_start_point(self):
        engine = MDEngine(alanine_dipeptide_surface(), seed=0)
        trajectory = engine.run(nsteps=10, stride=1, x0=np.array([1.0, 0.0]),
                                temperature=1e-6)
        assert np.linalg.norm(trajectory.positions[0] - [1.0, 0.0]) < 0.2

    def test_modelled_seconds(self):
        t1 = MDEngine.modelled_seconds(3000, 2881, cores=1)
        assert t1 == pytest.approx(3000 * 2881 / 4e4)
        assert MDEngine.modelled_seconds(3000, 2881, cores=4) == pytest.approx(t1 / 4)
        with pytest.raises(ValueError):
            MDEngine.modelled_seconds(-1, 10)
        with pytest.raises(ValueError):
            MDEngine.modelled_seconds(10, 10, cores=0)


class TestSystems:
    def test_alanine_surface_metadata(self):
        system = alanine_dipeptide_surface()
        assert system.natoms == 2881  # the paper's atom count
        assert isinstance(system.potential, DoubleWell2D)
        assert system.x0.shape == (2,)

    def test_mueller_brown_system(self):
        system = mueller_brown_system()
        assert system.potential.energy(system.x0) < -100

    def test_x0_shape_validated(self):
        with pytest.raises(ValueError, match="x0 shape"):
            MDSystem(name="bad", potential=Harmonic(), x0=np.zeros(3))


class TestTrajectory:
    def make(self, frames=10, seed=0):
        rng = np.random.default_rng(seed)
        positions = rng.normal(size=(frames, 2))
        return Trajectory(
            positions=positions,
            energies=rng.normal(size=frames),
            temperature=1.2,
            dt=0.01,
            stride=5,
            meta={"engine": "test", "replica": "3"},
        )

    def test_save_load_round_trip(self, tmp_path):
        trajectory = self.make()
        path = trajectory.save(tmp_path / "t.npz")
        loaded = Trajectory.load(path)
        assert np.array_equal(loaded.positions, trajectory.positions)
        assert np.array_equal(loaded.energies, trajectory.energies)
        assert loaded.temperature == trajectory.temperature
        assert loaded.stride == trajectory.stride
        assert loaded.meta == {"engine": "test", "replica": "3"}

    def test_save_appends_npz_suffix(self, tmp_path):
        trajectory = self.make()
        path = trajectory.save(tmp_path / "bare")
        assert path.suffix == ".npz"
        assert path.exists()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Trajectory(positions=np.zeros(5), energies=np.zeros(5),
                       temperature=1.0)
        with pytest.raises(ValueError):
            Trajectory(positions=np.zeros((5, 2)), energies=np.zeros(4),
                       temperature=1.0)

    def test_final_accessors(self):
        trajectory = self.make()
        assert np.array_equal(trajectory.final_position,
                              trajectory.positions[-1])
        assert trajectory.final_energy == trajectory.energies[-1]

    def test_extend_concatenates(self):
        a, b = self.make(frames=4, seed=0), self.make(frames=6, seed=1)
        joined = a.extend(b)
        assert joined.nframes == 10
        assert np.array_equal(joined.positions[:4], a.positions)

    def test_extend_rejects_dim_mismatch(self):
        a = self.make()
        b = Trajectory(positions=np.zeros((3, 3)), energies=np.zeros(3),
                       temperature=1.0)
        with pytest.raises(ValueError):
            a.extend(b)
