"""Tests for the built-in kernel library, executing payloads for real."""

import numpy as np
import pytest

from repro.cluster.platforms import get_platform
from repro.core.kernel_plugin import Kernel
from repro.exceptions import KernelError
from repro.md.trajectory import Trajectory
from repro.pilot.agent.executor import TaskContext
from repro.pilot.description import ComputeUnitDescription


def make_ctx(tmp_path, args: dict[str, str], cores: int = 1) -> TaskContext:
    description = ComputeUnitDescription(
        executable="t",
        arguments=[f"--{k}={v}" for k, v in args.items()],
        cores=cores,
        mpi=cores > 1,
    )
    return TaskContext(
        description=description,
        sandbox=tmp_path,
        cores=cores,
        uid="unit.test",
        args=dict(args),
    )


def run_kernel(name, tmp_path, args, cores=1):
    kernel = Kernel(name=name)
    ctx = make_ctx(tmp_path, args, cores=cores)
    return kernel._plugin.execute(ctx)


def model_duration(name, args, cores=1, platform="xsede.comet"):
    kernel = Kernel(name=name)
    return kernel._plugin.duration(cores, get_platform(platform), args)


class TestMiscKernels:
    def test_mkfile_creates_exact_size(self, tmp_path):
        out = run_kernel("misc.mkfile", tmp_path,
                         {"size": "512", "filename": "f.txt"})
        assert out == 512
        assert (tmp_path / "f.txt").stat().st_size == 512

    def test_mkfile_rejects_negative(self, tmp_path):
        with pytest.raises(KernelError):
            run_kernel("misc.mkfile", tmp_path,
                       {"size": "-1", "filename": "f.txt"})

    def test_ccount_counts_characters(self, tmp_path):
        (tmp_path / "in.txt").write_text("hello world")
        out = run_kernel("misc.ccount", tmp_path,
                         {"inputfile": "in.txt", "outputfile": "n.txt"})
        assert out == 11
        assert (tmp_path / "n.txt").read_text().strip() == "11"

    def test_ccount_missing_input(self, tmp_path):
        with pytest.raises(KernelError, match="missing"):
            run_kernel("misc.ccount", tmp_path,
                       {"inputfile": "absent.txt", "outputfile": "n.txt"})

    def test_mkfile_ccount_round_trip(self, tmp_path):
        run_kernel("misc.mkfile", tmp_path, {"size": "777", "filename": "d.txt"})
        out = run_kernel("misc.ccount", tmp_path,
                         {"inputfile": "d.txt", "outputfile": "n.txt"})
        assert out == 777

    def test_sleep_returns_duration(self, tmp_path):
        assert run_kernel("misc.sleep", tmp_path, {"duration": "0"}) == 0.0
        with pytest.raises(KernelError):
            run_kernel("misc.sleep", tmp_path, {"duration": "-1"})

    def test_echo_writes_message(self, tmp_path):
        run_kernel("misc.echo", tmp_path,
                   {"message": "hi there", "outputfile": "m.txt"})
        assert (tmp_path / "m.txt").read_text() == "hi there\n"

    def test_mkfile_duration_scales_with_size(self):
        small = model_duration("misc.mkfile", {"size": "1000", "filename": "f"})
        large = model_duration("misc.mkfile", {"size": "100000000", "filename": "f"})
        assert large > small

    def test_sleep_duration_model_is_exact(self):
        assert model_duration("misc.sleep", {"duration": "42"}) == 42.0


class TestMDKernels:
    def test_amber_produces_trajectory(self, tmp_path):
        out = run_kernel("md.amber", tmp_path,
                         {"nsteps": "200", "outfile": "t.npz", "seed": "1"})
        trajectory = Trajectory.load(tmp_path / "t.npz")
        assert trajectory.nframes == out["nframes"] == 20
        assert trajectory.dim == 2
        assert np.isfinite(trajectory.energies).all()

    def test_duration_ps_conversion(self, tmp_path):
        out = run_kernel("md.amber", tmp_path,
                         {"duration-ps": "1", "outfile": "t.npz",
                          "stride": "100", "seed": "1"})
        # 1 ps = 500 steps, stride 100 -> 5 frames.
        assert out["nframes"] == 5

    def test_nsteps_required(self, tmp_path):
        with pytest.raises(KernelError, match="nsteps"):
            run_kernel("md.amber", tmp_path, {"outfile": "t.npz"})

    def test_start_from_prior_trajectory(self, tmp_path):
        run_kernel("md.amber", tmp_path,
                   {"nsteps": "100", "outfile": "first.npz", "seed": "1"})
        first = Trajectory.load(tmp_path / "first.npz")
        run_kernel("md.amber", tmp_path,
                   {"nsteps": "10", "outfile": "second.npz", "seed": "2",
                    "startfile": "first.npz", "stride": "1",
                    "temperature": "0.0001"})
        second = Trajectory.load(tmp_path / "second.npz")
        # At ~zero temperature the continuation stays near the restart point.
        assert np.linalg.norm(second.positions[0] - first.final_position) < 0.5

    def test_start_from_coco_points(self, tmp_path):
        points = np.array([[0.5, 0.5], [-0.5, -0.5]])
        np.savez(tmp_path / "coco.npz", new_points=points)
        run_kernel("md.amber", tmp_path,
                   {"nsteps": "10", "outfile": "t.npz", "stride": "1",
                    "startfile": "coco.npz", "startindex": "1",
                    "temperature": "0.0001", "seed": "3"})
        trajectory = Trajectory.load(tmp_path / "t.npz")
        assert np.linalg.norm(trajectory.positions[0] - points[1]) < 0.5

    def test_missing_startfile_fails(self, tmp_path):
        with pytest.raises(KernelError, match="start file"):
            run_kernel("md.amber", tmp_path,
                       {"nsteps": "10", "outfile": "t.npz",
                        "startfile": "ghost.npz"})

    def test_unknown_system_rejected(self, tmp_path):
        with pytest.raises(KernelError, match="unknown MD system"):
            run_kernel("md.amber", tmp_path,
                       {"nsteps": "10", "outfile": "t.npz",
                        "system": "villin"})

    def test_duration_model_scales(self):
        base = model_duration("md.amber", {"nsteps": "3000"}, cores=1)
        wide = model_duration("md.amber", {"nsteps": "3000"}, cores=16)
        assert base == pytest.approx(3000 * 2881 / 4.0e4)
        assert wide == pytest.approx(base / 16)

    def test_gromacs_modelled_faster_than_amber(self):
        amber = Kernel(name="md.amber")
        amber.arguments = ["--nsteps=3000"]
        gromacs = Kernel(name="md.gromacs")
        gromacs.arguments = ["--nsteps=3000"]
        platform = get_platform("xsede.comet")
        amber_desc = amber.bind("xsede.comet", platform)
        gromacs_desc = gromacs.bind("xsede.comet", platform)
        assert gromacs_desc.duration_model(1, platform) < amber_desc.duration_model(
            1, platform
        )

    def test_deterministic_given_seed(self, tmp_path):
        run_kernel("md.amber", tmp_path,
                   {"nsteps": "100", "outfile": "a.npz", "seed": "99"})
        run_kernel("md.amber", tmp_path,
                   {"nsteps": "100", "outfile": "b.npz", "seed": "99"})
        a = Trajectory.load(tmp_path / "a.npz")
        b = Trajectory.load(tmp_path / "b.npz")
        assert np.array_equal(a.positions, b.positions)


class TestAnalysisKernels:
    def _write_trajs(self, tmp_path, n=3, frames=40, seed=0):
        rng = np.random.default_rng(seed)
        for i in range(n):
            positions = rng.normal(size=(frames, 2))
            trajectory = Trajectory(
                positions=positions,
                energies=np.zeros(frames),
                temperature=1.0,
            )
            trajectory.save(tmp_path / f"traj_{i:03d}.npz")

    def test_coco_emits_requested_points(self, tmp_path):
        self._write_trajs(tmp_path)
        out = run_kernel("analysis.coco", tmp_path,
                         {"pattern": "traj_*.npz", "outfile": "coco.npz",
                          "npoints": "4"})
        assert out["n_new_points"] == 4
        with np.load(tmp_path / "coco.npz") as data:
            assert data["new_points"].shape == (4, 2)

    def test_coco_requires_trajectories(self, tmp_path):
        with pytest.raises(KernelError, match="no trajectory files"):
            run_kernel("analysis.coco", tmp_path,
                       {"pattern": "traj_*.npz", "outfile": "c.npz"})

    def test_lsdmap_eigenvalues(self, tmp_path):
        self._write_trajs(tmp_path)
        out = run_kernel("analysis.lsdmap", tmp_path,
                         {"pattern": "traj_*.npz", "outfile": "lsd.npz",
                          "nev": "3"})
        eigenvalues = np.array(out["eigenvalues"])
        assert eigenvalues[0] == pytest.approx(1.0, abs=1e-6)
        assert np.all(eigenvalues <= 1.0 + 1e-9)

    def test_lsdmap_subsamples_large_sets(self, tmp_path):
        self._write_trajs(tmp_path, n=2, frames=200)
        out = run_kernel("analysis.lsdmap", tmp_path,
                         {"pattern": "traj_*.npz", "outfile": "lsd.npz",
                          "max-samples": "50"})
        assert out["n_samples"] == 50

    def test_analysis_durations_grow_with_frames(self):
        for name in ("analysis.coco", "analysis.lsdmap"):
            small = model_duration(name, {"nframes": "100"})
            large = model_duration(name, {"nframes": "100000"})
            assert large > small
            # Serial: cores do not help.
            assert model_duration(name, {"nframes": "1000"}, cores=64) == (
                model_duration(name, {"nframes": "1000"}, cores=1)
            )


class TestExchangeKernel:
    def _write_replicas(self, tmp_path, n=4, seed=0):
        rng = np.random.default_rng(seed)
        for i in range(n):
            positions = rng.normal(size=(5, 2))
            trajectory = Trajectory(
                positions=positions,
                energies=rng.normal(size=5),
                temperature=1.0 + 0.2 * i,
            )
            trajectory.save(tmp_path / f"replica_{i:03d}.npz")

    def test_global_exchange(self, tmp_path):
        self._write_replicas(tmp_path)
        out = run_kernel("exchange.temperature", tmp_path,
                         {"mode": "global", "pattern": "replica_*.npz",
                          "tmin": "1.0", "tmax": "2.0", "seed": "5",
                          "outfile": "ex.npz"})
        assert out["attempted"] == 2  # phase 0 over 4 replicas
        with np.load(tmp_path / "ex.npz") as data:
            permutation = data["permutation"]
            assert sorted(permutation.tolist()) == [0, 1, 2, 3]

    def test_global_exchange_needs_two(self, tmp_path):
        self._write_replicas(tmp_path, n=1)
        with pytest.raises(KernelError, match=">= 2"):
            run_kernel("exchange.temperature", tmp_path,
                       {"mode": "global", "pattern": "replica_*.npz"})

    def test_phase_one_pairs_odd_neighbours(self, tmp_path):
        self._write_replicas(tmp_path, n=4)
        out = run_kernel("exchange.temperature", tmp_path,
                         {"mode": "global", "pattern": "replica_*.npz",
                          "phase": "1", "seed": "5", "outfile": "ex.npz"})
        assert out["attempted"] == 1  # only the (1,2) middle pair

    def test_pair_exchange(self, tmp_path):
        self._write_replicas(tmp_path, n=2)
        out = run_kernel("exchange.temperature", tmp_path,
                         {"mode": "pair", "file-a": "replica_000.npz",
                          "file-b": "replica_001.npz", "seed": "1",
                          "outfile": "ex.npz"})
        assert isinstance(out["swapped"], bool)

    def test_unknown_mode_rejected(self, tmp_path):
        self._write_replicas(tmp_path, n=2)
        with pytest.raises(KernelError, match="unknown exchange mode"):
            run_kernel("exchange.temperature", tmp_path, {"mode": "ring"})

    def test_duration_scales_with_replicas(self):
        small = model_duration("exchange.temperature", {"nreplicas": "20"})
        large = model_duration("exchange.temperature", {"nreplicas": "2560"})
        assert large > small
        pair = model_duration("exchange.temperature", {"mode": "pair"})
        assert pair <= small
