"""Tests for CoCo and LSDMap analyses, including scientific behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.md.analysis.coco import coco
from repro.md.analysis.lsdmap import lsdmap
from repro.md.engine import MDEngine
from repro.md.system import alanine_dipeptide_surface


class TestCoCo:
    def cluster(self, center, n=50, seed=0, scale=0.1):
        rng = np.random.default_rng(seed)
        return center + rng.normal(scale=scale, size=(n, 2))

    def test_components_are_orthonormal(self):
        samples = self.cluster([0, 0], n=200)
        result = coco(samples, n_points=2)
        gram = result.components @ result.components.T
        assert np.allclose(gram, np.eye(len(result.components)), atol=1e-8)

    def test_explained_variance_descending(self):
        rng = np.random.default_rng(0)
        samples = rng.normal(size=(100, 2)) * np.array([3.0, 0.5])
        result = coco(samples)
        assert result.explained_variance[0] >= result.explained_variance[-1]

    def test_new_points_avoid_sampled_region(self):
        samples = self.cluster([0, 0], n=300, scale=0.2)
        result = coco(samples, n_points=3, grid_bins=8)
        # New points are frontier points: farther from the sample mean than
        # the typical sample.
        typical = np.linalg.norm(samples - samples.mean(axis=0), axis=1).mean()
        for point in result.new_points:
            assert np.linalg.norm(point - samples.mean(axis=0)) > typical

    def test_requested_point_count_honoured(self):
        samples = self.cluster([0, 0])
        for n_points in (1, 5, 17):
            result = coco(samples, n_points=n_points)
            assert result.new_points.shape == (n_points, 2)

    def test_occupancy_fraction(self):
        # Two far-apart tight clusters: the grid spans the gap, and most of
        # it is empty space between the clusters.
        samples = np.vstack(
            [self.cluster([0, 0], scale=0.05), self.cluster([10, 10], scale=0.05)]
        )
        sparse = coco(samples, grid_bins=10)
        assert 0.0 < sparse.occupancy <= 0.2
        # One diffuse cluster filling its own bounding box is much denser.
        dense = coco(self.cluster([0, 0], n=400, scale=1.0), grid_bins=4)
        assert dense.occupancy > sparse.occupancy

    def test_saturated_grid_falls_back_to_least_visited(self):
        rng = np.random.default_rng(1)
        samples = rng.uniform(-1, 1, size=(4000, 2))
        result = coco(samples, n_points=2, grid_bins=3)
        assert result.occupancy == 1.0
        assert result.new_points.shape == (2, 2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            coco(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            coco(np.zeros(5))
        samples = self.cluster([0, 0])
        with pytest.raises(ValueError):
            coco(samples, n_points=0)
        with pytest.raises(ValueError):
            coco(samples, grid_bins=1)

    def test_coco_discovers_unsampled_basin(self):
        """The Fig. 7/8 science: iterating MD + CoCo finds the second well."""
        system = alanine_dipeptide_surface(barrier=6.0)
        engine = MDEngine(system)
        # Iteration 1: cold simulations stuck in the left basin.
        trajectories = [
            engine.run(400, temperature=0.5, stride=10, seed=i) for i in range(4)
        ]
        pooled = np.vstack([t.positions for t in trajectories])
        assert pooled[:, 0].max() < 0.5  # nothing crossed yet
        result = coco(pooled, n_points=4, grid_bins=10)
        # CoCo proposes frontier starts; new rounds launched from them reach
        # farther right than anything sampled so far.
        assert result.new_points[:, 0].max() > pooled[:, 0].max()

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=100))
    def test_property_new_points_finite(self, seed):
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(60, 2))
        result = coco(samples, n_points=3)
        assert np.isfinite(result.new_points).all()


class TestLSDMap:
    def two_clusters(self, n=40, gap=6.0, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.normal(scale=0.3, size=(n, 2))
        b = rng.normal(scale=0.3, size=(n, 2)) + np.array([gap, 0.0])
        return np.vstack([a, b])

    def test_leading_eigenvalue_is_one_with_constant_vector(self):
        samples = self.two_clusters()
        result = lsdmap(samples)
        assert result.eigenvalues[0] == pytest.approx(1.0, abs=1e-8)
        first = result.eigenvectors[:, 0]
        assert np.allclose(first, first[0], atol=1e-6)

    def test_eigenvalues_descending_in_unit_interval(self):
        result = lsdmap(self.two_clusters())
        eigenvalues = result.eigenvalues
        assert np.all(np.diff(eigenvalues) <= 1e-9)
        assert np.all(eigenvalues <= 1.0 + 1e-9)
        assert np.all(eigenvalues >= -1.0 - 1e-9)

    def test_dc1_separates_clusters(self):
        n = 40
        result = lsdmap(self.two_clusters(n=n))
        dc1 = result.dc1
        # The first non-trivial coordinate splits the two clusters by sign.
        assert (dc1[:n] > 0).all() != (dc1[n:] > 0).all()
        assert np.sign(np.median(dc1[:n])) != np.sign(np.median(dc1[n:]))

    def test_spectral_gap_reflects_two_states(self):
        # A cluster-scale bandwidth (not the median, which is dominated by
        # the inter-cluster gap) resolves the two-state structure: lambda_2
        # near 1 (slow inter-cluster switch), lambda_3 well below.
        result = lsdmap(self.two_clusters(gap=8.0), n_evecs=4, epsilon=0.5)
        assert result.eigenvalues[1] > 0.9
        assert result.eigenvalues[2] < result.eigenvalues[1] - 0.05

    def test_explicit_epsilon(self):
        samples = self.two_clusters()
        result = lsdmap(samples, epsilon=1.0)
        assert result.epsilon.tolist() == [1.0]
        with pytest.raises(ValueError):
            lsdmap(samples, epsilon=0.0)

    def test_local_scaling_mode(self):
        samples = self.two_clusters()
        result = lsdmap(samples, local_scaling=True, k_neighbors=5)
        assert len(result.epsilon) == len(samples)
        assert result.eigenvalues[0] == pytest.approx(1.0, abs=1e-6)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            lsdmap(np.zeros((2, 2)))
        with pytest.raises(ValueError):
            lsdmap(np.zeros(10))

    def test_n_evecs_capped_at_n(self):
        samples = self.two_clusters(n=3)
        result = lsdmap(samples, n_evecs=100)
        assert result.eigenvectors.shape[1] == 6

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=50))
    def test_property_markov_spectrum(self, seed):
        """For any sample cloud: top eigenvalue 1, spectrum within [-1, 1]."""
        rng = np.random.default_rng(seed)
        samples = rng.normal(size=(25, 2))
        result = lsdmap(samples, n_evecs=5)
        assert result.eigenvalues[0] == pytest.approx(1.0, abs=1e-6)
        assert np.all(np.abs(result.eigenvalues) <= 1.0 + 1e-9)
