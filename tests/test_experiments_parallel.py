"""Tests for the parallel sweep runner and the on-disk run cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import RunCache, run_sweep

#: Evaluation counter for cache tests (serial, in-process evaluations only).
_CALLS: list[dict] = []


def _square_point(point: dict) -> dict:
    _CALLS.append(point)
    return {"x": point["x"], "y": point["x"] * point["x"]}


def _identity_point(point: dict) -> dict:
    return dict(point)


class TestRunSweep:
    def test_serial_preserves_point_order(self):
        points = [{"x": x} for x in (3, 1, 2)]
        records = run_sweep(_identity_point, points)
        assert [r["x"] for r in records] == [3, 1, 2]

    def test_parallel_matches_serial_record_for_record(self):
        points = [{"x": x} for x in range(8)]
        serial = run_sweep(_square_point, points)
        parallel = run_sweep(_square_point, points, parallel=4)
        assert parallel == serial

    def test_empty_sweep(self):
        assert run_sweep(_identity_point, []) == []

    def test_parallel_one_falls_back_to_serial(self):
        points = [{"x": 5}]
        assert run_sweep(_square_point, points, parallel=4) == [
            {"x": 5, "y": 25}
        ]


class TestRunCache:
    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"resource": "xsede.stampede", "cores": 16, "seed": 0}
        assert cache.get(point) is None
        cache.put(point, {"ttc": 42.0})
        assert cache.get(point) == {"ttc": 42.0}
        assert len(cache) == 1

    def test_key_covers_every_field(self, tmp_path):
        cache = RunCache(tmp_path)
        base = {"resource": "xsede.stampede", "cores": 16, "seed": 0}
        for variant in (
            {**base, "cores": 32},
            {**base, "seed": 1},
            {**base, "resource": "xsede.comet"},
            {**base, "duration_ps": 6.0},
        ):
            assert cache.key(variant) != cache.key(base)

    def test_key_is_order_insensitive(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.key({"a": 1, "b": 2}) == cache.key({"b": 2, "a": 1})

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"cores": 8, "seed": 3}
        cache.put(point, {"ttc": 1.0})
        cache.path(point).write_text("{ not json")
        assert cache.get(point) is None

    def test_mismatched_stored_point_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"cores": 8, "seed": 3}
        cache.put(point, {"ttc": 1.0})
        cache.path(point).write_text(
            json.dumps({"point": {"cores": 9, "seed": 3},
                        "record": {"ttc": 1.0}})
        )
        assert cache.get(point) is None

    def test_sweep_skips_cached_points(self, tmp_path):
        cache = RunCache(tmp_path)
        points = [{"x": x} for x in range(5)]
        _CALLS.clear()
        first = run_sweep(_square_point, points, cache=cache)
        assert len(_CALLS) == 5
        again = run_sweep(_square_point, points, cache=cache)
        assert len(_CALLS) == 5  # no re-evaluation
        assert again == first
        # A new point evaluates exactly once more.
        extended = run_sweep(
            _square_point, points + [{"x": 99}], cache=cache
        )
        assert len(_CALLS) == 6
        assert extended[:5] == first


class TestFigureSweeps:
    """S4: ``--parallel`` sweeps match serial sweeps record-for-record."""

    CORES = (4, 8, 16)

    @pytest.mark.parametrize("figure", ["fig5", "fig7"])
    def test_parallel_figure_matches_serial(self, figure):
        from repro.experiments import fig5, fig7

        module = {"fig5": fig5, "fig7": fig7}[figure]
        small = (
            {"replicas": 16} if figure == "fig5" else {"simulations": 16}
        )
        serial = module.run(core_counts=self.CORES, **small)
        parallel = module.run(core_counts=self.CORES, parallel=4, **small)
        assert parallel.rows == serial.rows
        assert parallel.claims == serial.claims

    def test_figure_cache_reuses_points(self, tmp_path):
        from repro.experiments import fig5

        cold = fig5.run(
            replicas=16, core_counts=self.CORES, cache_dir=tmp_path
        )
        assert len(list(tmp_path.glob("*.json"))) == len(self.CORES)
        warm = fig5.run(
            replicas=16, core_counts=self.CORES, cache_dir=tmp_path
        )
        assert warm.rows == cold.rows
        assert warm.claims == cold.claims
