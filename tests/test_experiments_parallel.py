"""Tests for the parallel sweep runner and the on-disk run cache."""

from __future__ import annotations

import json

import pytest

from repro.experiments.parallel import RunCache, run_sweep

#: Evaluation counter for cache tests (serial, in-process evaluations only).
_CALLS: list[dict] = []


def _square_point(point: dict) -> dict:
    _CALLS.append(point)
    return {"x": point["x"], "y": point["x"] * point["x"]}


def _identity_point(point: dict) -> dict:
    return dict(point)


class TestRunSweep:
    def test_serial_preserves_point_order(self):
        points = [{"x": x} for x in (3, 1, 2)]
        records = run_sweep(_identity_point, points)
        assert [r["x"] for r in records] == [3, 1, 2]

    def test_parallel_matches_serial_record_for_record(self):
        points = [{"x": x} for x in range(8)]
        serial = run_sweep(_square_point, points)
        parallel = run_sweep(_square_point, points, parallel=4)
        assert parallel == serial

    def test_empty_sweep(self):
        assert run_sweep(_identity_point, []) == []

    def test_parallel_one_falls_back_to_serial(self):
        points = [{"x": 5}]
        assert run_sweep(_square_point, points, parallel=4) == [
            {"x": 5, "y": 25}
        ]


class TestRunCache:
    def test_roundtrip(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"resource": "xsede.stampede", "cores": 16, "seed": 0}
        assert cache.get(point) is None
        cache.put(point, {"ttc": 42.0})
        assert cache.get(point) == {"ttc": 42.0}
        assert len(cache) == 1

    def test_key_covers_every_field(self, tmp_path):
        cache = RunCache(tmp_path)
        base = {"resource": "xsede.stampede", "cores": 16, "seed": 0}
        for variant in (
            {**base, "cores": 32},
            {**base, "seed": 1},
            {**base, "resource": "xsede.comet"},
            {**base, "duration_ps": 6.0},
        ):
            assert cache.key(variant) != cache.key(base)

    def test_key_is_order_insensitive(self, tmp_path):
        cache = RunCache(tmp_path)
        assert cache.key({"a": 1, "b": 2}) == cache.key({"b": 2, "a": 1})

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"cores": 8, "seed": 3}
        cache.put(point, {"ttc": 1.0})
        cache.path(point).write_text("{ not json")
        assert cache.get(point) is None

    def test_truncated_entry_recomputes_and_overwrites(self, tmp_path):
        """A file cut off mid-write (host died between write and rename,
        disk full...) must behave as a miss, and the recomputed record
        must overwrite the damaged file."""
        cache = RunCache(tmp_path)
        point = {"x": 7}
        cache.put(point, {"x": 7, "y": 49})
        path = cache.path(point)
        intact = path.read_text()
        path.write_text(intact[: len(intact) // 2])  # hand-truncate
        assert cache.get(point) is None
        _CALLS.clear()
        records = run_sweep(_square_point, [point], cache=cache)
        assert records == [{"x": 7, "y": 49}]
        assert len(_CALLS) == 1  # recomputed, not served from the bad file
        assert json.loads(path.read_text())["record"] == {"x": 7, "y": 49}
        assert cache.get(point) == {"x": 7, "y": 49}

    def test_binary_garbage_entry_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"x": 1}
        cache.put(point, {"y": 1})
        cache.path(point).write_bytes(b"\x00\xff\xfe garbage \x80")
        assert cache.get(point) is None

    def test_wrong_shape_json_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"x": 1}
        for payload in ("[1, 2, 3]", '"a string"', "42", "null",
                        '{"record": {"y": 1}}'):
            cache.path(point).write_text(payload)
            assert cache.get(point) is None

    def test_mismatched_stored_point_is_a_miss(self, tmp_path):
        cache = RunCache(tmp_path)
        point = {"cores": 8, "seed": 3}
        cache.put(point, {"ttc": 1.0})
        cache.path(point).write_text(
            json.dumps({"point": {"cores": 9, "seed": 3},
                        "record": {"ttc": 1.0}})
        )
        assert cache.get(point) is None

    def test_sweep_skips_cached_points(self, tmp_path):
        cache = RunCache(tmp_path)
        points = [{"x": x} for x in range(5)]
        _CALLS.clear()
        first = run_sweep(_square_point, points, cache=cache)
        assert len(_CALLS) == 5
        again = run_sweep(_square_point, points, cache=cache)
        assert len(_CALLS) == 5  # no re-evaluation
        assert again == first
        # A new point evaluates exactly once more.
        extended = run_sweep(
            _square_point, points + [{"x": 99}], cache=cache
        )
        assert len(_CALLS) == 6
        assert extended[:5] == first


def _faulted_bag_point(point: dict) -> dict:
    """One sweep point that exercises the whole fault machinery.

    Must stay module-level and JSON-in/JSON-out: the parallel path
    pickles it into worker processes, and the equality assertions below
    compare records across processes and cache round-trips.
    """
    import hashlib

    from repro.core.kernel_plugin import Kernel
    from repro.core.patterns import BagOfTasks
    from repro.core.resource_handle import ResourceHandle
    from repro.pilot.retry import RetryPolicy
    from repro.telemetry.export import chrome_trace
    from repro.utils.ids import reset_id_counters

    class _Bag(BagOfTasks):
        def task(self, instance):
            kernel = Kernel(name="misc.sleep")
            kernel.arguments = ["--duration=100"]
            return kernel

    from repro.exceptions import PatternError

    reset_id_counters()
    handle = ResourceHandle(
        "xsede.comet", cores=16, walltime=600, mode="sim",
        seed=point["seed"], fault_rate=point["fault_rate"],
        node_mtbf=120.0, node_repair_time=120.0,
        retry_policy=RetryPolicy(max_attempts=8, backoff_base=2.0,
                                 jitter=0.5, exclude_failed_nodes=False),
    )
    handle.allocate()
    n_failed = 0
    try:
        try:
            handle.run(_Bag(size=point["size"]))
        except PatternError:
            # Exhausted retries are a legitimate outcome of an aggressive
            # fault schedule; the record captures them either way.
            n_failed = 1
    finally:
        handle.deallocate()
    events = list(handle.profile)
    payload = json.dumps(
        chrome_trace(events), sort_keys=True, separators=(",", ":")
    )
    return {
        "ttc": handle.session.now(),
        "n_events": len(events),
        "n_requeues": sum(1 for ev in events if ev.name == "unit_requeue"),
        "failed": n_failed,
        "trace_sha256": hashlib.sha256(payload.encode()).hexdigest(),
    }


class TestFaultedSweeps:
    """Sweeps stay deterministic when the points inject faults.

    The sweep runner fans points across worker processes and caches
    records on disk; neither may perturb a fault-injected run — each
    record embeds the full trace digest, so one extra or reordered
    stream draw anywhere fails these assertions.
    """

    POINTS = [
        {"size": 24, "seed": 3, "fault_rate": 0.15},
        {"size": 24, "seed": 4, "fault_rate": 0.15},
        {"size": 16, "seed": 3, "fault_rate": 0.0},
    ]

    def test_parallel_matches_serial_under_faults(self):
        serial = run_sweep(_faulted_bag_point, self.POINTS)
        parallel = run_sweep(_faulted_bag_point, self.POINTS, parallel=3)
        assert parallel == serial
        assert any(r["n_requeues"] > 0 for r in serial), (
            "fixture must actually exercise the fault machinery"
        )

    def test_cache_warm_equals_cold_under_faults(self, tmp_path):
        cache = RunCache(tmp_path)
        cold = run_sweep(_faulted_bag_point, self.POINTS, cache=cache)
        assert len(cache) == len(self.POINTS)
        warm = run_sweep(_faulted_bag_point, self.POINTS, cache=cache)
        assert warm == cold


class TestFigureSweeps:
    """S4: ``--parallel`` sweeps match serial sweeps record-for-record."""

    CORES = (4, 8, 16)

    @pytest.mark.parametrize("figure", ["fig5", "fig7"])
    def test_parallel_figure_matches_serial(self, figure):
        from repro.experiments import fig5, fig7

        module = {"fig5": fig5, "fig7": fig7}[figure]
        small = (
            {"replicas": 16} if figure == "fig5" else {"simulations": 16}
        )
        serial = module.run(core_counts=self.CORES, **small)
        parallel = module.run(core_counts=self.CORES, parallel=4, **small)
        assert parallel.rows == serial.rows
        assert parallel.claims == serial.claims

    def test_figure_cache_reuses_points(self, tmp_path):
        from repro.experiments import fig5

        cold = fig5.run(
            replicas=16, core_counts=self.CORES, cache_dir=tmp_path
        )
        assert len(list(tmp_path.glob("*.json"))) == len(self.CORES)
        warm = fig5.run(
            replicas=16, core_counts=self.CORES, cache_dir=tmp_path
        )
        assert warm.rows == cold.rows
        assert warm.claims == cold.claims
