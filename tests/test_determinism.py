"""Determinism regression: identical seeds must yield identical traces.

The simulator's determinism promise is the foundation of every ablation
in ``repro.experiments``: a run is a pure function of (workload, resource,
seed).  Fault injection is the easiest place to break that promise — a
single unseeded draw or an event ordered by wall clock would surface
here — so these tests replay whole EoP/EE/SAL experiments, faults and
all, and compare the *complete* profiler traces event by event.
"""

import pytest

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import (
    BagOfTasks,
    EnsembleExchange,
    EnsembleOfPipelines,
    SimulationAnalysisLoop,
)
from repro.core.resource_handle import ResourceHandle
from repro.pilot.retry import RetryPolicy
from repro.utils.ids import reset_id_counters


def _sleep(duration):
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = [f"--duration={duration}"]
    return kernel


class TwoStageEoP(EnsembleOfPipelines):
    def stage_1(self, instance):
        return _sleep(40)

    def stage_2(self, instance):
        return _sleep(20)


class SleepEE(EnsembleExchange):
    def simulation_stage(self, iteration, instance):
        return _sleep(30)

    def exchange_stage(self, iteration, instances):
        return _sleep(5)


class SleepSAL(SimulationAnalysisLoop):
    def simulation_stage(self, iteration, instance):
        return _sleep(30)

    def analysis_stage(self, iteration, instance):
        return _sleep(10)


class FaultedBag(BagOfTasks):
    retry_policy = RetryPolicy(
        max_attempts=8, backoff_base=2.0, backoff_factor=2.0,
        backoff_cap=60.0, jitter=0.5, exclude_failed_nodes=False,
    )

    def task(self, instance):
        return _sleep(100)


def trace(pattern_factory, seed=0, cores=32, **handle_kwargs):
    """Run one pattern from a clean id-counter state; return its trace.

    Traces embed generated uids, so byte-identical replay requires the
    global id counters to restart with every run.
    """
    reset_id_counters()
    handle = ResourceHandle(
        "xsede.comet", cores=cores, walltime=600, mode="sim",
        seed=seed, **handle_kwargs,
    )
    handle.allocate()
    try:
        handle.run(pattern_factory())
    finally:
        handle.deallocate()
    return list(handle.profile)


FAULT_KWARGS = dict(
    node_mtbf=120.0,
    node_repair_time=120.0,
    retry_policy=RetryPolicy(
        max_attempts=8, backoff_base=2.0, backoff_factor=2.0,
        backoff_cap=60.0, jitter=0.5, exclude_failed_nodes=False,
    ),
)


class TestSameSeedSameTrace:
    """Same seed, same workload, faults enabled → bit-identical traces."""

    def test_eop_with_node_faults(self):
        make = lambda: TwoStageEoP(ensemble_size=48, pipeline_size=2)
        first = trace(make, seed=7, **FAULT_KWARGS)
        second = trace(make, seed=7, **FAULT_KWARGS)
        assert any(ev.name == "node_fail" for ev in first), (
            "fixture must actually exercise the fault machinery"
        )
        assert first == second

    def test_ee_with_node_faults(self):
        make = lambda: SleepEE(ensemble_size=32, iterations=2)
        first = trace(make, seed=3, **FAULT_KWARGS)
        second = trace(make, seed=3, **FAULT_KWARGS)
        assert first == second

    def test_sal_with_node_faults(self):
        make = lambda: SleepSAL(iterations=2, simulation_instances=32)
        first = trace(make, seed=5, **FAULT_KWARGS)
        second = trace(make, seed=5, **FAULT_KWARGS)
        assert first == second

    def test_bag_with_task_and_node_faults(self):
        """Both failure domains plus jittered backoff, replayed exactly."""
        make = lambda: FaultedBag(size=64)
        kwargs = dict(FAULT_KWARGS, fault_rate=0.2)
        first = trace(make, seed=11, **kwargs)
        second = trace(make, seed=11, **kwargs)
        assert any(ev.name == "task_fault" for ev in first)
        assert first == second

    def test_pilot_resubmission_is_deterministic(self):
        make = lambda: FaultedBag(size=64)
        kwargs = dict(FAULT_KWARGS, pilot_mtbf=150.0, max_pilot_resubmits=10)
        first = trace(make, seed=0, **kwargs)
        second = trace(make, seed=0, **kwargs)
        assert any(ev.name == "pilot_resubmit" for ev in first)
        assert first == second


class TestDifferentSeedDifferentTrace:
    def test_seed_changes_fault_schedule(self):
        make = lambda: TwoStageEoP(ensemble_size=48, pipeline_size=2)
        first = trace(make, seed=7, **FAULT_KWARGS)
        other = trace(make, seed=8, **FAULT_KWARGS)
        assert first != other


class TestFaultsOffIsABitIdenticalNoOp:
    """Disabled fault machinery must not perturb pre-existing traces.

    A run with every fault knob at its default must be indistinguishable
    from one where the knobs are passed explicitly as disabled — no extra
    stream draws, no extra events.  This pins the promise that merely
    *having* the fault subsystem does not change any published result.
    """

    def test_explicit_zeros_match_defaults(self):
        make = lambda: TwoStageEoP(ensemble_size=48, pipeline_size=2)
        plain = trace(make, seed=7)
        disabled = trace(
            make, seed=7,
            node_mtbf=0.0, pilot_mtbf=0.0, max_pilot_resubmits=0,
            retry_policy=None,
        )
        assert plain == disabled

    def test_retry_policy_alone_changes_nothing(self):
        """An armed policy with no faults to absorb must leave no trace."""
        make = lambda: SleepEE(ensemble_size=32, iterations=2)
        plain = trace(make, seed=3)
        with_policy = trace(
            make, seed=3,
            retry_policy=RetryPolicy(max_attempts=5, backoff_base=3.0),
        )
        assert plain == with_policy

    def test_no_fault_events_when_disabled(self):
        events = trace(lambda: SleepSAL(2, 16), seed=1)
        names = {ev.name for ev in events}
        assert not names & {
            "node_fail", "node_repair", "unit_node_kill", "unit_pilot_kill",
            "unit_requeue", "pilot_fault", "pilot_resubmit", "agent_suspend",
            "agent_abort", "task_fault", "entk_task_retry",
        }


class TestGoldenTraceHashes:
    """Pinned Chrome-export digests: cross-*version* determinism.

    The same-seed tests above prove two runs of the *current* code
    match each other; these golden hashes additionally pin the trace
    bytes across code changes.  They were captured before the indexed
    scheduler / event-loop rewrite and must survive any optimization
    that claims to be behavior-preserving.  If a PR changes them on
    purpose (a genuine semantic change to scheduling or tracing), it
    must say so and re-pin.
    """

    GOLDEN = {
        "eop_plain_seed7":
            "c0cd596b7bd02e5d72b02a74070e837c2c8914feb19349a662bdff450120688f",
        "eop_faults_seed7":
            "430cdc69a93faae35b57bf9994dfe47009d14b5f8e1f118528758712203e776a",
        "ee_faults_seed3":
            "1e3eca2779e8ebf2201ea95b8b7f7fb6cf1066b99e850f0caf730d500c7a8b2f",
        "bag_task_node_faults_seed11":
            "59576605cc611f1fafef1b386fa985fc273163456bf33ded972e856ba4c9efd8",
    }

    @staticmethod
    def _digest(events):
        import hashlib
        import json

        from repro.telemetry.export import chrome_trace

        payload = json.dumps(
            chrome_trace(events), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def test_eop_plain_seed7(self):
        events = trace(
            lambda: TwoStageEoP(ensemble_size=48, pipeline_size=2), seed=7
        )
        assert self._digest(events) == self.GOLDEN["eop_plain_seed7"]

    def test_eop_faults_seed7(self):
        events = trace(
            lambda: TwoStageEoP(ensemble_size=48, pipeline_size=2),
            seed=7, **FAULT_KWARGS,
        )
        assert self._digest(events) == self.GOLDEN["eop_faults_seed7"]

    def test_ee_faults_seed3(self):
        events = trace(
            lambda: SleepEE(ensemble_size=32, iterations=2),
            seed=3, **FAULT_KWARGS,
        )
        assert self._digest(events) == self.GOLDEN["ee_faults_seed3"]

    def test_bag_task_node_faults_seed11(self):
        events = trace(
            lambda: FaultedBag(size=64),
            seed=11, fault_rate=0.2, **FAULT_KWARGS,
        )
        assert self._digest(events) == self.GOLDEN[
            "bag_task_node_faults_seed11"
        ]


class TestGoldenTraceHashesSpooled(TestGoldenTraceHashes):
    """The same pinned digests with the trace streamed to a spool file.

    Spooling must be a pure representation change: the NDJSON round-trip
    (``repr`` floats, revived :class:`ProfileEvent` rows) may not perturb
    a single byte of the Chrome export.  Each test hashes the trace twice
    — once from the live profiler view and once re-read from the spool
    file on disk — against the unchanged golden pins.
    """

    def test_spooled_trace_matches_golden_twice(self, tmp_path):
        reset_id_counters()
        handle = ResourceHandle(
            "xsede.comet", cores=32, walltime=600, mode="sim",
            seed=7, spool_dir=tmp_path, **FAULT_KWARGS,
        )
        handle.allocate()
        try:
            handle.run(TwoStageEoP(ensemble_size=48, pipeline_size=2))
        finally:
            handle.deallocate()
        live = list(handle.profile)
        assert self._digest(live) == self.GOLDEN["eop_faults_seed7"]

        import json as _json

        from repro.telemetry.sink import revive

        spool = handle.session.spool_path
        assert spool is not None and spool.exists()
        with spool.open() as stream:
            revived = [revive(_json.loads(line)) for line in stream]
        assert revived == live
        assert self._digest(revived) == self.GOLDEN["eop_faults_seed7"]

    def test_eop_plain_seed7(self, tmp_path):
        events = trace(
            lambda: TwoStageEoP(ensemble_size=48, pipeline_size=2),
            seed=7, spool_dir=tmp_path,
        )
        assert self._digest(events) == self.GOLDEN["eop_plain_seed7"]

    def test_eop_faults_seed7(self, tmp_path):
        events = trace(
            lambda: TwoStageEoP(ensemble_size=48, pipeline_size=2),
            seed=7, spool_dir=tmp_path, **FAULT_KWARGS,
        )
        assert self._digest(events) == self.GOLDEN["eop_faults_seed7"]

    def test_ee_faults_seed3(self, tmp_path):
        events = trace(
            lambda: SleepEE(ensemble_size=32, iterations=2),
            seed=3, spool_dir=tmp_path, **FAULT_KWARGS,
        )
        assert self._digest(events) == self.GOLDEN["ee_faults_seed3"]

    def test_bag_task_node_faults_seed11(self, tmp_path):
        events = trace(
            lambda: FaultedBag(size=64),
            seed=11, fault_rate=0.2, spool_dir=tmp_path, **FAULT_KWARGS,
        )
        assert self._digest(events) == self.GOLDEN[
            "bag_task_node_faults_seed11"
        ]
