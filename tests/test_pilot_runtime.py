"""Integration tests of the pilot runtime (managers + agent + executors)."""

import pytest

from repro.exceptions import PilotError
from repro.pilot import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    PilotState,
    Session,
    UnitManager,
    UnitState,
)
from repro.pilot.description import StagingDirective


def make_local(cores=4, **agent_options):
    session = Session(mode="local")
    pmgr = PilotManager(session, **agent_options)
    pilot = pmgr.submit_pilots(
        ComputePilotDescription(
            resource="local.localhost", cores=cores, runtime=5, mode="local"
        )
    )[0]
    pmgr.wait_pilots_active(timeout=30)
    umgr = UnitManager(session)
    umgr.add_pilots(pilot)
    return session, pmgr, umgr, pilot


def make_sim(cores=48, resource="xsede.comet", **agent_options):
    session = Session(mode="sim", platform=resource)
    pmgr = PilotManager(session, **agent_options)
    pilot = pmgr.submit_pilots(
        ComputePilotDescription(resource=resource, cores=cores, runtime=600, mode="sim")
    )[0]
    umgr = UnitManager(session)
    umgr.add_pilots(pilot)
    return session, pmgr, umgr, pilot


class TestLocalRuntime:
    def test_units_execute_for_real(self, tmp_path):
        session, pmgr, umgr, pilot = make_local()
        outputs = []

        def payload(ctx):
            path = ctx.sandbox / "proof.txt"
            path.write_text(ctx.uid)
            outputs.append(path)
            return ctx.uid

        units = umgr.submit_units(
            [ComputeUnitDescription(executable="t", payload=payload) for _ in range(6)]
        )
        umgr.wait_units(timeout=30)
        assert all(u.state is UnitState.DONE for u in units)
        assert all(u.result == u.uid for u in units)
        assert all(path.exists() for path in outputs)
        pmgr.cancel_pilots()
        session.close()

    def test_failing_payload_marks_unit_failed(self):
        session, pmgr, umgr, pilot = make_local()

        def boom(ctx):
            raise ValueError("broken task")

        ok = ComputeUnitDescription(executable="t", payload=lambda ctx: 1)
        bad = ComputeUnitDescription(executable="t", payload=boom)
        units = umgr.submit_units([ok, bad, ok])
        umgr.wait_units(timeout=30)
        states = [u.state for u in units]
        assert states[0] is UnitState.DONE
        assert states[1] is UnitState.FAILED
        assert states[2] is UnitState.DONE
        assert isinstance(units[1].exception, ValueError)
        pmgr.cancel_pilots()
        session.close()

    def test_unit_larger_than_pilot_rejected_at_submit(self):
        from repro.exceptions import SchedulingError

        session, pmgr, umgr, pilot = make_local(cores=2)
        with pytest.raises(SchedulingError, match="8-core"):
            umgr.submit_units(
                [ComputeUnitDescription(executable="t", cores=8, mpi=True)]
            )
        pmgr.cancel_pilots()
        session.close()

    def test_real_staging_between_units(self):
        session, pmgr, umgr, pilot = make_local()

        def producer(ctx):
            (ctx.sandbox / "data.txt").write_text("payload-data")

        producer_unit = umgr.submit_units(
            [ComputeUnitDescription(executable="p", payload=producer)]
        )[0]
        umgr.wait_units([producer_unit], timeout=30)

        def consumer(ctx):
            return (ctx.sandbox / "in.txt").read_text()

        consumer_unit = umgr.submit_units(
            [
                ComputeUnitDescription(
                    executable="c",
                    payload=consumer,
                    input_staging=[
                        StagingDirective(
                            source=f"$UNIT_{producer_unit.uid}/data.txt",
                            target="in.txt",
                            action="copy",
                        )
                    ],
                )
            ]
        )[0]
        umgr.wait_units([consumer_unit], timeout=30)
        assert consumer_unit.state is UnitState.DONE
        assert consumer_unit.result == "payload-data"
        pmgr.cancel_pilots()
        session.close()

    def test_missing_staging_source_fails_unit(self):
        session, pmgr, umgr, pilot = make_local()
        unit = umgr.submit_units(
            [
                ComputeUnitDescription(
                    executable="c",
                    payload=lambda ctx: None,
                    input_staging=[
                        StagingDirective(source="/nonexistent/file", target="x")
                    ],
                )
            ]
        )[0]
        umgr.wait_units(timeout=30)
        assert unit.state is UnitState.FAILED
        pmgr.cancel_pilots()
        session.close()

    def test_cancel_pilots_cancels_queued_units(self):
        # A 1-core pilot with long tasks: the queue is non-empty on cancel.
        session, pmgr, umgr, pilot = make_local(cores=1)
        import time

        descriptions = [
            ComputeUnitDescription(executable="t", payload=lambda ctx: time.sleep(0.3))
            for _ in range(5)
        ]
        units = umgr.submit_units(descriptions)
        pmgr.cancel_pilots()
        assert pilot.state is PilotState.CANCELED
        # Everything queued (not yet executing) is cancelled.
        assert any(u.state is UnitState.CANCELED for u in units)
        session.close()

    def test_walltime_expiry_marks_pilot_done(self):
        # Regression for the SM004 lint finding: a container job ending
        # normally must land the pilot in DONE, not leave it ACTIVE.
        session = Session(mode="local")
        pmgr = PilotManager(session)
        pilot = pmgr.submit_pilots(
            ComputePilotDescription(
                resource="local.localhost", cores=2, runtime=0.002, mode="local"
            )
        )[0]
        pmgr.wait_pilots_active(timeout=30)
        pilot.saga_job.wait(timeout=30)
        assert pilot.state is PilotState.DONE
        # Teardown is a no-op on an already-final pilot.
        pmgr.cancel_pilots()
        assert pilot.state is PilotState.DONE
        session.close()


class TestSimRuntime:
    def test_waves_on_undersized_pilot(self):
        session, pmgr, umgr, pilot = make_sim(cores=10)
        units = umgr.submit_units(
            [
                ComputeUnitDescription(executable="t", modelled_duration=100.0)
                for _ in range(30)
            ]
        )
        umgr.wait_units()
        assert all(u.state is UnitState.DONE for u in units)
        # 30 tasks on 10 cores -> 3 waves of ~100 s.
        assert 300.0 <= session.now() <= 340.0
        pmgr.cancel_pilots()
        session.close()

    def test_mpi_units_occupy_cores(self):
        session, pmgr, umgr, pilot = make_sim(cores=8)
        units = umgr.submit_units(
            [
                ComputeUnitDescription(
                    executable="t", cores=4, mpi=True, modelled_duration=50.0
                )
                for _ in range(4)
            ]
        )
        umgr.wait_units()
        # 4 x 4-core units on 8 cores -> 2 waves.
        assert 100.0 <= session.now() <= 140.0
        pmgr.cancel_pilots()
        session.close()

    def test_duration_model_sees_cores(self):
        session, pmgr, umgr, pilot = make_sim(cores=16)
        unit = umgr.submit_units(
            [
                ComputeUnitDescription(
                    executable="t",
                    cores=16,
                    mpi=True,
                    duration_model=lambda cores, platform: 1600.0 / cores,
                )
            ]
        )[0]
        umgr.wait_units()
        assert unit.execution_time == pytest.approx(100.0, rel=0.05)
        pmgr.cancel_pilots()
        session.close()

    def test_sim_staging_charges_time(self):
        session, pmgr, umgr, pilot = make_sim()
        big = ComputeUnitDescription(
            executable="t",
            modelled_duration=1.0,
            input_staging=[
                StagingDirective(source="$SHARED/x", target="x",
                                 action="transfer", nbytes=int(2e9))
            ],
        )
        unit = umgr.submit_units([big])[0]
        umgr.wait_units()
        staging = unit.duration(UnitState.AGENT_STAGING_INPUT, UnitState.AGENT_SCHEDULING)
        assert staging == pytest.approx(1.0, rel=0.1)  # 2e9 B / 2e9 B/s
        pmgr.cancel_pilots()
        session.close()

    def test_link_staging_is_free_in_sim(self):
        session, pmgr, umgr, pilot = make_sim()
        unit = umgr.submit_units(
            [
                ComputeUnitDescription(
                    executable="t",
                    modelled_duration=1.0,
                    input_staging=[
                        StagingDirective(source="$SHARED/x", target="x",
                                         action="link", nbytes=int(2e9))
                    ],
                )
            ]
        )[0]
        umgr.wait_units()
        staging = unit.duration(UnitState.AGENT_STAGING_INPUT, UnitState.AGENT_SCHEDULING)
        assert staging == pytest.approx(0.0, abs=1e-6)
        pmgr.cancel_pilots()
        session.close()

    def test_pilot_queue_then_bootstrap_then_active(self):
        session, pmgr, umgr, pilot = make_sim()
        pmgr.wait_pilots_active()
        assert pilot.state is PilotState.ACTIVE
        # submit latency (1s) + bootstrap (20s on comet)
        assert session.now() == pytest.approx(21.0, abs=1.0)
        pmgr.cancel_pilots()
        session.close()

    def test_oversized_unit_rejected_at_submit(self):
        from repro.exceptions import SchedulingError

        session, pmgr, umgr, pilot = make_sim(cores=4)
        with pytest.raises(SchedulingError):
            umgr.submit_units(
                [ComputeUnitDescription(executable="t", cores=8, mpi=True,
                                        modelled_duration=1.0)]
            )
        pmgr.cancel_pilots()
        session.close()

    def test_umgr_without_pilots_rejects_submission(self):
        session = Session(mode="sim", platform="xsede.comet")
        umgr = UnitManager(session)
        with pytest.raises(PilotError):
            umgr.submit_units([ComputeUnitDescription(executable="t")])
        session.close()


class TestAgentPolicies:
    def test_fifo_blocks_behind_wide_unit(self):
        session, pmgr, umgr, pilot = make_sim(cores=8, policy="fifo")
        wide_first = [
            ComputeUnitDescription(executable="a", cores=8, mpi=True,
                                   modelled_duration=100.0),
            ComputeUnitDescription(executable="b", cores=8, mpi=True,
                                   modelled_duration=100.0),
            ComputeUnitDescription(executable="c", modelled_duration=10.0),
        ]
        units = umgr.submit_units(wide_first)
        umgr.wait_units()
        # FIFO: c starts only after b finished.
        c_start = units[2].timestamps["EXECUTING"]
        b_end = units[1].timestamps["AGENT_STAGING_OUTPUT"]
        assert c_start >= units[1].timestamps["EXECUTING"]
        assert session.now() >= 200.0
        pmgr.cancel_pilots()
        session.close()

    def test_backfill_runs_small_units_alongside(self):
        session, pmgr, umgr, pilot = make_sim(cores=8, policy="backfill")
        mixed = [
            ComputeUnitDescription(executable="a", cores=6, mpi=True,
                                   modelled_duration=100.0),
            ComputeUnitDescription(executable="b", cores=6, mpi=True,
                                   modelled_duration=100.0),
            ComputeUnitDescription(executable="c", modelled_duration=10.0),
        ]
        units = umgr.submit_units(mixed)
        umgr.wait_units()
        # Backfill: c runs in the 2 spare cores alongside a.
        c_start = units[2].timestamps["EXECUTING"]
        a_start = units[0].timestamps["EXECUTING"]
        assert c_start < a_start + 50.0
        pmgr.cancel_pilots()
        session.close()
