"""Tests for replica-exchange machinery: Metropolis, ladders, swap schedules."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.md.remd import (
    acceptance_probability,
    attempt_neighbor_swaps,
    attempt_swap,
    geometric_ladder,
)

temps = st.floats(min_value=0.1, max_value=100.0, allow_nan=False)
energies = st.floats(min_value=-1e3, max_value=1e3, allow_nan=False)


class TestGeometricLadder:
    def test_endpoints(self):
        ladder = geometric_ladder(1.0, 8.0, 4)
        assert ladder[0] == pytest.approx(1.0)
        assert ladder[-1] == pytest.approx(8.0)

    def test_constant_ratio(self):
        ladder = geometric_ladder(1.0, 16.0, 5)
        ratios = ladder[1:] / ladder[:-1]
        assert np.allclose(ratios, ratios[0])

    def test_single_temperature(self):
        assert geometric_ladder(2.0, 5.0, 1).tolist() == [2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_ladder(1.0, 2.0, 0)
        with pytest.raises(ValueError):
            geometric_ladder(0.0, 2.0, 3)
        with pytest.raises(ValueError):
            geometric_ladder(3.0, 2.0, 3)


class TestAcceptance:
    def test_favourable_swap_always_accepted(self):
        # Hot replica has LOWER energy than cold -> delta >= 0 -> accept.
        assert acceptance_probability(10.0, 5.0, 1.0, 2.0) == 1.0

    def test_unfavourable_swap_probability(self):
        # beta_i - beta_j = 1 - 0.5 = 0.5; E_i - E_j = -2 -> exp(-1).
        p = acceptance_probability(0.0, 2.0, 1.0, 2.0)
        assert p == pytest.approx(np.exp(-1.0))

    def test_equal_energies_always_accepted(self):
        assert acceptance_probability(3.0, 3.0, 1.0, 2.0) == 1.0

    def test_temperatures_must_be_positive(self):
        with pytest.raises(ValueError):
            acceptance_probability(1.0, 2.0, 0.0, 1.0)

    @settings(max_examples=100, deadline=None)
    @given(e_i=energies, e_j=energies, t_i=temps, t_j=temps)
    def test_property_probability_in_unit_interval(self, e_i, e_j, t_i, t_j):
        p = acceptance_probability(e_i, e_j, t_i, t_j)
        assert 0.0 <= p <= 1.0

    @settings(max_examples=50, deadline=None)
    @given(e_i=energies, e_j=energies, t_i=temps, t_j=temps)
    def test_property_detailed_balance_symmetry(self, e_i, e_j, t_i, t_j):
        """p(i<->j) is symmetric under swapping the pair's labels."""
        assert acceptance_probability(e_i, e_j, t_i, t_j) == pytest.approx(
            acceptance_probability(e_j, e_i, t_j, t_i)
        )

    def test_empirical_rate_matches_probability(self):
        rng = np.random.default_rng(0)
        p_expected = acceptance_probability(0.0, 1.0, 1.0, 2.0)
        trials = 20_000
        accepted = sum(
            attempt_swap(0.0, 1.0, 1.0, 2.0, rng) for _ in range(trials)
        )
        assert accepted / trials == pytest.approx(p_expected, abs=0.02)


class TestNeighborSwaps:
    def test_phase0_pairs_even_odd(self):
        rng = np.random.default_rng(0)
        temperatures = geometric_ladder(1.0, 4.0, 6)
        result = attempt_neighbor_swaps(np.zeros(6), temperatures, rng, phase=0)
        assert result.attempted == 3

    def test_phase1_pairs_odd_even(self):
        rng = np.random.default_rng(0)
        temperatures = geometric_ladder(1.0, 4.0, 6)
        result = attempt_neighbor_swaps(np.zeros(6), temperatures, rng, phase=1)
        assert result.attempted == 2

    @settings(max_examples=50, deadline=None)
    @given(
        energies_list=st.lists(energies, min_size=2, max_size=16),
        phase=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=1000),
    )
    def test_property_permutation_is_valid(self, energies_list, phase, seed):
        """The exchange outcome is always a permutation (nothing lost)."""
        n = len(energies_list)
        temperatures = geometric_ladder(1.0, 4.0, n)
        rng = np.random.default_rng(seed)
        result = attempt_neighbor_swaps(
            np.array(energies_list), temperatures, rng, phase=phase
        )
        assert sorted(result.permutation.tolist()) == list(range(n))
        assert 0 <= result.accepted <= result.attempted

    def test_only_neighbors_swap(self):
        rng = np.random.default_rng(3)
        temperatures = geometric_ladder(1.0, 4.0, 8)
        result = attempt_neighbor_swaps(
            np.linspace(-5, 5, 8), temperatures, rng, phase=0
        )
        for k, target in enumerate(result.permutation):
            assert abs(int(target) - k) <= 1

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            attempt_neighbor_swaps(
                np.zeros(3), np.zeros(4), np.random.default_rng(0)
            )

    def test_acceptance_ratio_zero_when_none_attempted(self):
        rng = np.random.default_rng(0)
        result = attempt_neighbor_swaps(np.zeros(1), np.ones(1), rng, phase=0)
        assert result.attempted == 0
        assert result.acceptance_ratio == 0.0


class TestREMDSampling:
    def test_remd_crosses_barrier_faster_than_plain_md(self):
        """The scientific point of the paper's Fig. 5/6 workload: replica
        exchange lets a cold replica discover the second basin far sooner
        than unassisted cold dynamics."""
        from repro.md.engine import MDEngine
        from repro.md.system import alanine_dipeptide_surface

        system = alanine_dipeptide_surface(barrier=5.0)
        nsteps, nreplicas, rounds = 400, 8, 20
        ladder = geometric_ladder(0.5, 5.0, nreplicas)
        rng = np.random.default_rng(1)
        engine = MDEngine(system)

        # REMD: replicas carry configurations, swap temperatures.
        positions = [system.x0.copy() for _ in range(nreplicas)]
        cold_visits_right = False
        for round_index in range(rounds):
            round_energies = []
            for i in range(nreplicas):
                trajectory = engine.run(
                    nsteps,
                    temperature=float(ladder[i]),
                    x0=positions[i],
                    stride=nsteps,
                    seed=100_000 + 1000 * round_index + i,
                )
                positions[i] = trajectory.final_position
                round_energies.append(trajectory.final_energy)
            if positions[0][0] > 0.5:
                cold_visits_right = True
            result = attempt_neighbor_swaps(
                np.array(round_energies), ladder, rng, phase=round_index % 2
            )
            positions = [positions[j] for j in result.permutation]
        assert cold_visits_right, "REMD failed to cross the barrier"
