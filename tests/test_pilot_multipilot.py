"""Tests for multi-pilot execution (round-robin unit routing)."""

import json

import pytest

from repro.pilot import (
    ComputePilotDescription,
    ComputeUnitDescription,
    PilotManager,
    Session,
    UnitManager,
    UnitState,
)


def make_two_pilots(cores_a=8, cores_b=8):
    session = Session(mode="sim", platform="xsede.comet")
    pmgr = PilotManager(session)
    pilots = pmgr.submit_pilots(
        [
            ComputePilotDescription(resource="xsede.comet", cores=cores_a,
                                    runtime=600, mode="sim"),
            ComputePilotDescription(resource="xsede.comet", cores=cores_b,
                                    runtime=600, mode="sim"),
        ]
    )
    umgr = UnitManager(session)
    umgr.add_pilots(pilots)
    return session, pmgr, umgr, pilots


def test_units_round_robin_across_pilots():
    session, pmgr, umgr, pilots = make_two_pilots()
    units = umgr.submit_units(
        [ComputeUnitDescription(executable="t", modelled_duration=10.0)
         for _ in range(10)]
    )
    umgr.wait_units()
    assert all(u.state is UnitState.DONE for u in units)
    routed = {pilot.uid: 0 for pilot in pilots}
    for unit in units:
        routed[unit.pilot_uid] += 1
    assert routed[pilots[0].uid] == routed[pilots[1].uid] == 5
    pmgr.cancel_pilots()
    session.close()


def test_two_pilots_double_throughput():
    session, pmgr, umgr, pilots = make_two_pilots(cores_a=4, cores_b=4)
    units = umgr.submit_units(
        [ComputeUnitDescription(executable="t", modelled_duration=100.0)
         for _ in range(16)]
    )
    umgr.wait_units()
    # 16 x 100 s on 8 cores total -> 2 waves ~ 200 s (+ bootstrap).
    assert session.now() < 260.0
    pmgr.cancel_pilots()
    session.close()


def test_wide_units_skip_small_pilots():
    session, pmgr, umgr, pilots = make_two_pilots(cores_a=2, cores_b=16)
    units = umgr.submit_units(
        [ComputeUnitDescription(executable="t", cores=8, mpi=True,
                                modelled_duration=10.0)
         for _ in range(4)]
    )
    umgr.wait_units()
    assert all(u.pilot_uid == pilots[1].uid for u in units)
    pmgr.cancel_pilots()
    session.close()


def test_profile_export_round_trips(tmp_path):
    session, pmgr, umgr, pilots = make_two_pilots()
    umgr.submit_units(
        [ComputeUnitDescription(executable="t", modelled_duration=1.0)]
    )
    umgr.wait_units()
    pmgr.cancel_pilots()
    out = tmp_path / "trace.jsonl"
    count = session.prof.write_jsonl(out)
    lines = out.read_text().splitlines()
    assert len(lines) == count > 0
    records = [json.loads(line) for line in lines]
    assert all({"time", "name", "uid"} <= set(r) for r in records)
    times = [r["time"] for r in records]
    assert times == sorted(times)
    session.close()
