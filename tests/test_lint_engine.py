"""Engine-level tests: discovery, baseline mechanics, config parsing."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint import Baseline, Finding, LintConfig, lint_paths, rule_catalogue
from repro.lint.baseline import apply_baseline
from repro.lint.config import _fallback_parse, find_pyproject, load_config
from repro.lint.engine import iter_python_files


def _write(path, source):
    path.write_text(textwrap.dedent(source))
    return path


# -- file discovery -----------------------------------------------------------


def test_iter_python_files_is_sorted_and_deduplicated(tmp_path):
    (tmp_path / "b.py").write_text("")
    (tmp_path / "a.py").write_text("")
    sub = tmp_path / "pkg"
    sub.mkdir()
    (sub / "c.py").write_text("")
    (sub / "notes.txt").write_text("")
    files = iter_python_files([tmp_path, sub, sub / "c.py"], [], tmp_path)
    assert [f.name for f in files] == ["a.py", "b.py", "c.py"]


def test_iter_python_files_honours_exclude(tmp_path):
    (tmp_path / "keep.py").write_text("")
    skip = tmp_path / "skip"
    skip.mkdir()
    (skip / "gone.py").write_text("")
    files = iter_python_files([tmp_path], ["skip"], tmp_path)
    assert [f.name for f in files] == ["keep.py"]


def test_unparsable_file_becomes_lint001_finding(tmp_path):
    _write(tmp_path / "broken.py", "def oops(:\n")
    result = lint_paths([tmp_path], LintConfig(root=tmp_path))
    assert [f.rule_id for f in result.findings] == ["LINT001"]
    assert result.files_scanned == 0


# -- baseline -----------------------------------------------------------------


def _finding(line=3, message="wall-clock call time.time()"):
    return Finding("pkg/mod.py", line, 0, "DET001", message)


def test_apply_baseline_splits_new_from_grandfathered():
    findings = [_finding(line=3), _finding(line=9)]
    baseline = Baseline({_finding().baseline_key: 1})
    new, old, stale = apply_baseline(findings, baseline)
    assert [f.line for f in old] == [3]
    assert [f.line for f in new] == [9]
    assert stale == {}


def test_apply_baseline_reports_stale_allowances():
    baseline = Baseline({_finding().baseline_key: 2})
    new, old, stale = apply_baseline([], baseline)
    assert new == [] and old == []
    assert stale == {_finding().baseline_key: 2}


def test_baseline_round_trip(tmp_path):
    baseline = Baseline.from_findings([_finding(), _finding(line=9)])
    path = tmp_path / "baseline.json"
    baseline.save(path)
    loaded = Baseline.load(path)
    assert loaded.counts == {_finding().baseline_key: 2}


def test_baseline_rejects_unknown_version(tmp_path):
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"version": 99, "findings": {}}))
    with pytest.raises(ValueError, match="version"):
        Baseline.load(path)


def test_lint_paths_with_baseline_grandfathers_counts(tmp_path):
    mod = _write(
        tmp_path / "mod.py",
        """
        import time
        def a():
            return time.time()
        def b():
            return time.time()
        """,
    )
    config = LintConfig(root=tmp_path)
    first = lint_paths([mod], config)
    assert len(first.findings) == 2
    baseline = Baseline.from_findings(first.findings)
    # Unchanged tree: everything grandfathered.
    again = lint_paths([mod], config, baseline=baseline)
    assert again.ok and len(again.grandfathered) == 2
    # A *third* instance of the same hazard is new.
    _write(
        tmp_path / "mod.py",
        """
        import time
        def a():
            return time.time()
        def b():
            return time.time()
        def c():
            return time.time()
        """,
    )
    grown = lint_paths([mod], config, baseline=baseline)
    assert len(grown.findings) == 1 and len(grown.grandfathered) == 2


# -- config -------------------------------------------------------------------

_SECTION = """
[project]
name = "whatever"

[tool.repro.lint]
paths = ["src/pkg"]
select = ["DET", "SM002"]
exclude = ["src/pkg/vendored"]
baseline = "lint-baseline.json"
"""


def test_load_config_reads_section(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(_SECTION)
    config = load_config(pyproject)
    assert config.paths == ["src/pkg"]
    assert config.select == ["DET", "SM002"]
    assert config.exclude == ["src/pkg/vendored"]
    assert config.baseline == "lint-baseline.json"
    assert config.baseline_path() == tmp_path / "lint-baseline.json"


def test_load_config_defaults_when_section_absent(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[project]\nname = 'x'\n")
    config = load_config(pyproject)
    assert config.select is None and config.baseline is None


def test_load_config_rejects_bad_types(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text("[tool.repro.lint]\nselect = 'DET'\n")
    with pytest.raises(ValueError, match="select"):
        load_config(pyproject)


def test_fallback_parser_matches_tomllib_subset():
    # The 3.10 path (no tomllib in the CI image) must agree with tomllib.
    parsed = _fallback_parse(_SECTION)
    assert parsed == {
        "paths": ["src/pkg"],
        "select": ["DET", "SM002"],
        "exclude": ["src/pkg/vendored"],
        "baseline": "lint-baseline.json",
    }


def test_fallback_parser_ignores_other_sections_and_comments():
    parsed = _fallback_parse(
        "[tool.other]\npaths = [\"nope\"]\n"
        "[tool.repro.lint]\n# a comment\nbaseline = \"b.json\"  # trailing\n"
        "[tool.more]\nbaseline = \"nope\"\n"
    )
    assert parsed == {"baseline": "b.json"}


def test_find_pyproject_walks_upward(tmp_path):
    (tmp_path / "pyproject.toml").write_text("")
    nested = tmp_path / "a" / "b"
    nested.mkdir(parents=True)
    assert find_pyproject(nested) == tmp_path / "pyproject.toml"


# -- registry -----------------------------------------------------------------


def test_rule_catalogue_covers_all_families():
    ids = [rule_id for rule_id, _ in rule_catalogue()]
    assert ids == sorted(ids)
    for family in ("DET", "DC", "SM", "EVT"):
        assert any(rule_id.startswith(family) for rule_id in ids)
    assert all(summary for _, summary in rule_catalogue())
