"""Tests for potentials: analytic forces vs. finite differences, minima."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.md.potentials import DoubleWell2D, Harmonic, MuellerBrown

POTENTIALS = {
    "harmonic": Harmonic(k=2.0),
    "doublewell": DoubleWell2D(barrier=5.0),
    "mueller": MuellerBrown(),
}

coords = st.floats(min_value=-1.5, max_value=1.5, allow_nan=False)


def finite_difference_force(potential, x, h=1e-6):
    f = np.zeros_like(x)
    for i in range(len(x)):
        xp, xm = x.copy(), x.copy()
        xp[i] += h
        xm[i] -= h
        f[i] = -(potential.energy(xp) - potential.energy(xm)) / (2 * h)
    return f


@pytest.mark.parametrize("name", list(POTENTIALS))
@settings(max_examples=40, deadline=None)
@given(x=coords, y=coords)
def test_property_force_is_negative_gradient(name, x, y):
    potential = POTENTIALS[name]
    point = np.array([x, y])
    analytic = potential.force(point)
    numeric = finite_difference_force(potential, point)
    scale = max(1.0, float(np.abs(numeric).max()))
    assert np.allclose(analytic, numeric, atol=1e-3 * scale)


@pytest.mark.parametrize("name", list(POTENTIALS))
def test_batched_energy_matches_single(name):
    potential = POTENTIALS[name]
    points = np.array([[0.1, -0.2], [0.5, 0.5], [-1.0, 0.3]])
    batched = potential.energy(points)
    singles = [potential.energy(p) for p in points]
    assert np.allclose(batched, singles)


@pytest.mark.parametrize("name", list(POTENTIALS))
def test_batched_force_matches_single(name):
    potential = POTENTIALS[name]
    points = np.array([[0.1, -0.2], [0.5, 0.5]])
    batched = potential.force(points)
    for i, p in enumerate(points):
        assert np.allclose(batched[i], potential.force(p))


class TestHarmonic:
    def test_minimum_at_origin(self):
        potential = Harmonic(k=3.0)
        assert potential.energy(np.zeros(2)) == 0.0
        assert np.allclose(potential.force(np.zeros(2)), 0.0)

    def test_energy_quadratic(self):
        potential = Harmonic(k=2.0)
        assert potential.energy(np.array([1.0, 0.0])) == pytest.approx(1.0)
        assert potential.energy(np.array([2.0, 0.0])) == pytest.approx(4.0)

    def test_offset_center(self):
        potential = Harmonic(k=1.0, x0=np.array([1.0, 1.0]))
        assert potential.energy(np.array([1.0, 1.0])) == 0.0


class TestDoubleWell:
    def test_two_minima_at_pm_a(self):
        potential = DoubleWell2D(barrier=5.0, a=1.0)
        for minimum in potential.minima:
            assert potential.energy(minimum) == pytest.approx(0.0)
            assert np.allclose(potential.force(minimum), 0.0, atol=1e-12)

    def test_barrier_height(self):
        potential = DoubleWell2D(barrier=5.0, a=1.0)
        assert potential.energy(np.zeros(2)) == pytest.approx(5.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            DoubleWell2D(barrier=0.0)
        with pytest.raises(ValueError):
            DoubleWell2D(barrier=1.0, a=-1.0)


class TestMuellerBrown:
    def test_minima_are_local_minima(self):
        potential = MuellerBrown()
        for minimum in potential.minima:
            e0 = potential.energy(minimum)
            rng = np.random.default_rng(0)
            for _ in range(20):
                nearby = minimum + rng.normal(scale=0.02, size=2)
                assert potential.energy(nearby) >= e0 - 0.6  # small tolerance

    def test_deep_minimum_energy_range(self):
        potential = MuellerBrown()
        e = potential.energy(potential.minima[0])
        assert -150.0 < e < -140.0  # canonical value ~ -146.7

    def test_forces_point_downhill(self):
        potential = MuellerBrown()
        rng = np.random.default_rng(1)
        for _ in range(20):
            x = rng.uniform([-1.5, -0.5], [1.0, 2.0])
            f = potential.force(x)
            step = x + 1e-5 * f / max(np.linalg.norm(f), 1e-12)
            assert potential.energy(step) <= potential.energy(x) + 1e-9
