"""Tests for the filesystem and network models."""

import pytest

from repro.cluster.filesystem import SharedFilesystem
from repro.cluster.network import NetworkModel
from repro.eventsim import RandomStreams
from repro.exceptions import ConfigurationError


class TestSharedFilesystem:
    def test_transfer_time_is_latency_plus_bandwidth(self):
        fs = SharedFilesystem(bandwidth=1e6, latency=0.5)
        assert fs.transfer_time(1e6) == pytest.approx(1.5)

    def test_zero_bytes_costs_latency_only(self):
        fs = SharedFilesystem(bandwidth=1e9, latency=0.25)
        assert fs.transfer_time(0) == pytest.approx(0.25)

    def test_contention_shares_bandwidth(self):
        fs = SharedFilesystem(bandwidth=1e6, latency=0.0)
        base = fs.transfer_time(1e6)
        fs.transfer_begin()
        fs.transfer_begin()
        assert fs.transfer_time(1e6) == pytest.approx(2 * base)
        fs.transfer_end()
        assert fs.transfer_time(1e6) == pytest.approx(base)
        fs.transfer_end()

    def test_contention_can_be_disabled(self):
        fs = SharedFilesystem(bandwidth=1e6, latency=0.0, contention=False)
        fs.transfer_begin()
        fs.transfer_begin()
        assert fs.transfer_time(1e6) == pytest.approx(1.0)
        fs.transfer_end(); fs.transfer_end()

    def test_transfer_end_without_begin_raises(self):
        fs = SharedFilesystem(bandwidth=1e6)
        with pytest.raises(ConfigurationError):
            fs.transfer_end()

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            SharedFilesystem(bandwidth=0)
        with pytest.raises(ConfigurationError):
            SharedFilesystem(bandwidth=1.0, latency=-0.1)
        with pytest.raises(ConfigurationError):
            SharedFilesystem(bandwidth=1.0).transfer_time(-1)


class TestNetworkModel:
    def test_zero_rtt_is_free(self):
        net = NetworkModel(rtt=0.0)
        assert net.message_delay() == 0.0
        assert net.round_trip() == 0.0
        assert net.bulk_delay(100) == 0.0

    def test_message_delay_near_half_rtt(self):
        net = NetworkModel(rtt=0.1, jitter=0.0)
        assert net.message_delay() == pytest.approx(0.05)

    def test_jitter_produces_variation(self):
        net = NetworkModel(rtt=0.1, jitter=0.3, streams=RandomStreams(1))
        delays = {net.message_delay() for _ in range(10)}
        assert len(delays) > 1
        assert all(d > 0 for d in delays)

    def test_bulk_delay_cheaper_than_individual_messages(self):
        net = NetworkModel(rtt=0.1, jitter=0.0)
        bulk = net.bulk_delay(100)
        individual = sum(net.message_delay() for _ in range(100))
        assert bulk < individual

    def test_bulk_delay_grows_with_messages(self):
        net = NetworkModel(rtt=0.1, jitter=0.0)
        assert net.bulk_delay(100) > net.bulk_delay(1)

    def test_bulk_delay_zero_messages(self):
        assert NetworkModel(rtt=0.1).bulk_delay(0) == 0.0

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(rtt=-1.0)
        with pytest.raises(ConfigurationError):
            NetworkModel(rtt=0.1, jitter=1.0)
