"""Tests for the generic-DAG workflow baseline."""

import pytest

from repro.baselines.dag import (
    DAGWorkflow,
    express_eop_as_dag,
    express_sal_as_dag,
)
from repro.core.kernel_plugin import Kernel
from repro.exceptions import PatternError
from repro.experiments.workloads import CharCountPipeline, CharCountSAL
from repro.pilot.states import UnitState


def sleep_kernel(duration=0.0):
    def factory():
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={duration}"]
        return kernel

    return factory


def failing_kernel():
    kernel = Kernel(name="misc.ccount")
    kernel.arguments = ["--inputfile=missing.txt", "--outputfile=o.txt"]
    return kernel


class TestConstruction:
    def test_duplicate_task_rejected(self):
        dag = DAGWorkflow()
        dag.add_task("a", sleep_kernel())
        with pytest.raises(PatternError, match="already exists"):
            dag.add_task("a", sleep_kernel())

    def test_unknown_dependency_rejected(self):
        dag = DAGWorkflow()
        dag.add_task("a", sleep_kernel(), depends_on=["ghost"])
        with pytest.raises(PatternError, match="unknown task"):
            dag.validate()

    def test_cycle_rejected(self):
        dag = DAGWorkflow()
        dag.add_task("a", sleep_kernel(), depends_on=["b"])
        dag.add_task("b", sleep_kernel(), depends_on=["a"])
        with pytest.raises(PatternError, match="cycle"):
            dag.validate()

    def test_empty_dag_rejected(self):
        with pytest.raises(PatternError, match="no tasks"):
            DAGWorkflow().validate()

    def test_counts(self):
        dag = DAGWorkflow()
        dag.add_task("a", sleep_kernel())
        dag.add_task("b", sleep_kernel(), depends_on=["a"])
        dag.add_task("c", sleep_kernel(), depends_on=["a", "b"])
        assert dag.task_count == 3
        assert dag.edge_count == 3


class TestExecution:
    @pytest.mark.parametrize("mode", ["local", "sim"])
    def test_diamond_dependencies_honoured(self, mode, local_handle,
                                           sim_handle_factory):
        handle = local_handle if mode == "local" else sim_handle_factory()
        dag = DAGWorkflow()
        dag.add_task("root", sleep_kernel())
        dag.add_task("left", sleep_kernel(), depends_on=["root"])
        dag.add_task("right", sleep_kernel(), depends_on=["root"])
        dag.add_task("join", sleep_kernel(), depends_on=["left", "right"])
        handle.run(dag)
        by_name = {
            u.description.tags["dag_task"]: u for u in dag.units
        }
        assert all(u.state is UnitState.DONE for u in dag.units)
        root_end = by_name["root"].timestamps["AGENT_STAGING_OUTPUT"]
        for mid in ("left", "right"):
            assert by_name[mid].timestamps["EXECUTING"] >= root_end
            assert (
                by_name["join"].timestamps["EXECUTING"]
                >= by_name[mid].timestamps["AGENT_STAGING_OUTPUT"]
            )

    def test_independent_branches_run_concurrently(self, sim_handle_factory):
        handle = sim_handle_factory(cores=8)
        dag = DAGWorkflow()
        for i in range(6):
            dag.add_task(f"t{i}", sleep_kernel(100.0))
        handle.run(dag)
        starts = [u.timestamps["EXECUTING"] for u in dag.units]
        assert max(starts) - min(starts) < 10.0

    def test_failure_prunes_descendants_only(self, local_handle):
        dag = DAGWorkflow()
        dag.add_task("bad", failing_kernel)
        dag.add_task("child", sleep_kernel(), depends_on=["bad"])
        dag.add_task("grandchild", sleep_kernel(), depends_on=["child"])
        dag.add_task("independent", sleep_kernel())
        with pytest.raises(PatternError):
            local_handle.run(dag)
        executed = {u.description.tags["dag_task"] for u in dag.units}
        assert "child" not in executed
        assert "grandchild" not in executed
        assert "independent" in executed

    def test_task_placeholder_staging(self, local_handle):
        dag = DAGWorkflow()

        def producer():
            kernel = Kernel(name="misc.mkfile")
            kernel.arguments = ["--size=42", "--filename=data.txt"]
            return kernel

        def consumer():
            kernel = Kernel(name="misc.ccount")
            kernel.arguments = ["--inputfile=in.txt", "--outputfile=n.txt"]
            kernel.link_input_data = ["$TASK_make/data.txt > in.txt"]
            return kernel

        dag.add_task("make", producer)
        dag.add_task("count", consumer, depends_on=["make"])
        local_handle.run(dag)
        count_unit = next(
            u for u in dag.units if u.description.tags["dag_task"] == "count"
        )
        assert count_unit.result == 42


class TestTranslations:
    def test_eop_translation_shape(self):
        dag = express_eop_as_dag(CharCountPipeline(8))
        assert dag.task_count == 16
        assert dag.edge_count == 8  # one edge per pipeline

    def test_sal_translation_shape(self):
        dag = express_sal_as_dag(CharCountSAL(4))
        # 4 sims + 4 analyses; each analysis depends on all 4 sims.
        assert dag.task_count == 8
        assert dag.edge_count == 16

    def test_eop_translation_executes_identically(self, local_handle):
        dag = express_eop_as_dag(CharCountPipeline(3))
        local_handle.run(dag)
        counts = sorted(
            u.result for u in dag.units
            if u.description.name == "misc.ccount"
        )
        assert counts == [1000, 1000, 1000]

    def test_sal_translation_executes(self, sim_handle_factory):
        handle = sim_handle_factory()
        dag = express_sal_as_dag(CharCountSAL(4))
        handle.run(dag)
        assert all(u.state is UnitState.DONE for u in dag.units)

    def test_patterns_vs_dag_ablation_small(self):
        from repro.experiments import ablations

        result = ablations.patterns_vs_dag(sizes=(4, 16))
        failed = [c for c, ok in result.claims.items() if not ok]
        assert not failed, result.report()
