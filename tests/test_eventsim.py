"""Tests for the discrete-event simulator, incl. ordering properties."""

import pytest
from hypothesis import given, strategies as st

from repro.exceptions import SimulationError
from repro.eventsim import RandomStreams, Simulator


def test_events_run_in_time_order():
    sim = Simulator()
    out = []
    sim.schedule(3.0, lambda: out.append("c"))
    sim.schedule(1.0, lambda: out.append("a"))
    sim.schedule(2.0, lambda: out.append("b"))
    sim.run()
    assert out == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_priority_breaks_ties():
    sim = Simulator()
    out = []
    sim.schedule(1.0, lambda: out.append("low"), priority=5)
    sim.schedule(1.0, lambda: out.append("high"), priority=0)
    sim.run()
    assert out == ["high", "low"]


def test_same_time_same_priority_is_fifo():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(1.0, lambda i=i: out.append(i))
    sim.run()
    assert out == list(range(10))


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_events_can_schedule_events():
    sim = Simulator()
    out = []

    def chain(n):
        out.append(n)
        if n < 5:
            sim.schedule(1.0, lambda: chain(n + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert out == [0, 1, 2, 3, 4, 5]
    assert sim.now == 5.0


def test_cancel_prevents_execution():
    sim = Simulator()
    out = []
    event = sim.schedule(1.0, lambda: out.append("cancelled"))
    sim.schedule(2.0, lambda: out.append("kept"))
    sim.cancel(event)
    sim.run()
    assert out == ["kept"]


def test_run_until_is_inclusive():
    sim = Simulator()
    out = []
    sim.schedule(1.0, lambda: out.append(1))
    sim.schedule(2.0, lambda: out.append(2))
    sim.run(until=1.0)
    assert out == [1]
    assert sim.now == 1.0
    sim.run()
    assert out == [1, 2]


def test_run_until_advances_clock_with_empty_heap():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_run_max_events():
    sim = Simulator()
    out = []
    for i in range(5):
        sim.schedule(float(i + 1), lambda i=i: out.append(i))
    sim.run(max_events=2)
    assert out == [0, 1]


def test_run_is_not_reentrant():
    sim = Simulator()
    caught = []

    def bad():
        try:
            sim.run()
        except SimulationError as exc:
            caught.append(exc)

    sim.schedule(1.0, bad)
    sim.run()
    assert len(caught) == 1


def test_step_returns_none_when_empty():
    assert Simulator().step() is None


def test_events_processed_counts_only_executed():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(event)
    sim.run()
    assert sim.events_processed == 1


def test_pending_excludes_cancelled():
    sim = Simulator()
    e1 = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.cancel(e1)
    assert sim.pending == 1


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=60
    )
)
def test_property_execution_times_are_sorted(delays):
    """Events always run in non-decreasing time order, whatever the input."""
    sim = Simulator()
    seen: list[float] = []
    for delay in delays:
        sim.schedule(delay, lambda: seen.append(sim.now))
    sim.run()
    assert len(seen) == len(delays)
    assert seen == sorted(seen)
    assert sim.now == max(delays)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_random_streams_reproducible(seed):
    a = RandomStreams(seed)
    b = RandomStreams(seed)
    assert a.get("x").random() == b.get("x").random()


def test_random_streams_independent_of_creation_order():
    a = RandomStreams(7)
    first = a.get("alpha").random()
    b = RandomStreams(7)
    b.get("zeta").random()  # an extra stream must not shift "alpha"
    assert b.get("alpha").random() == first


def test_random_streams_differ_across_names():
    rs = RandomStreams(3)
    assert rs.get("a").random() != rs.get("b").random()


def test_random_streams_spawn_is_independent():
    parent = RandomStreams(5)
    child = parent.spawn("agent")
    assert child.seed != parent.seed
    assert child.get("x").random() != parent.get("x").random()


def test_cancel_executed_event_does_not_leak():
    """Regression: cancelling a completed event left its seq forever."""
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    sim.cancel(event)  # already executed: must be a no-op
    assert sim._cancelled == set()
    assert sim.pending == 0


def test_cancel_is_idempotent_and_tombstones_drain():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.cancel(event)
    sim.cancel(event)  # double-cancel must not double-count
    assert len(sim._cancelled) == 1
    sim.schedule(2.0, lambda: None)
    sim.run()
    # Popping the cancelled entry discards its tombstone.
    assert sim._cancelled == set()


def test_heavy_cancellation_purges_heap():
    sim = Simulator()
    kept = [sim.schedule(1000.0 + i, lambda: None) for i in range(4)]
    doomed = [sim.schedule(float(i % 11), lambda: None) for i in range(2000)]
    for event in doomed:
        sim.cancel(event)
    # The purge threshold was crossed along the way: most dead entries
    # are gone from the heap (not just tombstoned), and the tombstone
    # set stays bounded by the threshold instead of growing with the
    # cancellation count.
    assert len(sim._heap) < len(doomed) // 2
    assert len(sim._cancelled) <= 1000
    assert sim.pending == len(kept)
    sim.run()
    assert sim.events_processed == len(kept)
