"""Edge cases across the core layer that the main suites do not cover."""

import pytest

from repro.cluster.platform import NodeSpec, PlatformSpec
from repro.cluster.platforms import register_platform
from repro.core.kernel_plugin import Kernel
from repro.core.patterns import (
    BagOfTasks,
    EnsembleExchange,
    EnsembleOfPipelines,
    SimulationAnalysisLoop,
)
from repro.core.profiler import breakdown_from_profile
from repro.core.resource_handle import ResourceHandle
from repro.pilot.states import PilotState, UnitState


def sleep_kernel(duration=0.0):
    kernel = Kernel(name="misc.sleep")
    kernel.arguments = [f"--duration={duration}"]
    return kernel


class TestEECustomPairing:
    def test_custom_select_pairs_controls_matching(self, sim_handle_factory):
        """A ring topology: pair (1,3) and (2,4) instead of neighbours."""

        class RingEE(EnsembleExchange):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def exchange_stage(self, iteration, instances):
                return sleep_kernel()

            def select_pairs(self, waiting):
                pairs = []
                pool = sorted(waiting)
                for a, b in ((1, 3), (2, 4)):
                    if a in pool and b in pool:
                        pairs.append((a, b))
                return pairs

        handle = sim_handle_factory(cores=8)
        pattern = RingEE(ensemble_size=4, iterations=1,
                         exchange_mode="pairwise")
        handle.run(pattern)
        exchanged = sorted(
            tuple(u.description.tags["instances"])
            for u in pattern.units
            if u.description.tags.get("phase") == "exchange"
        )
        assert exchanged == [(1, 3), (2, 4)]

    def test_two_member_global_exchange(self, sim_handle_factory):
        class TinyEE(EnsembleExchange):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def exchange_stage(self, iteration, instances):
                return sleep_kernel()

        handle = sim_handle_factory()
        pattern = TinyEE(ensemble_size=2, iterations=2, exchange_mode="global")
        handle.run(pattern)
        exchanges = [
            u for u in pattern.units
            if u.description.tags.get("phase") == "exchange"
        ]
        assert len(exchanges) == 2
        assert all(
            tuple(u.description.tags["instances"]) == (1, 2) for u in exchanges
        )


class TestSALShapes:
    def test_more_analyses_than_simulations(self, sim_handle_factory):
        """analysis_instances > simulation_instances: PREV_SIMULATION
        clamps to the last simulation; all analyses run."""

        class WideAnalysis(SimulationAnalysisLoop):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def analysis_stage(self, iteration, instance):
                return sleep_kernel()

        handle = sim_handle_factory()
        pattern = WideAnalysis(iterations=1, simulation_instances=2,
                               analysis_instances=5)
        handle.run(pattern)
        analyses = [
            u for u in pattern.units
            if u.description.tags.get("phase") == "ana"
        ]
        assert len(analyses) == 5
        assert all(u.state is UnitState.DONE for u in pattern.units)

    def test_single_iteration_single_instance(self, sim_handle_factory):
        class Minimal(SimulationAnalysisLoop):
            def simulation_stage(self, iteration, instance):
                return sleep_kernel()

            def analysis_stage(self, iteration, instance):
                return sleep_kernel()

        handle = sim_handle_factory()
        pattern = Minimal(iterations=1, simulation_instances=1)
        handle.run(pattern)
        assert len(pattern.units) == 2


class TestGenericStageOverride:
    def test_stage_override_runs_through_driver(self, sim_handle_factory):
        class Programmatic(EnsembleOfPipelines):
            def stage(self, stage_number, instance):
                return sleep_kernel(float(stage_number))

        handle = sim_handle_factory()
        pattern = Programmatic(ensemble_size=2, pipeline_size=4)
        handle.run(pattern)
        assert len(pattern.units) == 8
        # Stage k's modelled duration is k seconds.
        for unit in pattern.units:
            stage = unit.description.tags["stage"]
            assert unit.execution_time == pytest.approx(float(stage), rel=0.1)


class TestStagingCostModel:
    def test_data_size_drives_sim_staging_cost(self, sim_handle_factory):
        class HeavyInput(BagOfTasks):
            def __init__(self, nbytes):
                super().__init__(size=1)
                self.nbytes = nbytes

            def task(self, instance):
                kernel = Kernel(name="misc.sleep")
                kernel.arguments = ["--duration=1"]
                kernel.copy_input_data = ["$SHARED/big.dat"]
                kernel.data_size = self.nbytes
                return kernel

        durations = {}
        for nbytes in (1024, int(4e9)):
            handle = sim_handle_factory()
            pattern = HeavyInput(nbytes)
            handle.run(pattern)
            unit = pattern.units[0]
            durations[nbytes] = unit.duration(
                UnitState.AGENT_STAGING_INPUT, UnitState.AGENT_SCHEDULING
            )
        assert durations[int(4e9)] > durations[1024] + 1.0


class TestQueueWaitModel:
    def test_allocation_waits_through_modelled_queue(self):
        handle = ResourceHandle(
            "xsede.comet", cores=24, walltime=120, mode="sim",
            model_queue_wait=True, seed=123,
        )
        handle.allocate()
        assert handle.pilot.state is PilotState.ACTIVE
        queue_wait = handle.pilot.saga_job.timestamps["RUNNING"]
        # Exponential hold with mean 60 s: strictly positive here.
        assert queue_wait > 1.0
        handle.deallocate()


class TestCustomPlatform:
    def test_register_and_run_on_custom_machine(self):
        spec = PlatformSpec(
            name="test.minicluster",
            nodes=2,
            node=NodeSpec(cores=4, memory_gb=8.0, core_speed=2.0),
            mean_queue_wait=0.0,
            agent_bootstrap=1.0,
        )
        register_platform(spec, replace=True)

        class Bag(BagOfTasks):
            def task(self, instance):
                return sleep_kernel(100.0)

        handle = ResourceHandle("test.minicluster", cores=8, walltime=120,
                                mode="sim")
        handle.allocate()
        pattern = Bag(size=8)
        handle.run(pattern)
        handle.deallocate()
        # core_speed 2.0 halves the modelled duration.
        assert pattern.units[0].execution_time == pytest.approx(50.0, rel=0.05)


class TestWaves:
    def test_undersized_pilot_shows_waves_in_breakdown(self, sim_handle_factory):
        class Bag(BagOfTasks):
            def task(self, instance):
                return sleep_kernel(100.0)

        handle = sim_handle_factory(cores=24)
        pattern = Bag(size=72)  # 3 waves
        handle.run(pattern)
        breakdown = breakdown_from_profile(handle.profile, pattern)
        assert breakdown.execution_time == pytest.approx(300.0, rel=0.05)
        assert breakdown.makespan >= breakdown.execution_time
