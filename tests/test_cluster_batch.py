"""Tests for the simulated batch scheduler (FIFO + EASY backfill)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.batch import BatchScheduler
from repro.cluster.job import BatchJob, BatchJobState
from repro.cluster.platform import NodeSpec, PlatformSpec
from repro.eventsim import Simulator
from repro.exceptions import QueuePolicyError, StateTransitionError


def make_platform(nodes=4, cores=8, **kwargs):
    defaults = dict(submit_latency=0.0, mean_queue_wait=0.0)
    defaults.update(kwargs)
    return PlatformSpec(
        name="test.cluster",
        nodes=nodes,
        node=NodeSpec(cores=cores, memory_gb=16.0),
        **defaults,
    )


def make_scheduler(policy="easy", nodes=4, **kwargs):
    sim = Simulator()
    scheduler = BatchScheduler(sim, make_platform(nodes=nodes, **kwargs), policy=policy)
    return sim, scheduler


def test_single_job_runs_to_completion():
    sim, sched = make_scheduler()
    job = BatchJob(nodes=2, walltime=100.0, duration=10.0)
    sched.submit(job)
    sim.run()
    assert job.state is BatchJobState.COMPLETED
    assert job.start_time == 0.0
    assert job.end_time == 10.0
    assert sched.free_nodes == 4


def test_submit_latency_delays_start():
    sim = Simulator()
    sched = BatchScheduler(sim, make_platform(submit_latency=2.5))
    job = BatchJob(nodes=1, walltime=50.0, duration=5.0)
    sched.submit(job)
    sim.run()
    assert job.start_time == pytest.approx(2.5)
    assert job.queue_wait == pytest.approx(2.5)


def test_oversized_job_rejected():
    _, sched = make_scheduler(nodes=4)
    with pytest.raises(QueuePolicyError, match="nodes"):
        sched.submit(BatchJob(nodes=5, walltime=10.0))


def test_walltime_limit_enforced():
    sim = Simulator()
    platform = make_platform(max_walltime=100.0)
    sched = BatchScheduler(sim, platform)
    with pytest.raises(QueuePolicyError, match="walltime"):
        sched.submit(BatchJob(nodes=1, walltime=101.0))
    with pytest.raises(QueuePolicyError):
        sched.submit(BatchJob(nodes=1, walltime=0.0))


def test_walltime_kill_marks_timeout():
    sim, sched = make_scheduler()
    job = BatchJob(nodes=1, walltime=5.0, duration=None)  # runs forever
    sched.submit(job)
    sim.run()
    assert job.state is BatchJobState.TIMEOUT
    assert job.end_time == 5.0
    assert sched.free_nodes == 4


def test_fifo_queues_when_full():
    sim, sched = make_scheduler(policy="fifo", nodes=2)
    first = BatchJob(nodes=2, walltime=100.0, duration=10.0)
    second = BatchJob(nodes=1, walltime=100.0, duration=10.0)
    sched.submit(first)
    sched.submit(second)
    sim.run()
    assert second.start_time == pytest.approx(10.0)


def test_fifo_head_blocks_smaller_jobs():
    sim, sched = make_scheduler(policy="fifo", nodes=4)
    running = BatchJob(nodes=3, walltime=100.0, duration=50.0)
    big = BatchJob(nodes=4, walltime=100.0, duration=10.0)
    small = BatchJob(nodes=1, walltime=10.0, duration=5.0)
    for job in (running, big, small):
        sched.submit(job)
    sim.run()
    # Strict FIFO: the small job waits behind the big head even though a
    # node is free the whole time.
    assert small.start_time >= big.start_time


def test_easy_backfills_short_jobs():
    sim, sched = make_scheduler(policy="easy", nodes=4)
    running = BatchJob(nodes=3, walltime=50.0, duration=50.0)
    big = BatchJob(nodes=4, walltime=100.0, duration=10.0)
    filler = BatchJob(nodes=1, walltime=10.0, duration=5.0)
    sched.submit(running)
    sched.submit(big)
    sched.submit(filler)
    sim.run()
    # EASY: the 1-node filler ends (t<=10+...) before the head's shadow
    # time (t=50), so it may run immediately.
    assert filler.start_time == pytest.approx(0.0)
    assert big.start_time == pytest.approx(50.0)


def test_easy_backfill_never_delays_head():
    sim, sched = make_scheduler(policy="easy", nodes=4)
    running = BatchJob(nodes=3, walltime=50.0, duration=50.0)
    head = BatchJob(nodes=4, walltime=100.0, duration=10.0)
    # This filler's walltime crosses the shadow time AND it does not fit in
    # the spare nodes -> must not backfill.
    blocker = BatchJob(nodes=1, walltime=200.0, duration=200.0)
    sched.submit(running)
    sched.submit(head)
    sched.submit(blocker)
    sim.run()
    assert head.start_time == pytest.approx(50.0)
    assert blocker.start_time >= head.start_time


def test_cancel_pending_job():
    sim, sched = make_scheduler(nodes=1)
    hog = BatchJob(nodes=1, walltime=100.0, duration=50.0)
    queued = BatchJob(nodes=1, walltime=100.0, duration=10.0)
    sched.submit(hog)
    sched.submit(queued)
    sim.run(until=1.0)
    sched.cancel(queued)
    sim.run()
    assert queued.state is BatchJobState.CANCELLED
    assert queued.start_time is None


def test_cancel_running_job_frees_nodes():
    sim, sched = make_scheduler()
    job = BatchJob(nodes=4, walltime=100.0, duration=None)
    sched.submit(job)
    sim.run(until=1.0)
    sched.cancel(job)
    assert job.state is BatchJobState.CANCELLED
    assert sched.free_nodes == 4
    sim.run()  # the stale walltime-kill event must be harmless
    assert job.state is BatchJobState.CANCELLED


def test_release_requires_running():
    sim, sched = make_scheduler()
    job = BatchJob(nodes=1, walltime=10.0)
    with pytest.raises(QueuePolicyError):
        sched.release(job)


def test_on_start_and_on_end_callbacks():
    events = []
    sim, sched = make_scheduler()
    job = BatchJob(
        nodes=1,
        walltime=100.0,
        duration=5.0,
        on_start=lambda j: events.append(("start", sim.now)),
        on_end=lambda j, s: events.append(("end", sim.now, s)),
    )
    sched.submit(job)
    sim.run()
    assert events == [("start", 0.0), ("end", 5.0, BatchJobState.COMPLETED)]


def test_job_state_machine_rejects_illegal_edges():
    job = BatchJob(nodes=1, walltime=10.0)
    with pytest.raises(StateTransitionError):
        job.advance(BatchJobState.COMPLETED)  # PENDING -> COMPLETED illegal


def test_history_records_final_jobs():
    sim, sched = make_scheduler()
    jobs = [BatchJob(nodes=1, walltime=50.0, duration=float(i + 1)) for i in range(3)]
    for job in jobs:
        sched.submit(job)
    sim.run()
    assert [j.uid for j in sched.history] == [j.uid for j in jobs]


def test_modelled_queue_wait_adds_hold():
    sim = Simulator()
    platform = make_platform(mean_queue_wait=100.0)
    sched = BatchScheduler(sim, platform, model_queue_wait=True)
    job = BatchJob(nodes=1, walltime=1000.0, duration=1.0)
    sched.submit(job)
    sim.run()
    assert job.state is BatchJobState.COMPLETED
    assert job.queue_wait > 0.0


@settings(max_examples=30, deadline=None)
@given(
    jobs=st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=4),  # nodes
            st.floats(min_value=0.5, max_value=30.0),  # duration
        ),
        min_size=1,
        max_size=25,
    ),
    policy=st.sampled_from(["fifo", "easy"]),
)
def test_property_scheduler_never_overallocates(jobs, policy):
    """At every instant, running nodes <= cluster nodes; all jobs finish."""
    sim, sched = make_scheduler(policy=policy, nodes=4)
    samples = []
    batch_jobs = []
    for nodes, duration in jobs:
        job = BatchJob(
            nodes=nodes,
            walltime=1000.0,
            duration=duration,
            on_start=lambda j: samples.append(sched.free_nodes),
        )
        batch_jobs.append(job)
        sched.submit(job)
    sim.run()
    assert all(0 <= s <= 4 for s in samples)
    assert all(j.state is BatchJobState.COMPLETED for j in batch_jobs)
    assert sched.free_nodes == 4
