"""Property-based tests (seeded random sweeps; no hypothesis dependency).

The container has no ``hypothesis``, so each property is checked over a
few hundred cases drawn from a seeded generator — deterministic, so a
failing case is reproducible from the printed parameters.
"""

import math

import numpy as np
import pytest

from repro.cluster.platforms import get_platform, list_platforms
from repro.core.strategy import WorkloadEstimate, estimate_ttc
from repro.eventsim import RandomStreams
from repro.pilot.retry import RetryPolicy


def random_policy(rng):
    return RetryPolicy(
        max_attempts=int(rng.integers(1, 12)),
        backoff_base=float(rng.uniform(0.0, 30.0)),
        backoff_factor=float(rng.uniform(1.0, 4.0)),
        backoff_cap=float(rng.uniform(0.0, 300.0)),
        jitter=float(rng.uniform(0.0, 1.0)),
    )


class TestRetryPolicyProperties:
    def test_backoff_monotone_nondecreasing(self):
        rng = np.random.default_rng(101)
        for case in range(300):
            policy = random_policy(rng)
            delays = [policy.delay(n) for n in range(1, policy.max_attempts + 1)]
            assert delays == sorted(delays), (case, policy, delays)

    def test_backoff_bounded_by_cap(self):
        rng = np.random.default_rng(102)
        for case in range(300):
            policy = random_policy(rng)
            for attempt in range(1, policy.max_attempts + 1):
                assert policy.delay(attempt) <= policy.backoff_cap, (
                    case, policy, attempt,
                )

    def test_jittered_delay_never_below_base_nor_above_cap(self):
        rng = np.random.default_rng(103)
        draw = RandomStreams(103).get("retry_backoff")
        for case in range(300):
            policy = random_policy(rng)
            attempt = int(rng.integers(1, policy.max_attempts + 1))
            base = policy.delay(attempt)
            value = policy.jittered_delay(attempt, draw)
            assert value >= base, (case, policy, attempt)
            assert value <= policy.backoff_cap or value == base == 0.0, (
                case, policy, attempt,
            )

    def test_attempts_never_exceed_max(self):
        """Drive the gate exactly as the runtime does: count consumed
        attempts, ask ``should_retry`` before every extra one."""
        rng = np.random.default_rng(104)
        for case in range(300):
            policy = random_policy(rng)
            attempts = 0
            while True:
                attempts += 1  # one execution attempt consumed
                failed = rng.random() < 0.8
                if not failed or not policy.should_retry(attempts):
                    break
            assert attempts <= policy.max_attempts, (case, policy, attempts)

    def test_legacy_adapter_round_trip(self):
        rng = np.random.default_rng(105)
        for _ in range(100):
            retries = int(rng.integers(-3, 20))
            policy = RetryPolicy.from_legacy_retries(retries)
            if retries <= 0:
                assert policy is None
            else:
                assert policy.retries == retries
                # Legacy semantics carried no delay.
                assert all(
                    policy.delay(n) == 0.0
                    for n in range(1, policy.max_attempts + 1)
                )


class TestEstimateTTCProperties:
    def test_makespan_at_least_wave_bound(self):
        """Estimated execution can never beat the ideal wave bound:
        ceil(N / floor(C/c)) waves of one (speed-scaled) task time each."""
        rng = np.random.default_rng(201)
        platforms = list_platforms()
        for case in range(300):
            platform = get_platform(
                platforms[int(rng.integers(0, len(platforms)))]
            )
            workload = WorkloadEstimate(
                ntasks=int(rng.integers(1, 500)),
                task_seconds=float(rng.uniform(1.0, 1000.0)),
                cores_per_task=int(rng.integers(1, 8)),
                stages=int(rng.integers(1, 4)),
            )
            cores = int(
                rng.integers(workload.cores_per_task, platform.total_cores + 1)
            )
            estimate = estimate_ttc(workload, platform, cores)
            concurrent = max(cores // workload.cores_per_task, 1)
            waves = math.ceil(workload.ntasks / concurrent)
            bound = (
                workload.stages * waves
                * workload.task_seconds / platform.node.core_speed
            )
            assert estimate["execution"] >= bound - 1e-9, (
                case, platform.name, workload, cores,
            )
            assert estimate["ttc"] >= estimate["execution"], (case,)

    def test_execution_monotone_in_cores(self):
        """More cores never slows the modelled execution phase down."""
        rng = np.random.default_rng(202)
        platform = get_platform("xsede.comet")
        for case in range(200):
            workload = WorkloadEstimate(
                ntasks=int(rng.integers(1, 300)),
                task_seconds=float(rng.uniform(1.0, 500.0)),
                cores_per_task=int(rng.integers(1, 4)),
            )
            small = int(
                rng.integers(workload.cores_per_task, platform.total_cores)
            )
            large = int(rng.integers(small, platform.total_cores + 1))
            exec_small = estimate_ttc(workload, platform, small)["execution"]
            exec_large = estimate_ttc(workload, platform, large)["execution"]
            assert exec_large <= exec_small + 1e-9, (case, workload, small, large)

    def test_components_nonnegative_and_sum_to_ttc(self):
        rng = np.random.default_rng(203)
        platform = get_platform("xsede.stampede")
        for case in range(200):
            workload = WorkloadEstimate(
                ntasks=int(rng.integers(1, 200)),
                task_seconds=float(rng.uniform(0.0, 100.0)),
            )
            cores = int(rng.integers(1, platform.total_cores + 1))
            estimate = estimate_ttc(workload, platform, cores)
            parts = (
                estimate["execution"] + estimate["queue_wait"]
                + estimate["client_overhead"] + estimate["bootstrap"]
                + estimate["launch"]
            )
            assert all(
                v >= 0.0 for k, v in estimate.items()
            ), (case, estimate)
            assert estimate["ttc"] == pytest.approx(parts), (case, estimate)
