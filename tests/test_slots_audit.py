"""Hot-path classes must stay ``__slots__``-only.

At the million-unit scale every per-event / per-unit instance dict is a
measurable resident term (a bare ``__dict__`` costs more than the whole
slotted object).  This audit pins the classes that sit on those paths:
adding a field is fine, silently reverting one of them to dict-backed
instances is a regression this test turns into a failure.
"""

import pytest

from repro.lint.model import Finding
from repro.pilot.description import (
    ComputePilotDescription,
    ComputeUnitDescription,
    StagingDirective,
)
from repro.pilot.unit import ComputeUnit
from repro.pilot.unit_store import UnitTimestamps
from repro.telemetry.metrics import MetricSeries
from repro.telemetry.sink import MemorySink, ProfileEvent, SpoolSink
from repro.telemetry.span import Span, _Event

#: Every class audited as slots-only.  Grow this list, never shrink it.
AUDITED = [
    # one per trace event — the single hottest allocation
    ProfileEvent,
    _Event,
    # one per explicit/derived span in analytics
    Span,
    # one per unit (view + timestamp view over the columnar store)
    ComputeUnit,
    UnitTimestamps,
    # one per submitted task
    ComputeUnitDescription,
    ComputePilotDescription,
    StagingDirective,
    # one per metric series / sink per session
    MetricSeries,
    MemorySink,
    SpoolSink,
    # one per lint diagnostic (repo-wide sweeps)
    Finding,
]


def _has_instance_dict(cls) -> bool:
    return any("__dict__" in vars(base) for base in cls.__mro__)


@pytest.mark.parametrize("cls", AUDITED, ids=lambda c: c.__name__)
def test_audited_class_has_no_instance_dict(cls):
    assert not _has_instance_dict(cls), (
        f"{cls.__name__} grew an instance __dict__; declare __slots__ "
        f"(or dataclass(slots=True)) on it and every base"
    )


def test_profile_event_rejects_ad_hoc_attributes():
    ev = ProfileEvent(0.0, "x", "u")
    with pytest.raises(AttributeError):
        ev.extra = 1
