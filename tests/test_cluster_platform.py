"""Tests for platform specs and the registry."""

import pytest

from repro.cluster.platform import NodeSpec, PlatformSpec
from repro.cluster.platforms import get_platform, list_platforms, register_platform
from repro.exceptions import ConfigurationError, PlatformError


def test_builtin_platforms_present():
    names = list_platforms()
    for expected in (
        "local.localhost",
        "xsede.comet",
        "xsede.stampede",
        "xsede.supermic",
    ):
        assert expected in names


def test_paper_node_counts_and_cores():
    comet = get_platform("xsede.comet")
    assert (comet.nodes, comet.cores_per_node) == (1984, 24)
    stampede = get_platform("xsede.stampede")
    assert (stampede.nodes, stampede.cores_per_node) == (6400, 16)
    supermic = get_platform("xsede.supermic")
    assert (supermic.nodes, supermic.cores_per_node) == (360, 20)


def test_paper_memory_per_node():
    assert get_platform("xsede.comet").node.memory_gb == 120.0
    assert get_platform("xsede.stampede").node.memory_gb == 32.0
    assert get_platform("xsede.supermic").node.memory_gb == 60.0


def test_unknown_platform_raises_with_hint():
    with pytest.raises(PlatformError, match="known:"):
        get_platform("xsede.frontera")


def test_register_rejects_duplicates():
    spec = get_platform("xsede.comet")
    with pytest.raises(PlatformError, match="already registered"):
        register_platform(spec)
    register_platform(spec, replace=True)  # explicit replace is fine


def test_total_cores():
    comet = get_platform("xsede.comet")
    assert comet.total_cores == 1984 * 24


def test_nodes_for_cores_rounds_up():
    comet = get_platform("xsede.comet")
    assert comet.nodes_for_cores(1) == 1
    assert comet.nodes_for_cores(24) == 1
    assert comet.nodes_for_cores(25) == 2
    assert comet.nodes_for_cores(48) == 2


def test_nodes_for_cores_rejects_nonpositive():
    with pytest.raises(ConfigurationError):
        get_platform("xsede.comet").nodes_for_cores(0)


def test_replace_returns_modified_copy():
    comet = get_platform("xsede.comet")
    fast = comet.replace(mean_queue_wait=0.0)
    assert fast.mean_queue_wait == 0.0
    assert comet.mean_queue_wait > 0.0
    assert fast.nodes == comet.nodes


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cores": 0, "memory_gb": 1.0},
        {"cores": 4, "memory_gb": 0.0},
        {"cores": 4, "memory_gb": 1.0, "core_speed": 0.0},
    ],
)
def test_node_spec_validation(kwargs):
    with pytest.raises(ConfigurationError):
        NodeSpec(**kwargs)


def test_platform_spec_validation():
    node = NodeSpec(cores=4, memory_gb=8.0)
    with pytest.raises(ConfigurationError):
        PlatformSpec(name="bad", nodes=0, node=node)
    with pytest.raises(ConfigurationError):
        PlatformSpec(name="bad", nodes=1, node=node, submit_latency=-1.0)
    with pytest.raises(ConfigurationError):
        PlatformSpec(name="bad", nodes=1, node=node, fs_bandwidth=0.0)
