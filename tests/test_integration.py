"""End-to-end integration tests across all layers.

These run complete science workflows — the kind of application the paper's
ExTASY project builds on EnTK — and verify both the orchestration *and*
the science outputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import (
    EnsembleExchange,
    Kernel,
    PatternSequence,
    ResourceHandle,
    SimulationAnalysisLoop,
)
from repro.core.patterns import BagOfTasks
from repro.md.trajectory import Trajectory
from repro.pilot.states import UnitState


class TestExtasyLikeWorkflow:
    """Setup bag -> adaptive MD/CoCo loop -> LSDMap post-analysis,
    composed as a PatternSequence on one allocation, fully executed."""

    class Setup(BagOfTasks):
        def task(self, instance):
            kernel = Kernel(name="misc.echo")
            kernel.arguments = [
                f"--message=seed-structure-{instance}",
                "--outputfile=seed.txt",
            ]
            return kernel

    class Sampling(SimulationAnalysisLoop):
        def __init__(self):
            super().__init__(iterations=2, simulation_instances=3,
                             analysis_instances=1)

        def simulation_stage(self, iteration, instance):
            kernel = Kernel(name="md.amber")
            kernel.arguments = [
                "--nsteps=200",
                "--temperature=1.0",
                "--outfile=trajectory.npz",
                f"--seed={10 * iteration + instance}",
            ]
            if iteration > 1:
                kernel.arguments += ["--startfile=coco.npz",
                                     f"--startindex={instance - 1}"]
                kernel.link_input_data = ["$PREV_ANALYSIS/coco.npz"]
            return kernel

        def analysis_stage(self, iteration, instance):
            kernel = Kernel(name="analysis.coco")
            kernel.arguments = [
                "--pattern=traj_*.npz",
                "--npoints=3",
                "--outfile=coco.npz",
            ]
            kernel.link_input_data = [
                f"$SIMULATION_{iteration}_{i}/trajectory.npz > traj_{i}.npz"
                for i in range(1, 4)
            ]
            return kernel

    def test_full_workflow_executes(self, local_handle):
        setup = self.Setup(size=3)
        sampling = self.Sampling()
        sequence = PatternSequence([setup, sampling])
        local_handle.run(sequence)
        assert all(u.state is UnitState.DONE for u in sequence.units)
        # 3 echo + 2*(3 sims + 1 coco) = 11 tasks
        assert len(sequence.units) == 11
        # The final CoCo output exists and contains 3 proposed points.
        final_coco = [
            u for u in sampling.units
            if u.description.name == "analysis.coco"
            and u.description.tags["iteration"] == 2
        ][0]
        with np.load(f"{final_coco.sandbox}/coco.npz") as data:
            assert data["new_points"].shape == (3, 2)


class TestREMDScience:
    """Replica exchange through the full stack preserves the physics."""

    class REMD(EnsembleExchange):
        def __init__(self, replicas=4, iterations=3):
            super().__init__(ensemble_size=replicas, iterations=iterations,
                             exchange_mode="global")

        def simulation_stage(self, iteration, instance):
            kernel = Kernel(name="md.amber")
            kernel.arguments = [
                "--nsteps=100",
                f"--temperature={0.5 * instance}",
                "--outfile=replica.npz",
                f"--seed={100 * iteration + instance}",
            ]
            if iteration > 1:
                kernel.arguments.append("--startfile=previous.npz")
                kernel.link_input_data = [
                    "$PREV_SIMULATION/replica.npz > previous.npz"
                ]
            return kernel

        def exchange_stage(self, iteration, instances):
            kernel = Kernel(name="exchange.temperature")
            kernel.arguments = [
                "--mode=global",
                "--pattern=replica_*.npz",
                "--tmin=0.5",
                "--tmax=2.0",
                f"--phase={iteration % 2}",
                f"--seed={iteration}",
                "--outfile=exchange.npz",
            ]
            kernel.link_input_data = [
                f"$REPLICA_{i}/replica.npz > replica_{i:03d}.npz"
                for i in instances
            ]
            return kernel

    def test_exchange_permutations_conserve_replicas(self, local_handle):
        pattern = self.REMD()
        local_handle.run(pattern)
        exchanges = [
            u for u in pattern.units
            if u.description.name == "exchange.temperature"
        ]
        assert len(exchanges) == 3
        for exchange in exchanges:
            with np.load(f"{exchange.sandbox}/exchange.npz") as data:
                permutation = data["permutation"]
                # The multiset of replicas is conserved by every exchange.
                assert sorted(permutation.tolist()) == [0, 1, 2, 3]
                # Temperatures form the requested geometric ladder.
                temps = data["temperatures"]
                assert temps[0] == pytest.approx(0.5)
                assert temps[-1] == pytest.approx(2.0)

    def test_replica_continuity_across_iterations(self, local_handle):
        """Each replica's restart equals its previous final frame."""
        pattern = self.REMD(replicas=2, iterations=2)
        local_handle.run(pattern)
        sims = {
            (u.description.tags["iteration"], u.description.tags["instance"]): u
            for u in pattern.units
            if u.description.name == "md.amber"
        }
        for instance in (1, 2):
            first = Trajectory.load(f"{sims[(1, instance)].sandbox}/replica.npz")
            second_start = Trajectory.load(
                f"{sims[(2, instance)].sandbox}/previous.npz"
            )
            assert np.allclose(second_start.final_position,
                               first.final_position)


class TestCrossModeConsistency:
    """Local and simulated executions agree on orchestration structure."""

    class Bag(BagOfTasks):
        def task(self, instance):
            kernel = Kernel(name="misc.sleep")
            kernel.arguments = ["--duration=0"]
            return kernel

    def unit_signature(self, pattern):
        return sorted(
            (u.description.name, u.description.tags.get("stage"),
             u.description.tags.get("instance"))
            for u in pattern.units
        )

    def test_same_units_both_modes(self, local_handle, sim_handle_factory):
        local_pattern = self.Bag(size=5)
        local_handle.run(local_pattern)
        sim_pattern = self.Bag(size=5)
        sim_handle_factory().run(sim_pattern)
        assert self.unit_signature(local_pattern) == self.unit_signature(
            sim_pattern
        )


@settings(max_examples=12, deadline=None)
@given(
    ensemble=st.integers(min_value=1, max_value=6),
    stages=st.integers(min_value=1, max_value=4),
    cores=st.integers(min_value=1, max_value=16),
)
def test_property_random_pipeline_shapes_complete(ensemble, stages, cores):
    """Any (ensemble, stages, cores) pipeline completes under simulation
    with exactly ensemble*stages DONE units and correct per-pipeline order."""
    from repro.core.patterns import EnsembleOfPipelines

    class Shaped(EnsembleOfPipelines):
        def stage(self, stage_number, instance):
            kernel = Kernel(name="misc.sleep")
            kernel.arguments = ["--duration=5"]
            return kernel

    handle = ResourceHandle("xsede.comet", cores=cores, walltime=600, mode="sim")
    handle.allocate()
    pattern = Shaped(ensemble_size=ensemble, pipeline_size=stages)
    handle.run(pattern)
    handle.deallocate()
    assert len(pattern.units) == ensemble * stages
    assert all(u.state is UnitState.DONE for u in pattern.units)
    for instance in range(1, ensemble + 1):
        stamps = [
            u.timestamps["EXECUTING"]
            for u in sorted(
                (u for u in pattern.units
                 if u.description.tags["instance"] == instance),
                key=lambda u: u.description.tags["stage"],
            )
        ]
        assert stamps == sorted(stamps)
