"""Tests for the resource handle lifecycle and the TTC breakdown."""

import pytest
from hypothesis import given, strategies as st

from repro.core.kernel_plugin import Kernel
from repro.core.patterns import BagOfTasks
from repro.core.profiler import breakdown_from_profile, merge_interval_length
from repro.core.resource_handle import ResourceHandle, SingleClusterEnvironment
from repro.exceptions import ResourceHandleError


class Bag(BagOfTasks):
    def __init__(self, size=3, duration=0.0):
        super().__init__(size=size)
        self.duration = duration

    def task(self, instance):
        kernel = Kernel(name="misc.sleep")
        kernel.arguments = [f"--duration={self.duration}"]
        return kernel


class TestLifecycle:
    def test_alias_matches_paper_name(self):
        assert SingleClusterEnvironment is ResourceHandle

    def test_mode_defaults(self):
        assert ResourceHandle("local.localhost", 2, 5).mode == "local"
        assert ResourceHandle("xsede.comet", 2, 5).mode == "sim"

    def test_run_before_allocate_rejected(self):
        handle = ResourceHandle("local.localhost", 2, 5)
        with pytest.raises(ResourceHandleError, match="not allocated"):
            handle.run(Bag())

    def test_double_allocate_rejected(self, local_handle):
        with pytest.raises(ResourceHandleError, match="already allocated"):
            local_handle.allocate()

    def test_run_after_deallocate_rejected(self):
        handle = ResourceHandle("xsede.comet", 8, 60, mode="sim")
        handle.allocate()
        handle.deallocate()
        with pytest.raises(ResourceHandleError):
            handle.run(Bag())
        handle.deallocate()  # idempotent

    def test_context_manager(self):
        with ResourceHandle("xsede.comet", 8, 60, mode="sim") as handle:
            pattern = Bag()
            handle.run(pattern)
        assert handle.deallocated
        assert pattern.executed

    def test_pilot_active_after_allocate(self, sim_handle_factory):
        handle = sim_handle_factory()
        assert handle.pilot.state.value == "ACTIVE"

    def test_multiple_patterns_per_allocation(self, local_handle):
        first, second = Bag(size=2), Bag(size=2)
        local_handle.run(first)
        local_handle.run(second)
        assert first.executed and second.executed


class TestBreakdown:
    def test_sim_core_overhead_matches_model(self, sim_handle_factory):
        handle = sim_handle_factory()
        pattern = Bag(size=4, duration=10.0)
        handle.run(pattern)
        handle.deallocate()
        breakdown = breakdown_from_profile(handle.profile, pattern)
        expected = handle.overheads.core_overhead
        assert breakdown.core_overhead == pytest.approx(expected, rel=0.01)

    def test_sim_execution_time_matches_duration(self, sim_handle_factory):
        handle = sim_handle_factory()
        pattern = Bag(size=4, duration=25.0)
        handle.run(pattern)
        breakdown = breakdown_from_profile(handle.profile, pattern)
        assert breakdown.execution_time == pytest.approx(25.0, rel=0.05)
        assert breakdown.ntasks == 4

    def test_pattern_overhead_grows_with_tasks(self, sim_handle_factory):
        overheads = []
        for n in (8, 64):
            handle = sim_handle_factory(cores=64)
            pattern = Bag(size=n, duration=1.0)
            handle.run(pattern)
            overheads.append(
                breakdown_from_profile(handle.profile, pattern).pattern_overhead
            )
        assert overheads[1] > overheads[0]

    def test_breakdown_requires_executed_pattern(self, sim_handle_factory):
        handle = sim_handle_factory()
        with pytest.raises(ValueError, match="no units"):
            breakdown_from_profile(handle.profile, Bag())

    def test_ttc_covers_components(self, sim_handle_factory):
        handle = sim_handle_factory()
        pattern = Bag(size=4, duration=10.0)
        handle.run(pattern)
        breakdown = breakdown_from_profile(handle.profile, pattern)
        assert breakdown.ttc >= breakdown.execution_time
        assert breakdown.makespan >= breakdown.execution_time
        assert breakdown.runtime_overhead >= 0.0


class TestMergeIntervals:
    def test_disjoint(self):
        assert merge_interval_length([(0, 1), (2, 3)]) == pytest.approx(2.0)

    def test_overlapping(self):
        assert merge_interval_length([(0, 2), (1, 3)]) == pytest.approx(3.0)

    def test_nested(self):
        assert merge_interval_length([(0, 10), (2, 5)]) == pytest.approx(10.0)

    def test_empty(self):
        assert merge_interval_length([]) == 0.0

    @given(
        intervals=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=100, allow_nan=False),
            ).map(lambda t: (min(t), max(t))),
            max_size=40,
        )
    )
    def test_property_union_bounds(self, intervals):
        """Union length is between max single length and the sum of lengths,
        and never exceeds the overall span."""
        union = merge_interval_length(intervals)
        lengths = [b - a for a, b in intervals]
        assert union <= sum(lengths) + 1e-9
        if intervals:
            assert union >= max(lengths) - 1e-9
            span = max(b for _, b in intervals) - min(a for a, _ in intervals)
            assert union <= span + 1e-9
        else:
            assert union == 0.0
