"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.resource_handle import ResourceHandle


@pytest.fixture
def local_handle(tmp_path):
    """An allocated 4-core local resource handle, torn down after the test."""
    handle = ResourceHandle(
        resource="local.localhost",
        cores=4,
        walltime=10,
        mode="local",
        sandbox=tmp_path / "sandbox",
    )
    handle.allocate()
    yield handle
    handle.deallocate()


@pytest.fixture
def sim_handle_factory():
    """Factory of allocated simulated handles; all torn down after the test."""
    handles = []

    def make(resource="xsede.comet", cores=48, walltime=120, **kwargs) -> ResourceHandle:
        handle = ResourceHandle(
            resource=resource, cores=cores, walltime=walltime, mode="sim", **kwargs
        )
        handle.allocate()
        handles.append(handle)
        return handle

    yield make
    for handle in handles:
        handle.deallocate()
