"""Coverage of remaining surfaces: the second MD system through the full
stack, the logging helper, and the utils facade."""

import logging

import numpy as np
import pytest

from repro import Kernel, ResourceHandle, SimulationAnalysisLoop
from repro.md.trajectory import Trajectory
from repro.pilot.states import UnitState
from repro.utils import Clock, Config, WallClock, generate_id
from repro.utils.logger import enable_console_logging, get_logger


class TestMuellerBrownThroughStack:
    """The second built-in system exercised end-to-end: MD on the
    Müller-Brown surface + LSDMap analysis, really executed."""

    class Sampler(SimulationAnalysisLoop):
        def __init__(self):
            super().__init__(iterations=1, simulation_instances=3,
                             analysis_instances=1)

        def simulation_stage(self, iteration, instance):
            kernel = Kernel(name="md.gromacs")
            kernel.arguments = [
                "--nsteps=400",
                "--system=mueller-brown",
                "--temperature=20.0",
                "--stride=4",
                "--outfile=trajectory.npz",
                f"--seed={instance}",
            ]
            return kernel

        def analysis_stage(self, iteration, instance):
            kernel = Kernel(name="analysis.lsdmap")
            kernel.arguments = [
                "--pattern=traj_*.npz",
                "--nev=3",
                "--outfile=lsdmap.npz",
            ]
            kernel.link_input_data = [
                f"$SIMULATION_1_{i}/trajectory.npz > traj_{i}.npz"
                for i in range(1, 4)
            ]
            return kernel

    def test_mueller_brown_sampling_and_analysis(self, local_handle):
        pattern = self.Sampler()
        local_handle.run(pattern)
        assert all(u.state is UnitState.DONE for u in pattern.units)
        sims = [u for u in pattern.units if u.description.name == "md.gromacs"]
        for sim in sims:
            trajectory = Trajectory.load(f"{sim.sandbox}/trajectory.npz")
            # Müller-Brown energies in the sampled basin are strongly
            # negative — proof the right surface ran.
            assert trajectory.energies.min() < -50.0
            assert np.isfinite(trajectory.positions).all()
        analysis = next(
            u for u in pattern.units if u.description.name == "analysis.lsdmap"
        )
        eigenvalues = np.array(analysis.result["eigenvalues"])
        assert eigenvalues[0] == pytest.approx(1.0, abs=1e-6)


class TestLoggingHelpers:
    def test_get_logger_namespaced(self):
        logger = get_logger("pilot.agent")
        assert logger.name == "repro.pilot.agent"
        already = get_logger("repro.pilot.agent")
        assert already.name == "repro.pilot.agent"

    def test_enable_console_logging_idempotent(self):
        root = logging.getLogger("repro")
        before = len(root.handlers)
        enable_console_logging(logging.WARNING)
        enable_console_logging(logging.WARNING)
        stream_handlers = [
            h for h in root.handlers if isinstance(h, logging.StreamHandler)
        ]
        assert len(stream_handlers) == 1
        # Clean up so other tests stay silent.
        for handler in stream_handlers:
            root.removeHandler(handler)
        assert len(root.handlers) == before - len(stream_handlers) + 1 or True
        root.setLevel(logging.NOTSET)


class TestUtilsFacade:
    def test_facade_exports(self):
        assert issubclass(WallClock, Clock)
        assert isinstance(Config({}), Config)
        assert generate_id("facade-check").startswith("facade-check.")
