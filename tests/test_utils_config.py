"""Tests for repro.utils.config."""

import pytest

from repro.exceptions import ConfigurationError
from repro.utils.config import Config


@pytest.fixture
def cfg():
    return Config({"agent": {"cores": 16, "scheduler": "backfill"}, "seed": 7})


def test_dotted_lookup(cfg):
    assert cfg["agent.cores"] == 16
    assert cfg["seed"] == 7


def test_nested_lookup_returns_config(cfg):
    agent = cfg["agent"]
    assert isinstance(agent, Config)
    assert agent["scheduler"] == "backfill"


def test_missing_key_raises(cfg):
    with pytest.raises(KeyError):
        cfg["agent.missing"]
    with pytest.raises(KeyError):
        cfg["nope.deep.path"]


def test_get_with_default(cfg):
    assert cfg.get("agent.missing", 3) == 3
    assert cfg.get("agent.cores") == 16


def test_require_present(cfg):
    assert cfg.require("agent.cores", int) == 16


def test_require_missing_raises(cfg):
    with pytest.raises(ConfigurationError, match="missing"):
        cfg.require("agent.nope")


def test_require_wrong_type_raises(cfg):
    with pytest.raises(ConfigurationError, match="must be"):
        cfg.require("agent.scheduler", int)


def test_require_rejects_bool_for_numeric():
    cfg = Config({"flag": True})
    with pytest.raises(ConfigurationError):
        cfg.require("flag", int)


def test_merged_overrides_deeply(cfg):
    merged = cfg.merged({"agent": {"cores": 32}})
    assert merged["agent.cores"] == 32
    assert merged["agent.scheduler"] == "backfill"  # untouched sibling
    assert cfg["agent.cores"] == 16  # original untouched


def test_merged_with_none_copies(cfg):
    clone = cfg.merged(None)
    assert clone.as_dict() == cfg.as_dict()


def test_merged_accepts_config_instances(cfg):
    merged = cfg.merged(Config({"seed": 11}))
    assert merged["seed"] == 11


def test_as_dict_is_deep_copy(cfg):
    exported = cfg.as_dict()
    exported["agent"]["cores"] = 999
    assert cfg["agent.cores"] == 16


def test_mapping_protocol(cfg):
    assert set(iter(cfg)) == {"agent", "seed"}
    assert len(cfg) == 2
