"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_platforms_lists_paper_machines(capsys):
    assert main(["platforms"]) == 0
    out = capsys.readouterr().out
    for name in ("xsede.comet", "xsede.stampede", "xsede.supermic"):
        assert name in out


def test_kernels_lists_builtins(capsys):
    assert main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "md.amber" in out
    assert "exchange.temperature" in out


def test_figure_small_run(capsys):
    assert main(["figure", "fig9", "--small"]) == 0
    out = capsys.readouterr().out
    assert "fig9" in out
    assert "[OK " in out
    assert "FAIL" not in out


def test_figure_unknown_name(capsys):
    assert main(["figure", "fig42"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_ablation_run(capsys):
    assert main(["ablation", "scheduler_policy"]) == 0
    assert "backfill" in capsys.readouterr().out


def test_ablation_unknown(capsys):
    assert main(["ablation", "does_not_exist"]) == 2


def test_plan_outputs_resource(capsys):
    assert main(
        ["plan", "--ntasks", "128", "--seconds", "100",
         "--resources", "xsede.comet"]
    ) == 0
    out = capsys.readouterr().out
    assert "resource : xsede.comet" in out
    assert "core-hours" in out


def test_plan_cost_objective(capsys):
    assert main(
        ["plan", "--ntasks", "128", "--seconds", "100",
         "--objective", "cost", "--resources", "xsede.comet"]
    ) == 0


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        main([])
