"""Profiler thread-safety and the incremental snapshot view."""

import threading

from repro.pilot.profiler import Profiler


def _clock_factory():
    state = {"t": 0.0}

    def now() -> float:
        state["t"] += 1.0
        return state["t"]

    return now


class TestConcurrentWriters:
    def test_events_from_many_threads_all_land(self):
        prof = Profiler(_clock_factory())
        nthreads, per_thread = 8, 500
        barrier = threading.Barrier(nthreads)

        def writer(tid: int) -> None:
            barrier.wait()
            for i in range(per_thread):
                prof.event("tick", f"t{tid}", i=i)

        threads = [
            threading.Thread(target=writer, args=(tid,))
            for tid in range(nthreads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert len(prof) == nthreads * per_thread
        for tid in range(nthreads):
            mine = prof.events("tick", f"t{tid}")
            assert [ev.attrs["i"] for ev in mine] == list(range(per_thread))

    def test_iteration_during_writes_sees_consistent_prefix(self):
        prof = Profiler(_clock_factory())
        stop = threading.Event()

        def writer() -> None:
            i = 0
            while not stop.is_set():
                prof.event("tick", "w", i=i)
                i += 1

        thread = threading.Thread(target=writer)
        thread.start()
        try:
            for _ in range(50):
                seen = [ev.attrs["i"] for ev in prof]
                # Any snapshot must be a gap-free prefix of the stream.
                assert seen == list(range(len(seen)))
        finally:
            stop.set()
            thread.join()


class TestSnapshot:
    def test_incremental_cursor_sees_every_event_once(self):
        prof = Profiler(_clock_factory())
        collected, cursor = [], 0
        for batch in range(5):
            for i in range(10):
                prof.event("ev", f"b{batch}", i=i)
            fresh, cursor = prof.snapshot(since=cursor)
            assert len(fresh) == 10
            collected.extend(fresh)
        assert collected == list(prof)
        fresh, cursor = prof.snapshot(since=cursor)
        assert fresh == []
        assert cursor == len(prof)

    def test_snapshot_under_concurrent_writes_is_gap_free(self):
        prof = Profiler(_clock_factory())
        total = 4000

        def writer() -> None:
            for i in range(total):
                prof.event("tick", "w", i=i)

        thread = threading.Thread(target=writer)
        thread.start()
        seen, cursor = [], 0
        while len(seen) < total:
            fresh, cursor = prof.snapshot(since=cursor)
            seen.extend(ev.attrs["i"] for ev in fresh)
        thread.join()
        assert seen == list(range(total))
